//! Property-based tests over the whole stack.
//!
//! Strategies generate arbitrary small graphs and patterns; the properties
//! assert the core invariants of the system:
//!
//! * soundness & maximality of bounded simulation (against the independent
//!   naive oracle and the validity checker);
//! * bound-1 bounded simulation ≡ plain simulation;
//! * isomorphism embeddings are contained in the simulation relation;
//! * compression preserves query answers for both equivalences;
//! * incremental maintenance equals recompute after arbitrary update
//!   sequences;
//! * monotonicity: larger bounds can only add matches.

use expfinder::compress::{compress_graph, CompressionMethod};
use expfinder::core::naive::{
    is_valid_bounded_relation, naive_bounded_simulation, naive_simulation,
};
use expfinder::core::{subgraph_isomorphism, IsoOptions};
use expfinder::incremental::Maintainer;
use expfinder::pattern::{Bound, PNodeId, Pattern, PatternEdge, PatternNode, Predicate};
use expfinder::prelude::*;
use proptest::prelude::*;

/// A compact description of a random graph: labels per node + edge pairs.
#[derive(Clone, Debug)]
struct RawGraph {
    labels: Vec<u8>,
    exps: Vec<u8>,
    edges: Vec<(u8, u8)>,
}

fn raw_graph(max_nodes: usize) -> impl Strategy<Value = RawGraph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let exps = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..n * 3);
        (labels, exps, edges).prop_map(|(labels, exps, edges)| RawGraph {
            labels,
            exps,
            edges,
        })
    })
}

fn build_graph(raw: &RawGraph) -> DiGraph {
    let mut g = DiGraph::new();
    for (l, e) in raw.labels.iter().zip(&raw.exps) {
        g.add_node(
            &format!("L{l}"),
            [("experience", AttrValue::Int(*e as i64))],
        );
    }
    for &(a, b) in &raw.edges {
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// A compact description of a random pattern.
#[derive(Clone, Debug)]
struct RawPattern {
    labels: Vec<u8>,
    thresholds: Vec<u8>,
    edges: Vec<(u8, u8, u8)>, // from, to, bound (0 ⇒ unbounded)
}

fn raw_pattern() -> impl Strategy<Value = RawPattern> {
    (2usize..=4).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let thresholds = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8, 0u8..4), 1..n * 2);
        (labels, thresholds, edges).prop_map(|(labels, thresholds, edges)| RawPattern {
            labels,
            thresholds,
            edges,
        })
    })
}

fn build_pattern(raw: &RawPattern, force_bound_one: bool) -> Pattern {
    let nodes: Vec<PatternNode> = raw
        .labels
        .iter()
        .zip(&raw.thresholds)
        .enumerate()
        .map(|(i, (l, t))| PatternNode {
            name: format!("v{i}"),
            predicate: Predicate::label(format!("L{l}"))
                .and(Predicate::attr_ge("experience", *t as i64)),
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for &(f, t, b) in &raw.edges {
        if f == t || !seen.insert((f, t)) {
            continue;
        }
        let bound = if force_bound_one {
            Bound::ONE
        } else if b == 0 {
            Bound::Unbounded
        } else {
            Bound::hops(b as u32)
        };
        edges.push(PatternEdge {
            from: PNodeId(f as u32),
            to: PNodeId(t as u32),
            bound,
        });
    }
    Pattern::from_parts(nodes, edges, Some(PNodeId(0))).expect("valid pattern")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast matcher agrees with the naive oracle and its result is a
    /// valid (and, being the oracle's fixpoint, maximum) relation.
    #[test]
    fn bounded_simulation_sound_and_maximal(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, false);
        let fast = bounded_simulation(&g, &q).unwrap();
        let slow = naive_bounded_simulation(&g, &q);
        prop_assert_eq!(&fast, &slow);
        prop_assert!(is_valid_bounded_relation(&g, &q, &fast));
    }

    /// Bounded simulation with all bounds 1 is plain graph simulation.
    #[test]
    fn bound_one_is_simulation(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, true);
        let b = bounded_simulation(&g, &q).unwrap();
        let s = graph_simulation(&g, &q).unwrap();
        let n = naive_simulation(&g, &q);
        prop_assert_eq!(&b, &s);
        prop_assert_eq!(&s, &n);
    }

    /// Every isomorphism embedding is contained in the simulation result
    /// (iso is strictly more restrictive — paper §I).
    #[test]
    fn iso_embeddings_contained_in_simulation(rg in raw_graph(10), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, true);
        let m = graph_simulation(&g, &q).unwrap();
        let iso = subgraph_isomorphism(&g, &q, IsoOptions { limit: 5, max_steps: 100_000 });
        for emb in &iso.embeddings {
            for (i, &v) in emb.iter().enumerate() {
                prop_assert!(
                    m.contains(PNodeId(i as u32), v),
                    "iso pair (q{i}, {v}) missing from simulation"
                );
            }
        }
    }

    /// Raising a bound never removes matches (monotonicity in bounds).
    #[test]
    fn larger_bounds_monotone(rg in raw_graph(12), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q_small = build_pattern(&rp, false);
        // widen every finite bound by 1
        let mut raised = rp.clone();
        for e in &mut raised.edges {
            if e.2 > 0 {
                e.2 += 1;
            }
        }
        let q_big = build_pattern(&raised, false);
        let m_small = bounded_simulation(&g, &q_small).unwrap();
        let m_big = bounded_simulation(&g, &q_big).unwrap();
        for (u, v) in m_small.pairs() {
            prop_assert!(m_big.contains(u, v), "({u},{v}) lost after widening");
        }
    }

    /// Compression preserves answers, for both equivalences.
    #[test]
    fn compression_preserves_answers(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, false);
        let direct = bounded_simulation(&g, &q).unwrap();
        for method in [CompressionMethod::Bisimulation, CompressionMethod::SimulationEquivalence] {
            let c = compress_graph(&g, method).unwrap();
            prop_assert!(c.validate_pattern(&q).is_ok());
            let expanded = c.expand(&bounded_simulation(&c, &q).unwrap());
            prop_assert_eq!(&expanded, &direct, "{:?} diverged", method);
        }
    }

    /// Incremental maintenance equals recompute after an arbitrary
    /// sequence of edge updates (both maintainers).
    #[test]
    fn incremental_equals_recompute(
        rg in raw_graph(10),
        rp in raw_pattern(),
        ups in proptest::collection::vec((0u8..10, 0u8..10, proptest::bool::ANY), 1..20),
    ) {
        let mut g = build_graph(&rg);
        let n = g.node_count() as u8;

        let qb = build_pattern(&rp, false);
        let mut inc_b = IncrementalBoundedSim::new(&g, &qb);
        let qs = build_pattern(&rp, true);
        let mut inc_s = IncrementalSim::new(&g, &qs).unwrap();

        for &(a, b, insert) in &ups {
            let (a, b) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if a == b {
                continue;
            }
            let up = if insert {
                EdgeUpdate::Insert(a, b)
            } else {
                EdgeUpdate::Delete(a, b)
            };
            if g.apply(up) {
                inc_b.on_update(&g, up);
                inc_s.on_update(&g, up);
            }
        }
        prop_assert_eq!(inc_b.current(), bounded_simulation(&g, &qb).unwrap());
        prop_assert_eq!(inc_s.current(), graph_simulation(&g, &qs).unwrap());
    }

    /// Graph text-format round trip for arbitrary graphs.
    #[test]
    fn graph_io_roundtrip(rg in raw_graph(12)) {
        let g = build_graph(&rg);
        let mut buf = Vec::new();
        expfinder::graph::io::write_text(&g, &mut buf).unwrap();
        let g2 = expfinder::graph::io::read_text(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }
}
