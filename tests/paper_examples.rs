//! Integration lock on the paper's worked examples, exercised through the
//! public facade (`expfinder::prelude`) the way a downstream user would.
//!
//! Experiment index: E1 (Example 1 / Fig. 1), E2 (Example 2),
//! E3 (Example 3) — see DESIGN.md §2.

use expfinder::core::{rank_value, IsoOptions};
use expfinder::graph::fixtures::collaboration_fig1;
use expfinder::incremental::Maintainer;
use expfinder::pattern::fixtures::{fig1_pattern, fig1_pattern_simulation};
use expfinder::pattern::parser;
use expfinder::prelude::*;

/// E1: the exact match set of Example 1.
#[test]
fn e1_match_set_exact() {
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let m = bounded_simulation(&f.graph, &q).unwrap();

    let expect = |name: &str, node| {
        assert!(
            m.contains(q.node_id(name).unwrap(), node),
            "({name}, {node}) missing"
        );
    };
    expect("sa", f.bob);
    expect("sa", f.walt);
    expect("ba", f.jean);
    expect("sd", f.mat);
    expect("sd", f.dan);
    expect("sd", f.pat);
    expect("st", f.eva);
    assert_eq!(m.total_pairs(), 7, "and nothing else");
    assert!(!m.contains(q.node_id("sd").unwrap(), f.fred), "no Fred yet");
}

/// E1 (continued): the restrictiveness claims of §I.
#[test]
fn e1_simulation_and_isomorphism_fail() {
    let f = collaboration_fig1();
    let sim = graph_simulation(&f.graph, &fig1_pattern_simulation()).unwrap();
    assert!(sim.is_empty(), "edge-to-edge matching misses the team");
    let iso = expfinder::core::subgraph_isomorphism(
        &f.graph,
        &fig1_pattern(),
        IsoOptions {
            limit: 0,
            max_steps: 0,
        },
    );
    assert!(
        iso.embeddings.is_empty(),
        "bijective matching misses it too"
    );
}

/// E2: both rank values and the top-1 expert.
#[test]
fn e2_rank_values_exact() {
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let m = bounded_simulation(&f.graph, &q).unwrap();
    let rg = ResultGraph::build(&f.graph, &q, &m);
    assert!((rank_value(&rg, f.bob) - 9.0 / 5.0).abs() < 1e-12);
    assert!((rank_value(&rg, f.walt) - 7.0 / 3.0).abs() < 1e-12);
    let top = top_k(&f.graph, &q, &m, 1).unwrap();
    assert_eq!(top[0].node, f.bob);
}

/// E3: ΔM through the incremental module, in both directions.
#[test]
fn e3_delta_is_fred_only() {
    let mut f = collaboration_fig1();
    let q = fig1_pattern();
    let mut inc = IncrementalBoundedSim::new(&f.graph, &q);

    f.graph.add_edge(f.e1.0, f.e1.1);
    let delta = inc.on_update(&f.graph, EdgeUpdate::Insert(f.e1.0, f.e1.1));
    assert_eq!(delta.len(), 1);
    assert!(delta[0].added);
    assert_eq!(delta[0].data_node, f.fred);
    assert_eq!(
        inc.current(),
        bounded_simulation(&f.graph, &q).unwrap(),
        "maintained state equals recompute"
    );

    f.graph.remove_edge(f.e1.0, f.e1.1);
    let delta = inc.on_update(&f.graph, EdgeUpdate::Delete(f.e1.0, f.e1.1));
    assert_eq!(delta.len(), 1);
    assert!(!delta[0].added);
    assert_eq!(delta[0].data_node, f.fred);
}

/// The full engine pipeline reproduces all three examples at once,
/// through the handle-based `&self` API.
#[test]
fn engine_reproduces_all_examples() {
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let engine = ExpFinder::new(EngineConfig::default());
    let h = engine.add_graph("fig1", f.graph.clone()).unwrap();
    engine.register_query(&h, "team", q.clone()).unwrap();

    let report = engine.find_experts(&h, &q, 2).unwrap();
    assert_eq!(report.experts[0].node, f.bob);
    assert!((report.experts[0].rank - 1.8).abs() < 1e-12);

    // the fluent builder returns the same answer with timings attached
    let resp = engine.query(&h).pattern(q.clone()).top_k(2).run().unwrap();
    assert_eq!(resp.experts[0].node, f.bob);
    assert!(resp.timings.total >= resp.timings.rank);

    engine
        .apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
        .unwrap();
    let maintained = engine.registered_result(&h, "team").unwrap();
    assert_eq!(maintained.total_pairs(), 8);
    assert!(maintained.contains(q.node_id("sd").unwrap(), f.fred));
}

/// The Fig. 1 query written in the DSL gives an identical pattern
/// (fingerprint equality) and identical results.
#[test]
fn dsl_version_of_fig1_query_agrees() {
    let dsl = r#"
        node sa* where label = "SA" and experience >= 5;
        node sd  where label = "SD" and experience >= 2;
        node ba  where label = "BA" and experience >= 3;
        node st  where label = "ST" and experience >= 2;
        edge sa -> sd within 2;
        edge sa -> ba within 3;
        edge sd -> st within 2;
        edge ba -> st within 1;
    "#;
    let from_dsl = parser::parse(dsl).unwrap();
    let programmatic = fig1_pattern();
    assert_eq!(from_dsl.fingerprint(), programmatic.fingerprint());
    let f = collaboration_fig1();
    assert_eq!(
        bounded_simulation(&f.graph, &from_dsl).unwrap(),
        bounded_simulation(&f.graph, &programmatic).unwrap()
    );
}

/// Compression is transparent on the paper graph: same results via G_c.
#[test]
fn compressed_route_agrees_on_fig1() {
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let direct = bounded_simulation(&f.graph, &q).unwrap();
    let c = compress_graph(&f.graph, CompressionMethod::Bisimulation).unwrap();
    c.validate_pattern(&q).unwrap();
    let expanded = c.expand(&bounded_simulation(&c, &q).unwrap());
    assert_eq!(expanded, direct);
}
