//! Concurrency tests: `ExpFinder` is `Send + Sync` with a fully `&self`
//! query path, so an `Arc<ExpFinder>` is shared across threads — the
//! production scenario of one engine serving many clients. These tests
//! hammer that contract:
//!
//! * many readers against one graph agree with sequential answers;
//! * readers racing a writer always observe a *consistent snapshot*:
//!   every response's matches equal a fresh single-threaded evaluation of
//!   the graph at the version the response reports;
//! * readers on different graphs proceed independently while a writer
//!   updates a third graph.

use expfinder::graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder::pattern::fixtures::{demo_queries, fig1_pattern};
use expfinder::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

fn collab_graph(teams: usize, seed: u64) -> DiGraph {
    collaboration(
        &mut StdRng::seed_from_u64(seed),
        &CollabConfig {
            teams,
            team_size: 6,
            ..CollabConfig::default()
        },
    )
}

fn engine_with_collab() -> (Arc<ExpFinder>, GraphHandle) {
    let e = Arc::new(ExpFinder::default());
    let h = e.add_graph("c", collab_graph(30, 99)).unwrap();
    (e, h)
}

/// The engine type itself upholds the shareability contract.
#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExpFinder>();
    assert_send_sync::<Arc<ExpFinder>>();
    assert_send_sync::<GraphHandle>();
    assert_send_sync::<QueryResponse>();
}

#[test]
fn parallel_queries_agree() {
    let (engine, h) = engine_with_collab();
    let queries = demo_queries();

    // reference answers, sequential
    let reference: Vec<usize> = queries
        .iter()
        .map(|(_, q)| engine.evaluate(&h, q).unwrap().matches.total_pairs())
        .collect();

    // hammer the engine from 8 threads × 5 rounds × 3 queries each
    std::thread::scope(|s| {
        for t in 0..8 {
            let engine = &engine;
            let h = &h;
            let queries = &queries;
            let reference = &reference;
            s.spawn(move || {
                for round in 0..5 {
                    for (i, (_, q)) in queries.iter().enumerate() {
                        let got = engine.evaluate(h, q).unwrap().matches.total_pairs();
                        assert_eq!(got, reference[i], "thread {t} round {round} query {i}");
                    }
                }
            });
        }
    });

    // the cache took hits from all threads without corruption
    let stats = engine.cache_stats();
    assert!(stats.hits > 0);
    assert_eq!(stats.hits + stats.misses, 8 * 5 * 3 + 3);
}

#[test]
fn parallel_ranked_reports_agree() {
    let (engine, h) = engine_with_collab();
    let (_, q) = &demo_queries()[0];
    let reference = engine.find_experts(&h, q, 3).unwrap();
    let ref_ids: Vec<_> = reference.experts.iter().map(|e| e.node).collect();

    std::thread::scope(|s| {
        for _ in 0..6 {
            let engine = &engine;
            let h = &h;
            let ref_ids = &ref_ids;
            s.spawn(move || {
                let resp = engine.query(h).pattern(q.clone()).top_k(3).run().unwrap();
                let ids: Vec<_> = resp.experts.iter().map(|e| e.node).collect();
                assert_eq!(&ids, ref_ids);
            });
        }
    });
}

/// The headline requirement: N reader threads calling `evaluate` through
/// `Arc<ExpFinder>` while one writer applies `EdgeUpdate`s. Every result
/// a reader observes must equal a fresh single-threaded evaluation of the
/// graph at the version the engine reported for that result.
#[test]
fn readers_consistent_with_concurrent_writer() {
    const READERS: usize = 4;
    const UPDATES: usize = 60;

    let base = collab_graph(20, 7);
    let q = fig1_pattern();
    let updates = random_updates(&mut StdRng::seed_from_u64(41), &base, UPDATES, 0.5);

    // Precompute, single-threaded, the expected relation at *every*
    // version the graph will pass through.
    let mut expected: HashMap<u64, MatchRelation> = HashMap::new();
    {
        let mut g = base.clone();
        expected.insert(g.version(), bounded_simulation(&g, &q).unwrap());
        for &up in &updates {
            if g.apply(up) {
                expected.insert(g.version(), bounded_simulation(&g, &q).unwrap());
            }
        }
    }

    let engine = Arc::new(ExpFinder::default());
    let h = engine.add_graph("live", base).unwrap();

    std::thread::scope(|s| {
        // one writer, applying updates one at a time
        {
            let engine = Arc::clone(&engine);
            let h = h.clone();
            let updates = &updates;
            s.spawn(move || {
                for &up in updates {
                    engine.apply_updates(&h, &[up]).unwrap();
                    std::thread::yield_now();
                }
            });
        }
        // N readers, each validating every observation against the
        // precomputed truth for the version it was served
        for r in 0..READERS {
            let engine = Arc::clone(&engine);
            let h = h.clone();
            let q = q.clone();
            let expected = &expected;
            s.spawn(move || {
                let mut observed_versions = 0usize;
                for i in 0..120 {
                    let out = engine.evaluate(&h, &q).unwrap();
                    let truth = expected.get(&out.graph_version).unwrap_or_else(|| {
                        panic!(
                            "reader {r} iteration {i}: version {} was never a \
                             real graph state",
                            out.graph_version
                        )
                    });
                    assert_eq!(
                        *out.matches, *truth,
                        "reader {r} iteration {i}: matches diverge from a fresh \
                         evaluation at version {}",
                        out.graph_version
                    );
                    observed_versions += 1;
                    if i % 10 == 0 {
                        std::thread::yield_now();
                    }
                }
                assert_eq!(observed_versions, 120);
            });
        }
    });

    // after the writer finishes, the engine agrees with the final truth
    let final_out = engine.evaluate(&h, &q).unwrap();
    let final_truth = engine
        .read_graph(&h, |g| bounded_simulation(g, &q).unwrap())
        .unwrap();
    assert_eq!(*final_out.matches, final_truth);
}

/// Readers of one graph are not blocked by a writer hammering another:
/// different graphs have independent locks. (Correctness check — both
/// workloads finish with exact answers.)
#[test]
fn independent_graphs_run_in_parallel() {
    let engine = Arc::new(ExpFinder::default());
    let ha = engine.add_graph("a", collab_graph(15, 1)).unwrap();
    let hb = engine.add_graph("b", collab_graph(15, 2)).unwrap();
    let q = fig1_pattern();
    let expect_a = engine.evaluate(&ha, &q).unwrap().matches.total_pairs();

    let updates = {
        let base = engine.snapshot(&hb).unwrap();
        random_updates(&mut StdRng::seed_from_u64(5), &base, 40, 0.5)
    };

    std::thread::scope(|s| {
        {
            let engine = Arc::clone(&engine);
            let hb = hb.clone();
            s.spawn(move || {
                for up in updates {
                    engine.apply_updates(&hb, &[up]).unwrap();
                }
            });
        }
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let ha = ha.clone();
            let q = q.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let got = engine.evaluate(&ha, &q).unwrap().matches.total_pairs();
                    assert_eq!(got, expect_a, "graph `a` never changed");
                }
            });
        }
    });

    // graph b ended in a consistent state too
    let fresh = engine
        .read_graph(&hb, |g| bounded_simulation(g, &q).unwrap())
        .unwrap();
    assert_eq!(*engine.evaluate(&hb, &q).unwrap().matches, fresh);
}

#[test]
fn matchers_are_send_across_threads() {
    // match relations and result graphs move across thread boundaries
    let g = collab_graph(10, 5);
    let (_, q) = demo_queries().remove(0);
    let handle = std::thread::spawn(move || {
        let m = bounded_simulation(&g, &q).unwrap();
        let rg = ResultGraph::build(&g, &q, &m);
        (m.total_pairs(), rg.node_count())
    });
    let (pairs, nodes) = handle.join().unwrap();
    assert!(pairs >= nodes || pairs == 0);
}
