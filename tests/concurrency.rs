//! Concurrency tests: the engine's read path (`evaluate`, `find_experts`)
//! is `&self` with an internal lock on the result cache, so many threads
//! may query the same engine simultaneously — the demo scenario of several
//! GUI users browsing one dataset.

use expfinder::graph::generate::{collaboration, CollabConfig};
use expfinder::pattern::fixtures::demo_queries;
use expfinder::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with_collab() -> ExpFinder {
    let g = collaboration(
        &mut StdRng::seed_from_u64(99),
        &CollabConfig {
            teams: 30,
            team_size: 6,
            ..CollabConfig::default()
        },
    );
    let mut e = ExpFinder::default();
    e.add_graph("c", g).unwrap();
    e
}

#[test]
fn parallel_queries_agree() {
    let engine = engine_with_collab();
    let queries = demo_queries();

    // reference answers, sequential
    let reference: Vec<usize> = queries
        .iter()
        .map(|(_, q)| engine.evaluate("c", q).unwrap().matches.total_pairs())
        .collect();

    // hammer the engine from 8 threads × 3 queries each
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8 {
            let engine = &engine;
            let queries = &queries;
            let reference = &reference;
            handles.push(s.spawn(move |_| {
                for round in 0..5 {
                    for (i, (_, q)) in queries.iter().enumerate() {
                        let got = engine.evaluate("c", q).unwrap().matches.total_pairs();
                        assert_eq!(got, reference[i], "thread {t} round {round} query {i}");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .unwrap();

    // the cache took hits from all threads without corruption
    let stats = engine.cache_stats();
    assert!(stats.hits > 0);
    assert_eq!(stats.hits + stats.misses, 8 * 5 * 3 + 3);
}

#[test]
fn parallel_ranked_reports_agree() {
    let engine = engine_with_collab();
    let (_, q) = &demo_queries()[0];
    let reference = engine.find_experts("c", q, 3).unwrap();
    let ref_ids: Vec<_> = reference.experts.iter().map(|e| e.node).collect();

    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..6 {
            let engine = &engine;
            let ref_ids = &ref_ids;
            handles.push(s.spawn(move |_| {
                let report = engine.find_experts("c", q, 3).unwrap();
                let ids: Vec<_> = report.experts.iter().map(|e| e.node).collect();
                assert_eq!(&ids, ref_ids);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn matchers_are_send_across_threads() {
    // match relations and result graphs move across thread boundaries
    let g = collaboration(
        &mut StdRng::seed_from_u64(5),
        &CollabConfig {
            teams: 10,
            team_size: 5,
            ..CollabConfig::default()
        },
    );
    let (_, q) = demo_queries().remove(0);
    let handle = std::thread::spawn(move || {
        let m = bounded_simulation(&g, &q).unwrap();
        let rg = ResultGraph::build(&g, &q, &m);
        (m.total_pairs(), rg.node_count())
    });
    let (pairs, nodes) = handle.join().unwrap();
    assert!(pairs >= nodes || pairs == 0);
}
