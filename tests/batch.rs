//! Batch and parallel-execution determinism tests.
//!
//! The parallel refinement path (CSR snapshot + round-based frontier
//! workers) and the batch executor must be *invisible* except in speed:
//!
//! * property tests: parallel sim / dualsim / bsim are bit-identical to
//!   the sequential fixpoints on arbitrary generated graphs and patterns,
//!   on both the live `DiGraph` and its `CsrGraph` snapshot;
//! * `query_batch` responses equal per-query sequential `run()` at the
//!   same `graph_version`;
//! * a batch racing `apply_updates` only ever observes consistent
//!   snapshots: every response equals a fresh sequential evaluation of
//!   the graph at the version the response reports.

use expfinder::core::{
    dual_simulation, parallel_bounded_simulation, parallel_dual_simulation, parallel_simulation,
};
use expfinder::graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder::pattern::fixtures::demo_queries;
use expfinder::pattern::{Bound, PNodeId, Pattern, PatternEdge, PatternNode, Predicate};
use expfinder::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// generators (same compact raw encodings as tests/properties.rs)
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RawGraph {
    labels: Vec<u8>,
    exps: Vec<u8>,
    edges: Vec<(u8, u8)>,
}

fn raw_graph(max_nodes: usize) -> impl Strategy<Value = RawGraph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let exps = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..n * 3);
        (labels, exps, edges).prop_map(|(labels, exps, edges)| RawGraph {
            labels,
            exps,
            edges,
        })
    })
}

fn build_graph(raw: &RawGraph) -> DiGraph {
    let mut g = DiGraph::new();
    for (l, e) in raw.labels.iter().zip(&raw.exps) {
        g.add_node(
            &format!("L{l}"),
            [("experience", AttrValue::Int(*e as i64))],
        );
    }
    for &(a, b) in &raw.edges {
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

#[derive(Clone, Debug)]
struct RawPattern {
    labels: Vec<u8>,
    thresholds: Vec<u8>,
    edges: Vec<(u8, u8, u8)>, // from, to, bound (0 ⇒ unbounded)
}

fn raw_pattern() -> impl Strategy<Value = RawPattern> {
    (2usize..=4).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let thresholds = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8, 0u8..4), 1..n * 2);
        (labels, thresholds, edges).prop_map(|(labels, thresholds, edges)| RawPattern {
            labels,
            thresholds,
            edges,
        })
    })
}

fn build_pattern(raw: &RawPattern, force_bound_one: bool) -> Pattern {
    let nodes: Vec<PatternNode> = raw
        .labels
        .iter()
        .zip(&raw.thresholds)
        .enumerate()
        .map(|(i, (l, t))| PatternNode {
            name: format!("v{i}"),
            predicate: Predicate::label(format!("L{l}"))
                .and(Predicate::attr_ge("experience", *t as i64)),
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for &(f, t, b) in &raw.edges {
        if f == t || !seen.insert((f, t)) {
            continue;
        }
        let bound = if force_bound_one {
            Bound::ONE
        } else if b == 0 {
            Bound::Unbounded
        } else {
            Bound::hops(b as u32)
        };
        edges.push(PatternEdge {
            from: PNodeId(f as u32),
            to: PNodeId(t as u32),
            bound,
        });
    }
    Pattern::from_parts(nodes, edges, Some(PNodeId(0))).expect("valid pattern")
}

// ---------------------------------------------------------------------
// parallel refinement ≡ sequential fixpoint
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel bounded simulation equals the sequential fixpoint, on the
    /// live adjacency and on the CSR snapshot, at several thread counts.
    #[test]
    fn parallel_bsim_equals_sequential(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, false);
        let seq = bounded_simulation(&g, &q).unwrap();
        let csr = CsrGraph::snapshot(&g);
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&parallel_bounded_simulation(&g, &q, threads).unwrap(), &seq);
            prop_assert_eq!(&parallel_bounded_simulation(&csr, &q, threads).unwrap(), &seq);
        }
    }

    /// Parallel plain simulation equals the sequential counter-based
    /// algorithm on bound-1 patterns.
    #[test]
    fn parallel_sim_equals_sequential(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, true);
        let seq = graph_simulation(&g, &q).unwrap();
        let csr = CsrGraph::snapshot(&g);
        prop_assert_eq!(&parallel_simulation(&g, &q, 3).unwrap(), &seq);
        prop_assert_eq!(&parallel_simulation(&csr, &q, 3).unwrap(), &seq);
    }

    /// Parallel dual simulation equals the sequential bidirectional
    /// fixpoint.
    #[test]
    fn parallel_dualsim_equals_sequential(rg in raw_graph(14), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, false);
        let seq = dual_simulation(&g, &q);
        let csr = CsrGraph::snapshot(&g);
        prop_assert_eq!(&parallel_dual_simulation(&g, &q, 3), &seq);
        prop_assert_eq!(&parallel_dual_simulation(&csr, &q, 3), &seq);
    }

    /// A parallel-engine batch over a generated graph equals per-query
    /// sequential runs at the same version — the engine-level contract.
    #[test]
    fn batch_equals_sequential_runs(rg in raw_graph(12), rp in raw_pattern()) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp, false);
        let par = ExpFinder::new(EngineConfig {
            exec: ExecConfig { threads: 2, batch_parallelism: 3 },
            ..EngineConfig::default()
        });
        let seq = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let hp = par.add_graph("g", g.clone()).unwrap();
        let hs = seq.add_graph("g", g).unwrap();
        let specs = vec![
            QuerySpec::pattern(q.clone()),
            QuerySpec::pattern(q.clone()).top_k(3),
            QuerySpec::pattern(q.clone()).prefer(Route::Direct),
        ];
        let batch = par.query_batch(&hp, specs);
        let singles = [
            seq.query(&hs).pattern(q.clone()).run().unwrap(),
            seq.query(&hs).pattern(q.clone()).top_k(3).run().unwrap(),
            seq.query(&hs).pattern(q).prefer(Route::Direct).run().unwrap(),
        ];
        for (i, single) in singles.iter().enumerate() {
            let b = batch[i].as_ref().unwrap();
            prop_assert_eq!(&*b.matches, &*single.matches, "slot {}", i);
            prop_assert_eq!(
                b.experts.iter().map(|x| x.node).collect::<Vec<_>>(),
                single.experts.iter().map(|x| x.node).collect::<Vec<_>>(),
                "slot {}", i
            );
        }
    }
}

// ---------------------------------------------------------------------
// engine-level batch contracts
// ---------------------------------------------------------------------

fn collab_graph(teams: usize, seed: u64) -> DiGraph {
    collaboration(
        &mut StdRng::seed_from_u64(seed),
        &CollabConfig {
            teams,
            team_size: 6,
            ..CollabConfig::default()
        },
    )
}

/// Batch responses on a quiescent graph equal fluent per-query runs.
#[test]
fn batch_matches_fluent_runs_on_static_graph() {
    let g = collab_graph(25, 17);
    let par = ExpFinder::new(EngineConfig {
        exec: ExecConfig {
            threads: 2,
            batch_parallelism: 4,
        },
        ..EngineConfig::default()
    });
    let seq = ExpFinder::new(EngineConfig {
        exec: ExecConfig::sequential(),
        ..EngineConfig::default()
    });
    let hp = par.add_graph("c", g.clone()).unwrap();
    let hs = seq.add_graph("c", g).unwrap();

    let queries = demo_queries();
    let specs: Vec<QuerySpec> = queries
        .iter()
        .map(|(_, q)| QuerySpec::pattern(q.clone()).top_k(3))
        .collect();
    let batch = par.query_batch(&hp, specs);
    assert_eq!(batch.len(), queries.len());
    for (i, (name, q)) in queries.iter().enumerate() {
        let b = batch[i].as_ref().unwrap();
        let s = seq.query(&hs).pattern(q.clone()).top_k(3).run().unwrap();
        assert_eq!(b.graph_version, s.graph_version, "{name}");
        assert_eq!(*b.matches, *s.matches, "{name}: matches diverge");
        assert_eq!(
            b.experts
                .iter()
                .map(|x| (x.node, x.rank))
                .collect::<Vec<_>>(),
            s.experts
                .iter()
                .map(|x| (x.node, x.rank))
                .collect::<Vec<_>>(),
            "{name}: ranking diverges"
        );
    }
}

/// Batches racing a writer observe only consistent snapshots: every
/// response equals a fresh sequential evaluation at its reported version.
#[test]
fn batch_racing_updates_stays_consistent() {
    const UPDATES: usize = 40;
    const ROUNDS: usize = 12;

    let base = collab_graph(15, 23);
    let queries = demo_queries();
    let updates = random_updates(&mut StdRng::seed_from_u64(51), &base, UPDATES, 0.5);

    // sequential ground truth for every (version, query) the graph can
    // pass through
    let mut expected: HashMap<(u64, usize), MatchRelation> = HashMap::new();
    {
        let mut g = base.clone();
        for (qi, (_, q)) in queries.iter().enumerate() {
            expected.insert((g.version(), qi), bounded_simulation(&g, q).unwrap());
        }
        for &up in &updates {
            if g.apply(up) {
                for (qi, (_, q)) in queries.iter().enumerate() {
                    expected.insert((g.version(), qi), bounded_simulation(&g, q).unwrap());
                }
            }
        }
    }

    let engine = Arc::new(ExpFinder::new(EngineConfig {
        exec: ExecConfig {
            threads: 2,
            batch_parallelism: 3,
        },
        ..EngineConfig::default()
    }));
    let h = engine.add_graph("live", base).unwrap();

    std::thread::scope(|s| {
        {
            let engine = Arc::clone(&engine);
            let h = h.clone();
            let updates = &updates;
            s.spawn(move || {
                for &up in updates {
                    engine.apply_updates(&h, &[up]).unwrap();
                    std::thread::yield_now();
                }
            });
        }
        {
            let engine = Arc::clone(&engine);
            let h = h.clone();
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let specs: Vec<QuerySpec> = queries
                        .iter()
                        .map(|(_, q)| QuerySpec::pattern(q.clone()))
                        .collect();
                    let batch = engine.query_batch(&h, specs);
                    for (qi, result) in batch.iter().enumerate() {
                        let resp = result.as_ref().unwrap();
                        let truth = expected.get(&(resp.graph_version, qi)).unwrap_or_else(|| {
                            panic!(
                                "round {round} query {qi}: version {} was never \
                                     a real graph state",
                                resp.graph_version
                            )
                        });
                        assert_eq!(
                            *resp.matches, *truth,
                            "round {round} query {qi}: batch response diverges from \
                             sequential evaluation at version {}",
                            resp.graph_version
                        );
                    }
                }
            });
        }
    });

    // quiesced: batch equals a final fresh evaluation
    let final_batch = engine.query_batch(
        &h,
        queries
            .iter()
            .map(|(_, q)| QuerySpec::pattern(q.clone()))
            .collect(),
    );
    for (qi, (_, q)) in queries.iter().enumerate() {
        let truth = engine
            .read_graph(&h, |g| bounded_simulation(g, q).unwrap())
            .unwrap();
        assert_eq!(*final_batch[qi].as_ref().unwrap().matches, truth);
    }
}
