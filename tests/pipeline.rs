//! Cross-crate pipeline tests: realistic end-to-end flows a user of the
//! system would run, combining generation, the engine, compression,
//! registered queries, updates and persistence — all through the
//! handle-based `&self` API.

use expfinder::engine::{storage, EvalRoute, Route};
use expfinder::graph::generate::{
    collaboration, random_updates, twitter_like, CollabConfig, TwitterConfig,
};
use expfinder::graph::GraphView;
use expfinder::pattern::fixtures::demo_queries;
use expfinder::pattern::parser;
use expfinder::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn collab(teams: usize, seed: u64) -> DiGraph {
    collaboration(
        &mut StdRng::seed_from_u64(seed),
        &CollabConfig {
            teams,
            team_size: 7,
            ..CollabConfig::default()
        },
    )
}

/// Generate → query → compress → query again: identical matches, the
/// second answer routed through the compressed graph.
#[test]
fn compress_route_transparency() {
    let g = twitter_like(
        &mut StdRng::seed_from_u64(3),
        &TwitterConfig {
            n: 3000,
            avg_out: 4,
            hub_fraction: 0.01,
            buckets: 3,
        },
    );
    let q = parser::parse(
        r#"node media* where label = "media";
           node fan where label = "user";
           edge fan -> media within 2;"#,
    )
    .unwrap();

    let engine = ExpFinder::default();
    let t = engine.add_graph("t", g).unwrap();
    let direct = engine.evaluate(&t, &q).unwrap();
    assert_eq!(direct.route, EvalRoute::DirectBounded);

    let stats = engine.compress(&t).unwrap();
    assert!(stats.size_reduction() > 0.2, "twitter-like compresses");
    let via_c = engine
        .query(&t)
        .pattern(q)
        .prefer(Route::Compressed)
        .run()
        .unwrap();
    assert_eq!(via_c.route, EvalRoute::Compressed);
    assert_eq!(*via_c.matches, *direct.matches);
}

/// Registered queries stay exact across a long random update stream while
/// the compressed graph is maintained alongside.
#[test]
fn long_update_stream_consistency() {
    let g = collab(40, 11);
    let (_, q) = &demo_queries()[0]; // Q1 = the Fig. 1 pattern
    let engine = ExpFinder::default();
    let c = engine.add_graph("c", g).unwrap();
    engine.compress(&c).unwrap();
    engine.register_query(&c, "q1", q.clone()).unwrap();

    let mut rng = StdRng::seed_from_u64(13);
    for round in 0..6 {
        let ups = engine
            .read_graph(&c, |g| random_updates(&mut rng, g, 15, 0.5))
            .unwrap();
        engine.apply_updates(&c, &ups).unwrap();

        // maintained result == fresh evaluation on the live graph
        let maintained = engine.registered_result(&c, "q1").unwrap();
        let fresh = engine
            .read_graph(&c, |g| bounded_simulation(g, q).unwrap())
            .unwrap();
        assert_eq!(maintained, fresh, "round {round}: registered query drifted");

        // compressed route == direct route on the same engine
        let direct = engine
            .query(&c)
            .pattern(q.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap();
        let routed = engine
            .query(&c)
            .pattern(q.clone())
            .prefer(Route::Compressed)
            .run()
            .unwrap();
        assert_eq!(routed.route, EvalRoute::Compressed, "round {round}");
        assert_eq!(
            *routed.matches, *direct.matches,
            "round {round}: G_c drifted"
        );
    }
}

/// Save a catalog, reload it, and verify query equivalence.
#[test]
fn persistence_pipeline() {
    let dir = std::env::temp_dir().join(format!("expfinder_pipeline_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let g = collab(25, 17);
    let (_, q) = &demo_queries()[1]; // Q2
    let engine = ExpFinder::default();
    let c = engine.add_graph("c", g).unwrap();
    let before = engine.evaluate(&c, q).unwrap();

    storage::save_catalog(&engine, &dir).unwrap();
    let reloaded = storage::load_catalog(&dir).unwrap();
    let c2 = reloaded.handle("c").unwrap();
    let after = reloaded.evaluate(&c2, q).unwrap();
    assert_eq!(*after.matches, *before.matches);

    // results round-trip too
    let rpath = dir.join("q2.result.json");
    storage::save_result(&before.matches, &rpath).unwrap();
    let loaded = storage::load_result(&rpath).unwrap();
    assert_eq!(loaded, *before.matches);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The ranked experts a user sees are stable across evaluation routes.
#[test]
fn ranking_stable_across_routes() {
    let g = collab(30, 23);
    let (_, q) = &demo_queries()[0];

    let plain = ExpFinder::default();
    let h = plain.add_graph("c", g.clone()).unwrap();
    let direct = plain.find_experts(&h, q, 5).unwrap();

    let compressed = ExpFinder::default();
    let hc = compressed.add_graph("c", g.clone()).unwrap();
    compressed.compress(&hc).unwrap();
    let via_c = compressed.find_experts(&hc, q, 5).unwrap();

    let registered = ExpFinder::default();
    let hr = registered.add_graph("c", g).unwrap();
    registered.register_query(&hr, "q", q.clone()).unwrap();
    let via_r = registered.find_experts(&hr, q, 5).unwrap();

    let ids = |r: &expfinder::engine::ExpertReport| {
        r.experts
            .iter()
            .map(|e| (e.node, e.rank.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(ids(&direct), ids(&via_c));
    assert_eq!(ids(&direct), ids(&via_r));
}

/// Demo queries Q1–Q3 run end to end on a generated network and produce
/// ranked experts with finite ranks.
#[test]
fn demo_queries_end_to_end() {
    let g = collab(60, 29);
    assert!(g.node_count() > 0);
    let engine = ExpFinder::default();
    let c = engine.add_graph("c", g).unwrap();
    for (name, q) in demo_queries() {
        let report = engine.find_experts(&c, &q, 3).unwrap();
        assert!(
            !report.experts.is_empty(),
            "{name} should find at least one expert"
        );
        assert!(
            report.experts[0].rank.is_finite(),
            "{name}'s best expert should be connected"
        );
    }
}

/// Unit-update engine flow mirroring the demo script: evaluate, update,
/// re-evaluate (version-keyed cache cannot serve stale data).
#[test]
fn cache_versioning_under_updates() {
    let g = collab(20, 31);
    let (_, q) = &demo_queries()[0];
    let engine = ExpFinder::default();
    let c = engine.add_graph("c", g).unwrap();

    let first = engine.evaluate(&c, q).unwrap();
    let cached = engine.evaluate(&c, q).unwrap();
    assert_eq!(cached.route, EvalRoute::Cache);

    let ups = engine
        .read_graph(&c, |g| {
            random_updates(&mut StdRng::seed_from_u64(37), g, 5, 0.0) // deletions
        })
        .unwrap();
    engine.apply_updates(&c, &ups).unwrap();
    let after = engine.evaluate(&c, q).unwrap();
    assert_ne!(after.route, EvalRoute::Cache, "version bumped");
    // deletions can only shrink the relation
    assert!(after.matches.total_pairs() <= first.matches.total_pairs());
}

/// Engine configuration paths: parallel result-graph threads and disabled
/// compression routing both preserve answers.
#[test]
fn engine_config_variants_agree() {
    let g = collab(25, 41);
    let (_, q) = &demo_queries()[0];

    let default_engine = ExpFinder::default();
    let hd = default_engine.add_graph("c", g.clone()).unwrap();
    let reference = default_engine.find_experts(&hd, q, 5).unwrap();

    // parallel execution (CSR fast path + threaded result graph)
    let threaded = ExpFinder::new(EngineConfig {
        exec: ExecConfig {
            threads: 4,
            batch_parallelism: 4,
        },
        ..EngineConfig::default()
    });
    let ht = threaded.add_graph("c", g.clone()).unwrap();
    let via_threads = threaded.find_experts(&ht, q, 5).unwrap();
    assert_eq!(
        reference.experts.iter().map(|e| e.node).collect::<Vec<_>>(),
        via_threads
            .experts
            .iter()
            .map(|e| e.node)
            .collect::<Vec<_>>()
    );

    // compression present but routing disabled
    let no_auto = ExpFinder::new(EngineConfig {
        auto_use_compressed: false,
        ..EngineConfig::default()
    });
    let hn = no_auto.add_graph("c", g).unwrap();
    no_auto.compress(&hn).unwrap();
    let out = no_auto.evaluate(&hn, q).unwrap();
    assert_eq!(out.route, EvalRoute::DirectBounded, "auto routing disabled");
    assert_eq!(*out.matches, *reference.outcome.matches);
}

/// Stress the paper fixture through repeated insert/delete cycles of e1:
/// maintainer state must not drift or leak across 40 reversals.
#[test]
fn e1_cycle_stress() {
    use expfinder::graph::fixtures::collaboration_fig1;
    use expfinder::incremental::Maintainer;
    use expfinder::pattern::fixtures::fig1_pattern;

    let mut f = collaboration_fig1();
    let q = fig1_pattern();
    let mut inc = IncrementalBoundedSim::new(&f.graph, &q);
    for round in 0..20 {
        f.graph.add_edge(f.e1.0, f.e1.1);
        inc.on_update(&f.graph, EdgeUpdate::Insert(f.e1.0, f.e1.1));
        assert_eq!(inc.current().total_pairs(), 8, "round {round} insert");
        f.graph.remove_edge(f.e1.0, f.e1.1);
        inc.on_update(&f.graph, EdgeUpdate::Delete(f.e1.0, f.e1.1));
        assert_eq!(inc.current().total_pairs(), 7, "round {round} delete");
    }
    assert_eq!(
        inc.current(),
        bounded_simulation(&f.graph, &q).unwrap(),
        "no drift after 40 reversals"
    );
}
