//! Beyond expert search: the paper notes "the same methods can be used
//! to, e.g., recommend movies, find jobs, explore advertising strategies".
//! This example finds *job candidates* in a professional network and
//! showcases the two extension features:
//!
//! * **dual simulation** — candidates must not only lead the right people
//!   but also be endorsed (reached) by a senior within the bound, pruning
//!   matches plain bounded simulation would keep;
//! * **the reachability index** — an O(1) oracle used to pre-screen
//!   whether a candidate is connected to the hiring organization at all.
//!
//! Run with: `cargo run --example job_matching`

use expfinder::compress::ReachIndex;
use expfinder::core::dual_simulation;
use expfinder::prelude::*;

fn person(g: &mut DiGraph, name: &str, role: &str, years: i64) -> NodeId {
    g.add_node(
        role,
        [
            ("name", AttrValue::Str(name.into())),
            ("experience", AttrValue::Int(years)),
        ],
    )
}

fn name_of(g: &DiGraph, v: NodeId) -> String {
    g.attr_of(v, "name")
        .and_then(|a| a.as_str())
        .unwrap_or("?")
        .to_owned()
}

fn main() {
    // A professional network: "a → b" means "a has worked with / endorses b".
    let mut g = DiGraph::new();
    let cto = person(&mut g, "Nadia", "CTO", 15);
    let lena = person(&mut g, "Lena", "PM", 9); // endorsed PM
    let omar = person(&mut g, "Omar", "PM", 8); // PM without endorsement chain
    let dev1 = person(&mut g, "Kai", "SD", 4);
    let dev2 = person(&mut g, "Iris", "SD", 6);
    let dev3 = person(&mut g, "Tom", "SD", 2);
    let isolated = person(&mut g, "Zed", "SD", 7); // not connected at all

    g.add_edge(cto, lena); // Nadia endorses Lena
    g.add_edge(lena, dev1);
    g.add_edge(lena, dev2);
    g.add_edge(omar, dev2);
    g.add_edge(omar, dev3);
    g.add_edge(dev2, dev3);
    let _ = isolated;

    // The job: a project manager with ≥ 5 years who has led senior
    // developers (within 2 hops).
    let job = PatternBuilder::new()
        .node_output(
            "pm",
            Predicate::label("PM").and(Predicate::attr_ge("experience", 5)),
        )
        .node(
            "team",
            Predicate::label("SD").and(Predicate::attr_ge("experience", 3)),
        )
        .edge("pm", "team", Bound::hops(2))
        .build()
        .expect("valid job description");

    // --- step 1: reachability pre-screen -------------------------------
    // Only consider people connected to the CTO's organization at all.
    let reach = ReachIndex::build(&g);
    println!(
        "reachability index: {} people → {} classes",
        g.node_count(),
        reach.class_count()
    );
    let connected: Vec<NodeId> = g
        .ids()
        .filter(|&v| reach.reachable(cto, v) || reach.reachable(v, cto))
        .collect();
    println!(
        "connected to the organization: {} of {} people",
        connected.len(),
        g.node_count()
    );
    assert!(!connected.contains(&isolated), "Zed is pre-screened out");

    // --- step 2: plain bounded simulation ------------------------------
    let plain = bounded_simulation(&g, &job).expect("query runs");
    let pm = job.node_id("pm").unwrap();
    let plain_pms: Vec<String> = plain
        .matches_vec(pm)
        .iter()
        .map(|&v| name_of(&g, v))
        .collect();
    println!("\nbounded simulation PM candidates: {plain_pms:?}");

    // --- step 3: dual simulation asks for endorsement too --------------
    // Add the requirement: the PM must be endorsed by a CTO-level person
    // (an incoming pattern edge — exactly what dual simulation enforces).
    let job_endorsed = PatternBuilder::new()
        .node("cto", Predicate::label("CTO"))
        .node_output(
            "pm",
            Predicate::label("PM").and(Predicate::attr_ge("experience", 5)),
        )
        .node(
            "team",
            Predicate::label("SD").and(Predicate::attr_ge("experience", 3)),
        )
        .edge("cto", "pm", Bound::hops(2))
        .edge("pm", "team", Bound::hops(2))
        .build()
        .expect("valid");

    let plain2 = bounded_simulation(&g, &job_endorsed).unwrap();
    let dual = dual_simulation(&g, &job_endorsed);
    let plain_pms: Vec<String> = plain2
        .matches_vec(pm_of(&job_endorsed))
        .iter()
        .map(|&v| name_of(&g, v))
        .collect();
    let dual_pms: Vec<String> = dual
        .matches_vec(pm_of(&job_endorsed))
        .iter()
        .map(|&v| name_of(&g, v))
        .collect();
    println!("with endorsement edge, bounded simulation keeps: {plain_pms:?}");
    println!("dual simulation (endorsement enforced) keeps:    {dual_pms:?}");
    assert!(dual_pms.contains(&"Lena".to_owned()));
    assert!(
        !dual_pms.contains(&"Omar".to_owned()),
        "Omar has the team but no endorsement chain"
    );

    // --- step 4: rank the survivors -------------------------------------
    let ranked = top_k(&g, &job_endorsed, &dual, 3).expect("output node set");
    println!("\nfinal ranked candidates:");
    for (i, r) in ranked.iter().enumerate() {
        println!("  #{} {} (rank {:.3})", i + 1, name_of(&g, r.node), r.rank);
    }
    assert_eq!(name_of(&g, ranked[0].node), "Lena");
}

fn pm_of(q: &Pattern) -> expfinder::pattern::PNodeId {
    q.node_id("pm").unwrap()
}
