//! Quickstart: build a small collaboration graph, express a hiring
//! requirement as a bounded-simulation pattern, and get ranked experts.
//!
//! Run with: `cargo run --example quickstart`

use expfinder::prelude::*;

fn main() {
    // --- a tiny collaboration network ----------------------------------
    // Edges mean "collaborated in a project with / led".
    let mut g = DiGraph::new();
    let ana = g.add_node(
        "SA",
        [
            ("name", AttrValue::Str("Ana".into())),
            ("experience", AttrValue::Int(8)),
        ],
    );
    let raj = g.add_node(
        "SA",
        [
            ("name", AttrValue::Str("Raj".into())),
            ("experience", AttrValue::Int(6)),
        ],
    );
    let dev1 = g.add_node(
        "SD",
        [
            ("name", AttrValue::Str("Kim".into())),
            ("experience", AttrValue::Int(4)),
        ],
    );
    let dev2 = g.add_node(
        "SD",
        [
            ("name", AttrValue::Str("Lee".into())),
            ("experience", AttrValue::Int(2)),
        ],
    );
    let tester = g.add_node(
        "ST",
        [
            ("name", AttrValue::Str("Mia".into())),
            ("experience", AttrValue::Int(3)),
        ],
    );
    let pm = g.add_node(
        "PM",
        [
            ("name", AttrValue::Str("Sam".into())),
            ("experience", AttrValue::Int(5)),
        ],
    );
    // Ana leads Kim directly; Raj only collaborates with the developers
    // through Sam, the project manager.
    g.add_edge(ana, dev1);
    g.add_edge(raj, pm);
    g.add_edge(pm, dev1);
    g.add_edge(dev1, dev2);
    g.add_edge(dev1, tester);
    g.add_edge(dev2, tester);

    // --- the requirement as a pattern ----------------------------------
    // "An architect with ≥ 5 years who worked with a developer (within 2
    //  hops) whose work was tested (within 2 hops)."
    let pattern = PatternBuilder::new()
        .node_output(
            "architect",
            Predicate::label("SA").and(Predicate::attr_ge("experience", 5)),
        )
        .node("developer", Predicate::label("SD"))
        .node("tester", Predicate::label("ST"))
        .edge("architect", "developer", Bound::hops(2))
        .edge("developer", "tester", Bound::hops(2))
        .build()
        .expect("valid pattern");

    // --- evaluate and rank ----------------------------------------------
    let matches = bounded_simulation(&g, &pattern).expect("evaluation succeeds");
    println!("match relation M(Q,G): {} pairs", matches.total_pairs());
    for (u, v) in matches.pairs() {
        let name = g.attr_of(v, "name").and_then(|a| a.as_str()).unwrap_or("?");
        println!("  {} ⊨ {}", pattern.node(u).name, name);
    }

    let experts = top_k(&g, &pattern, &matches, 2).expect("pattern has an output node");
    println!("\ntop experts by social impact (lower = closer to the team):");
    for (i, e) in experts.iter().enumerate() {
        let name = g
            .attr_of(e.node, "name")
            .and_then(|a| a.as_str())
            .unwrap_or("?");
        println!("  #{} {} (rank {:.3})", i + 1, name, e.rank);
    }

    // Both architects match, but Ana collaborates directly with the team
    // while Raj goes through the project manager — Ana's average social
    // distance is strictly smaller, so she ranks first.
    assert_eq!(experts[0].node, ana);
    assert!(experts[0].rank < experts[1].rank);
}
