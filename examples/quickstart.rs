//! Quickstart: build a small collaboration graph, express a hiring
//! requirement as a bounded-simulation pattern, and get ranked experts —
//! first through the shareable engine (the handle/builder API every
//! service would use), then through the raw matching layer.
//!
//! Run with: `cargo run --example quickstart`

use expfinder::prelude::*;
use std::sync::Arc;

fn main() {
    // --- a tiny collaboration network ----------------------------------
    // Edges mean "collaborated in a project with / led".
    let mut g = DiGraph::new();
    let ana = g.add_node(
        "SA",
        [
            ("name", AttrValue::Str("Ana".into())),
            ("experience", AttrValue::Int(8)),
        ],
    );
    let raj = g.add_node(
        "SA",
        [
            ("name", AttrValue::Str("Raj".into())),
            ("experience", AttrValue::Int(6)),
        ],
    );
    let dev1 = g.add_node(
        "SD",
        [
            ("name", AttrValue::Str("Kim".into())),
            ("experience", AttrValue::Int(4)),
        ],
    );
    let dev2 = g.add_node(
        "SD",
        [
            ("name", AttrValue::Str("Lee".into())),
            ("experience", AttrValue::Int(2)),
        ],
    );
    let tester = g.add_node(
        "ST",
        [
            ("name", AttrValue::Str("Mia".into())),
            ("experience", AttrValue::Int(3)),
        ],
    );
    let pm = g.add_node(
        "PM",
        [
            ("name", AttrValue::Str("Sam".into())),
            ("experience", AttrValue::Int(5)),
        ],
    );
    // Ana leads Kim directly; Raj only collaborates with the developers
    // through Sam, the project manager.
    g.add_edge(ana, dev1);
    g.add_edge(raj, pm);
    g.add_edge(pm, dev1);
    g.add_edge(dev1, dev2);
    g.add_edge(dev1, tester);
    g.add_edge(dev2, tester);

    // --- the requirement as a pattern ----------------------------------
    // "An architect with ≥ 5 years who worked with a developer (within 2
    //  hops) whose work was tested (within 2 hops)."
    let pattern = PatternBuilder::new()
        .node_output(
            "architect",
            Predicate::label("SA").and(Predicate::attr_ge("experience", 5)),
        )
        .node("developer", Predicate::label("SD"))
        .node("tester", Predicate::label("ST"))
        .edge("architect", "developer", Bound::hops(2))
        .edge("developer", "tester", Bound::hops(2))
        .build()
        .expect("valid pattern");

    // --- the engine way: shareable, handle-based, fluent ----------------
    // `Arc<ExpFinder>` is how a long-lived service holds the engine: every
    // query-side method is `&self`, so clones of the Arc can serve many
    // threads at once.
    let engine = Arc::new(ExpFinder::default());
    let team = engine.add_graph("team", g.clone()).expect("fresh name");
    let resp = engine
        .query(&team)
        .pattern(pattern.clone())
        .top_k(2)
        .run()
        .expect("query runs");

    println!(
        "match relation M(Q,G): {} pairs via {:?} in {:?}",
        resp.matches.total_pairs(),
        resp.route,
        resp.timings.total
    );
    for (u, v) in resp.matches.pairs() {
        let name = g.attr_of(v, "name").and_then(|a| a.as_str()).unwrap_or("?");
        println!("  {} ⊨ {}", pattern.node(u).name, name);
    }

    println!("\ntop experts by social impact (lower = closer to the team):");
    for (i, e) in resp.experts.iter().enumerate() {
        let name = g
            .attr_of(e.node, "name")
            .and_then(|a| a.as_str())
            .unwrap_or("?");
        println!("  #{} {} (rank {:.3})", i + 1, name, e.rank);
    }

    // Both architects match, but Ana collaborates directly with the team
    // while Raj goes through the project manager — Ana's average social
    // distance is strictly smaller, so she ranks first.
    assert_eq!(resp.experts[0].node, ana);
    assert!(resp.experts[0].rank < resp.experts[1].rank);

    // --- the library way: the matching layer directly -------------------
    let matches = bounded_simulation(&g, &pattern).expect("evaluation succeeds");
    assert_eq!(matches, *resp.matches, "engine and library agree");
    let experts = top_k(&g, &pattern, &matches, 2).expect("pattern has an output node");
    assert_eq!(experts[0].node, resp.experts[0].node);
    println!("\n(direct bounded_simulation + top_k agree with the engine)");
}
