//! Expert search at social-network scale: a Twitter-like follower graph
//! (the paper's proprietary Twitter fraction, substituted by a generator
//! with the same structure — see DESIGN.md §3), queried through the
//! compression module.
//!
//! Demonstrates the paper's §III "Querying compressed graphs" story: the
//! graph shrinks substantially, queries run on the compressed graph
//! directly, and expansion recovers exactly the original answer.
//!
//! Run with: `cargo run --release --example twitter_influencers`

use expfinder::graph::generate::{twitter_like, TwitterConfig};
use expfinder::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2013);
    let cfg = TwitterConfig {
        n: 50_000,
        avg_out: 4,
        hub_fraction: 0.005,
        buckets: 4,
    };
    println!(
        "generating a Twitter-like follower graph (n = {}) ...",
        cfg.n
    );
    let g = twitter_like(&mut rng, &cfg);
    println!(
        "  {} accounts, {} follow edges",
        g.node_count(),
        g.edge_count()
    );

    // "find influential media accounts that veteran users follow, which
    //  themselves sit within 2 hops of a celebrity"
    let pattern = PatternBuilder::new()
        .node_output(
            "media",
            Predicate::label("media").and(Predicate::attr_ge("experience", 1)),
        )
        .node(
            "fan",
            Predicate::label("user").and(Predicate::attr_ge("experience", 2)),
        )
        .node("celebrity", Predicate::label("celebrity"))
        .edge("fan", "media", Bound::hops(2))
        .edge("fan", "celebrity", Bound::hops(2))
        .build()
        .expect("valid pattern");

    let engine = ExpFinder::new(EngineConfig::default());
    let twitter = engine.add_graph("twitter", g).unwrap();

    // direct evaluation first
    let t = Instant::now();
    let direct = engine.evaluate(&twitter, &pattern).unwrap();
    let direct_time = t.elapsed();
    println!(
        "\ndirect evaluation: {} pairs in {:?} (route {:?})",
        direct.matches.total_pairs(),
        direct_time,
        direct.route
    );

    // compress, then the engine routes through G_c automatically
    let t = Instant::now();
    let stats = engine.compress(&twitter).unwrap();
    let compress_time = t.elapsed();
    println!(
        "compression: {} → {} nodes, {} → {} edges ({:.1}% size reduction) in {:?}",
        stats.original_nodes,
        stats.compressed_nodes,
        stats.original_edges,
        stats.compressed_edges,
        stats.size_reduction() * 100.0,
        compress_time
    );

    // ask for the compressed route explicitly (the cache already holds
    // this version's answer, so Auto would short-circuit)
    let t = Instant::now();
    let compressed = engine
        .query(&twitter)
        .pattern(pattern.clone())
        .prefer(Route::Compressed)
        .run()
        .unwrap();
    let compressed_time = t.elapsed();
    println!(
        "compressed evaluation: {} pairs in {:?} (route {:?})",
        compressed.matches.total_pairs(),
        compressed_time,
        compressed.route
    );
    assert_eq!(
        *compressed.matches, *direct.matches,
        "expansion recovers the exact result"
    );

    // top influencers
    let report = engine.find_experts(&twitter, &pattern, 5).unwrap();
    println!("\ntop-5 media accounts by social impact:");
    for (i, e) in report.experts.iter().enumerate() {
        println!("  #{} account {} (rank {:.3})", i + 1, e.node, e.rank);
    }

    println!(
        "\nspeedup from compression on this query: {:.1}×",
        direct_time.as_secs_f64() / compressed_time.as_secs_f64().max(1e-9)
    );
}
