//! The interactive ExpFinder shell — the substitute for the paper's GUI
//! (ExpFinder Manager, Pattern Builder and result browser of Figs. 3–5).
//!
//! Run with: `cargo run --example expfinder_shell`
//! Then try:
//!
//! ```text
//! gen work collab teams=200 size=8
//! experts 3 node sa* where label = "SA" and experience >= 5; \
//!   node sd where label = "SD"; node st where label = "ST"; \
//!   edge sa -> sd within 2; edge sd -> st within 2;
//! compress
//! update random 20
//! rollup
//! help
//! ```
//!
//! The shell starts with the paper's Fig. 1 network preloaded as `fig1`,
//! and carries the serving commands (`serve`, `connect`, `remote`) of
//! `expfinder_server::ServedShell` — `serve` puts this very session's
//! engine on the network.

use expfinder::graph::fixtures::collaboration_fig1;
use expfinder::server::ServedShell;
use std::io::{BufRead, Write};

fn main() {
    let mut shell = ServedShell::default();
    shell
        .shell()
        .engine()
        .add_graph("fig1", collaboration_fig1().graph)
        .expect("fresh engine");
    let _ = shell.shell().select("fig1");

    println!("ExpFinder — finding experts by graph pattern matching (ICDE 2013)");
    println!("Fig. 1 graph preloaded as `fig1`. Type `help` for commands, Ctrl-D to exit.");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("expfinder> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match shell.exec(&line) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) => println!("error: {e}"),
            },
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
    println!("bye");
}
