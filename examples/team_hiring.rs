//! The paper's running example, end to end: Fig. 1's collaboration
//! network, the hiring query for a medical-record-system team, and
//! Examples 1–3 reproduced through the full engine (evaluation, ranking,
//! incremental maintenance) — all through the handle-based `&self` API.
//!
//! Run with: `cargo run --example team_hiring`

use expfinder::core::ResultGraph;
use expfinder::engine::report;
use expfinder::graph::fixtures::collaboration_fig1;
use expfinder::pattern::fixtures::{fig1_pattern, fig1_pattern_simulation};
use expfinder::prelude::*;

fn main() {
    let fig1 = collaboration_fig1();
    let pattern = fig1_pattern();

    let engine = ExpFinder::new(EngineConfig::default());
    let collab = engine
        .add_graph("collab", fig1.graph.clone())
        .expect("fresh engine");

    // ---- Example 1: the match set --------------------------------------
    println!("== Example 1: bounded simulation finds the team ==");
    let outcome = engine.evaluate(&collab, &pattern).expect("query runs");
    let g = engine.snapshot(&collab).unwrap();
    let rg = ResultGraph::build(&g, &pattern, &outcome.matches);
    print!("{}", report::roll_up(&g, &pattern, &outcome.matches, &rg));
    assert_eq!(outcome.matches.total_pairs(), 7, "the paper's 7 pairs");

    // ...while plain simulation and isomorphism both fail (paper §I):
    let sim_result = engine
        .evaluate(&collab, &fig1_pattern_simulation())
        .expect("query runs");
    println!(
        "plain graph simulation on the same query: {} matches (too strict)",
        sim_result.matches.total_pairs()
    );
    let iso = expfinder::core::subgraph_isomorphism(
        &fig1.graph,
        &pattern,
        expfinder::core::IsoOptions::default(),
    );
    println!(
        "subgraph isomorphism: {} embeddings (edge-to-edge only)\n",
        iso.embeddings.len()
    );

    // ---- Example 2: ranking by social impact ---------------------------
    println!("== Example 2: top-K experts for the SA position ==");
    let resp = engine
        .query(&collab)
        .pattern(pattern.clone())
        .top_k(2)
        .run()
        .expect("ranked query");
    print!("{}", report::expert_table(&g, &resp.experts));
    let bob = &resp.experts[0];
    let walt = &resp.experts[1];
    println!(
        "f(SA, {}) = {:.4} (= 9/5), f(SA, {}) = {:.4} (= 7/3)",
        report::display_name(&g, bob.node),
        bob.rank,
        report::display_name(&g, walt.node),
        walt.rank
    );
    println!(
        "(evaluated in {:?}, ranked in {:?})\n",
        resp.timings.evaluate, resp.timings.rank
    );
    assert_eq!(report::display_name(&g, bob.node), "Bob");
    assert!((bob.rank - 9.0 / 5.0).abs() < 1e-12);
    assert!((walt.rank - 7.0 / 3.0).abs() < 1e-12);

    // drill-down, as in the GUI walkthrough
    println!("== Drill down on the best expert ==");
    let rg = ResultGraph::build(&g, &pattern, &resp.matches);
    print!("{}", report::drill_down(&g, &pattern, &rg, bob.node));

    // ---- Example 3: the dynamic world ----------------------------------
    println!("\n== Example 3: incremental maintenance under edge e1 ==");
    engine
        .register_query(&collab, "team", pattern.clone())
        .expect("register");
    let before = engine.registered_result(&collab, "team").unwrap();
    engine
        .apply_updates(&collab, &[EdgeUpdate::Insert(fig1.e1.0, fig1.e1.1)])
        .expect("update applies");
    let after = engine.registered_result(&collab, "team").unwrap();
    let delta = before.diff(&after);
    let g = engine.snapshot(&collab).unwrap();
    for (u, v, added) in &delta {
        println!(
            "  ΔM: {} ({}, {})",
            if *added { "+" } else { "−" },
            pattern.node(*u).name,
            report::display_name(&g, *v)
        );
    }
    assert_eq!(delta.len(), 1, "exactly (SD, Fred) appears");
    assert!(delta[0].2);
    assert_eq!(report::display_name(&g, delta[0].1), "Fred");

    println!("\nAll three worked examples of the paper reproduced exactly.");
}
