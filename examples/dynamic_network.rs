//! The dynamic world: registered queries maintained incrementally while a
//! collaboration network keeps changing — the paper's §III "Coping with
//! the dynamic world" demonstration.
//!
//! Streams random edge updates into an engine-managed graph and compares
//! the cost of incremental maintenance against recomputing from scratch
//! after every update.
//!
//! Run with: `cargo run --release --example dynamic_network`

use expfinder::graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder::incremental::{IncrementalBoundedSim, Maintainer};
use expfinder::pattern::fixtures::fig1_pattern;
use expfinder::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = CollabConfig {
        teams: 400,
        team_size: 8,
        ..CollabConfig::default()
    };
    let mut g = collaboration(&mut rng, &cfg);
    println!(
        "collaboration network: {} people, {} edges",
        g.node_count(),
        g.edge_count()
    );

    let pattern = fig1_pattern();
    println!("maintained query: the paper's Fig. 1 hiring pattern\n");

    // incremental maintainer
    let t = Instant::now();
    let mut inc = IncrementalBoundedSim::new(&g, &pattern);
    println!(
        "initial evaluation: {} pairs in {:?}",
        inc.current().total_pairs(),
        t.elapsed()
    );

    let updates = random_updates(&mut rng, &g, 200, 0.5);
    println!("streaming {} edge updates ...\n", updates.len());

    let mut inc_total = std::time::Duration::ZERO;
    let mut batch_total = std::time::Duration::ZERO;
    let mut checked = 0usize;
    for (i, &up) in updates.iter().enumerate() {
        assert!(g.apply(up));

        let t = Instant::now();
        let delta = inc.on_update(&g, up);
        inc_total += t.elapsed();

        let t = Instant::now();
        let fresh = bounded_simulation(&g, &pattern).unwrap();
        batch_total += t.elapsed();

        assert_eq!(inc.current(), fresh, "incremental stays exact");
        checked += 1;

        if !delta.is_empty() && i < 25 {
            for d in &delta {
                println!(
                    "  update {i} ({up}): ΔM {} ({}, node {})",
                    if d.added { "+" } else { "−" },
                    pattern.node(d.pattern_node).name,
                    d.data_node
                );
            }
        }
    }

    let stats = inc.stats();
    println!("\nafter {checked} updates (every one verified against recompute):");
    println!("  incremental total: {inc_total:?}");
    println!("  batch-recompute total: {batch_total:?}");
    println!(
        "  speedup: {:.1}×",
        batch_total.as_secs_f64() / inc_total.as_secs_f64().max(1e-9)
    );
    println!(
        "  affected nodes touched: {} (vs {} × {} = {} for batch)",
        stats.affected_nodes,
        checked,
        g.node_count(),
        checked * g.node_count()
    );
    println!(
        "  match pairs added {} / removed {}",
        stats.added, stats.removed
    );
}
