#!/usr/bin/env python3
"""Fail if a route served by crates/server/src/routes.rs has no matching
section in docs/PROTOCOL.md.

The route inventory is read from the dispatch match arms (the code that
actually serves traffic), not from any hand-maintained table, so adding
a handler without documenting it fails CI. A route's section heading
must be of the form:

    ### `METHOD /path/{name}/segment`

where dynamic path segments (bare identifiers in the match arm) render
as `{name}`.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ROUTES = ROOT / "crates" / "server" / "src" / "routes.rs"
PROTOCOL = ROOT / "docs" / "PROTOCOL.md"

# ("POST", ["graphs", name, "subscribe"]) — including arms wrapped over
# lines; stop at the closing bracket of the segment list
ARM = re.compile(r'\(\s*"(GET|POST|PUT|DELETE|PATCH)"\s*,\s*\[([^\]]*)\]\s*\)')


def arm_to_path(segments: str):
    """Render one match-arm segment list as a URL path, or None for the
    405/404 catch-all arms (alternations and `_` wildcards)."""
    path = []
    for raw in segments.split(","):
        seg = raw.strip()
        if not seg:
            continue
        if "|" in seg or seg == "_":
            return None  # catch-all arm, not a served route
        if seg.startswith('"') and seg.endswith('"'):
            path.append(seg[1:-1])
        elif seg.isidentifier():
            path.append("{name}")
        else:
            return None
    return "/" + "/".join(path)


def main() -> int:
    src = ROUTES.read_text()
    spec = PROTOCOL.read_text()
    routes = []
    for m in ARM.finditer(src):
        path = arm_to_path(m.group(2))
        if path is not None:
            routes.append((m.group(1), path))
    routes = sorted(set(routes))
    if len(routes) < 5:
        print(
            f"docs-check: only {len(routes)} routes parsed from {ROUTES} — "
            "the dispatch match shape changed; update scripts/docs_check.py",
            file=sys.stderr,
        )
        return 1
    missing = [
        f"{method} {path}"
        for method, path in routes
        if f"### `{method} {path}`" not in spec
    ]
    for route in missing:
        print(
            f"docs-check: no `### \\`{route}\\`` section in docs/PROTOCOL.md",
            file=sys.stderr,
        )
    if missing:
        return 1
    print(f"docs-check OK: {len(routes)} routes, all specified in docs/PROTOCOL.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
