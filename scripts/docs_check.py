#!/usr/bin/env python3
"""Fail if a route served by crates/server/src/routes.rs has no matching
section in docs/PROTOCOL.md.

The route inventory is read from the dispatch match arms (the code that
actually serves traffic), not from any hand-maintained table, so adding
a handler without documenting it fails CI. A route's section heading
must be of the form:

    ### `METHOD /path/{name}/segment`

where dynamic path segments (bare identifiers in the match arm) render
as `{name}`.

The same principle covers the routing vocabulary: every variant of the
engine's `Route` (the query-body preference), `EvalRoute` (the reported
evaluation route) and `PlanRoute` (the planner's `timings.plan` routes)
enums must appear in docs/PROTOCOL.md as its backticked wire string
(the variant name in snake_case), so a new route variant cannot ship
undocumented.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ROUTES = ROOT / "crates" / "server" / "src" / "routes.rs"
PROTOCOL = ROOT / "docs" / "PROTOCOL.md"
ROUTE_ENUMS = [
    ("Route", ROOT / "crates" / "engine" / "src" / "lib.rs"),
    ("EvalRoute", ROOT / "crates" / "engine" / "src" / "lib.rs"),
    ("PlanRoute", ROOT / "crates" / "engine" / "src" / "planner.rs"),
]

ENUM_VARIANT = re.compile(r"^\s*([A-Z][A-Za-z0-9]*)\s*(?:,|$)")


def snake_case(variant: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", variant).lower()


def enum_variants(name: str, source: str):
    """Variant identifiers of `pub enum <name> { ... }` in `source`."""
    m = re.search(rf"pub enum {name}\s*\{{(.*?)\n\}}", source, re.DOTALL)
    if not m:
        return None
    variants = []
    for line in m.group(1).splitlines():
        stripped = line.strip()
        if stripped.startswith(("//", "#", "/*")):
            continue
        vm = ENUM_VARIANT.match(line)
        if vm:
            variants.append(vm.group(1))
    return variants


def check_route_enums(spec: str) -> list:
    """Wire strings of Route/EvalRoute/PlanRoute missing from the spec."""
    missing = []
    for enum_name, path in ROUTE_ENUMS:
        variants = enum_variants(enum_name, path.read_text())
        if not variants:
            missing.append(
                f"enum {enum_name} not parsed from {path} — "
                "its shape changed; update scripts/docs_check.py"
            )
            continue
        for v in variants:
            wire = snake_case(v)
            if f"`{wire}`" not in spec:
                missing.append(
                    f"{enum_name}::{v}: wire string `{wire}` "
                    "not mentioned in docs/PROTOCOL.md"
                )
    return missing

# ("POST", ["graphs", name, "subscribe"]) — including arms wrapped over
# lines; stop at the closing bracket of the segment list
ARM = re.compile(r'\(\s*"(GET|POST|PUT|DELETE|PATCH)"\s*,\s*\[([^\]]*)\]\s*\)')


def arm_to_path(segments: str):
    """Render one match-arm segment list as a URL path, or None for the
    405/404 catch-all arms (alternations and `_` wildcards)."""
    path = []
    for raw in segments.split(","):
        seg = raw.strip()
        if not seg:
            continue
        if "|" in seg or seg == "_":
            return None  # catch-all arm, not a served route
        if seg.startswith('"') and seg.endswith('"'):
            path.append(seg[1:-1])
        elif seg.isidentifier():
            path.append("{name}")
        else:
            return None
    return "/" + "/".join(path)


def main() -> int:
    src = ROUTES.read_text()
    spec = PROTOCOL.read_text()
    routes = []
    for m in ARM.finditer(src):
        path = arm_to_path(m.group(2))
        if path is not None:
            routes.append((m.group(1), path))
    routes = sorted(set(routes))
    if len(routes) < 5:
        print(
            f"docs-check: only {len(routes)} routes parsed from {ROUTES} — "
            "the dispatch match shape changed; update scripts/docs_check.py",
            file=sys.stderr,
        )
        return 1
    missing = [
        f"{method} {path}"
        for method, path in routes
        if f"### `{method} {path}`" not in spec
    ]
    for route in missing:
        print(
            f"docs-check: no `### \\`{route}\\`` section in docs/PROTOCOL.md",
            file=sys.stderr,
        )
    variant_missing = check_route_enums(spec)
    for msg in variant_missing:
        print(f"docs-check: {msg}", file=sys.stderr)
    if missing or variant_missing:
        return 1
    n_variants = sum(len(enum_variants(n, p.read_text()) or []) for n, p in ROUTE_ENUMS)
    print(
        f"docs-check OK: {len(routes)} routes and {n_variants} route-enum "
        "variants, all specified in docs/PROTOCOL.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
