#!/usr/bin/env python3
"""Diff a fresh planner-decision snapshot against the checked-in one.

Usage:
    plan_diff.py PLANS.json FRESH.json

The snapshot (``bench_match --plan-out``) is deterministic in graph
sizes and read/hit counters — wall-clock never decides a route — so ANY
difference is a planner behavior change, not noise. The diff is
reported per scenario and per step so the review sees exactly which
decision moved; exit status is 1 on any difference.

If the change is intentional, regenerate and commit the snapshot:
``just plan-snapshot``.
"""

import json
import sys
from pathlib import Path


def fmt_plan(plan) -> str:
    cand = ", ".join(f"{c['route']}={c['cost']}" for c in plan.get("candidates", []))
    tag = " (overridden)" if plan.get("overridden") else ""
    return f"chosen={plan['chosen']} planned={plan['planned']}{tag} [{cand}]"


def diff_scenario(name: str, base, fresh, out) -> bool:
    changed = False
    base_steps = base.get("steps", [])
    fresh_steps = fresh.get("steps", [])
    for key in ("nodes", "edges", "threads"):
        if base.get(key) != fresh.get(key):
            out.append(f"  {name}: {key} {base.get(key)} -> {fresh.get(key)}")
            changed = True
    if len(base_steps) != len(fresh_steps):
        out.append(f"  {name}: step count {len(base_steps)} -> {len(fresh_steps)}")
        return True
    for i, (b, f) in enumerate(zip(base_steps, fresh_steps)):
        if b != f:
            out.append(f"  {name} step {i} (prefer={f.get('prefer')}):")
            out.append(f"    baseline: {fmt_plan(b['plan'])}")
            out.append(f"    fresh:    {fmt_plan(f['plan'])}")
            changed = True
    return changed


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    base = json.loads(Path(sys.argv[1]).read_text())
    fresh = json.loads(Path(sys.argv[2]).read_text())
    if base == fresh:
        n = len(base.get("scenarios", []))
        print(f"plan-check OK: planner snapshot unchanged ({n} scenarios)")
        return 0

    out = ["plan-check FAIL: planner decisions changed"]
    base_by = {s["name"]: s for s in base.get("scenarios", [])}
    fresh_by = {s["name"]: s for s in fresh.get("scenarios", [])}
    for name in base_by:
        if name not in fresh_by:
            out.append(f"  {name}: scenario missing from fresh snapshot")
        else:
            diff_scenario(name, base_by[name], fresh_by[name], out)
    for name in fresh_by:
        if name not in base_by:
            out.append(f"  {name}: new scenario not in checked-in snapshot")
    out.append("")
    out.append("intentional? regenerate with `just plan-snapshot` and commit PLANS.json")
    print("\n".join(out), file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
