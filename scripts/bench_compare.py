#!/usr/bin/env python3
"""Compare a fresh benchmark document against its checked-in baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
                     [--report FILE.md]

The two documents must come from the same benchmark (their ``bench``
fields must agree); workloads are aligned by ``name`` (plus ``pattern``
when present). Fields are classified by key, not by position, so the
same script covers every BENCH_*.json schema in this repository:

* **equal-required** (blocking on any difference) — deterministic
  outputs of a seeded workload: graph sizes, match-pair counts,
  result-equality flags. A mismatch means the benchmark is no longer
  measuring the same computation.
* **deterministic counters** (blocking beyond the threshold) —
  evaluation-work counters (``bfs_nodes_visited``, ``refreshes``,
  ``removals``, ``index_misses`` are worse when higher; ``index_hits``
  and ``refreshes_skipped`` are worse when lower). These are exact
  functions of the algorithm, so a >25% regression is a real algorithmic
  regression, not runner noise.
* **advisory** (reported, never blocking) — wall-clock milliseconds,
  throughput, and speedup ratios: honest but hostage to the runner.

Exit status 0 when no blocking finding, 1 otherwise. ``--report`` also
writes the full comparison as markdown (CI uploads it as an artifact).
"""

import argparse
import json
import sys
from pathlib import Path

EQUAL_KEYS = {
    "bench",
    "seed",
    "quick",
    "batch_size",
    "nodes",
    "edges",
    "size",
    "match_pairs",
    "results_identical",
    "gated",
    "pattern",
}
HIGHER_IS_WORSE = {"refreshes", "removals", "bfs_nodes_visited", "index_misses"}
LOWER_IS_WORSE = {"index_hits", "refreshes_skipped"}
# machine-shape fields: neither comparable nor interesting
IGNORED = {"note", "available_parallelism", "threads"}
ADVISORY_SUFFIXES = ("_ms", "_qps")
ADVISORY_KEYS = {
    "ms",
    "qps",
    "speedup",
    "warm_speedup",
    "bfs_nodes_reduction",
    "cancel_check_overhead",
    "entries",
    "bytes",
}


def is_advisory(key: str) -> bool:
    return key.endswith(ADVISORY_SUFFIXES) or key in ADVISORY_KEYS


def workload_label(w) -> str:
    if not isinstance(w, dict):
        return "?"
    label = str(w.get("name", "?"))
    if "pattern" in w:
        label += "/" + str(w["pattern"])
    return label


def align_lists(base, fresh, path):
    """Pair up workload arrays by label; anything unmatched is blocking."""
    pairs, findings = [], []
    if all(isinstance(w, dict) and "name" in w for w in base + fresh):
        fresh_by = {workload_label(w): w for w in fresh}
        base_by = {workload_label(w): w for w in base}
        for label, w in base_by.items():
            if label in fresh_by:
                pairs.append((w, fresh_by[label], f"{path}[{label}]"))
            else:
                findings.append(("blocking", f"{path}[{label}]", "workload missing from fresh run"))
        for label in fresh_by:
            if label not in base_by:
                findings.append(("blocking", f"{path}[{label}]", "workload absent from baseline"))
    else:
        if len(base) != len(fresh):
            findings.append(
                ("blocking", path, f"array length changed: {len(base)} -> {len(fresh)}")
            )
        pairs = [(b, f, f"{path}[{i}]") for i, (b, f) in enumerate(zip(base, fresh))]
    return pairs, findings


def compare(base, fresh, path, key, threshold, findings):
    if key in IGNORED:
        return
    if isinstance(base, dict) and isinstance(fresh, dict):
        for k in sorted(set(base) | set(fresh)):
            if k not in base or k not in fresh:
                findings.append(("blocking", f"{path}.{k}", "field added or removed"))
                continue
            compare(base[k], fresh[k], f"{path}.{k}", k, threshold, findings)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        pairs, list_findings = align_lists(base, fresh, path)
        findings.extend(list_findings)
        for b, f, p in pairs:
            compare(b, f, p, key, threshold, findings)
        return
    if key in EQUAL_KEYS:
        if base != fresh:
            findings.append(("blocking", path, f"must be identical: {base!r} -> {fresh!r}"))
        return
    if key in HIGHER_IS_WORSE or key in LOWER_IS_WORSE:
        # +1 smoothing keeps zero baselines comparable
        ratio = (fresh + 1) / (base + 1)
        regressed = ratio > 1 + threshold if key in HIGHER_IS_WORSE else ratio < 1 / (1 + threshold)
        kind = "blocking" if regressed else "info"
        if base != fresh:
            findings.append((kind, path, f"counter {base} -> {fresh} ({ratio:.3f}x)"))
        return
    if is_advisory(key):
        if isinstance(base, (int, float)) and isinstance(fresh, (int, float)) and base:
            delta = (fresh - base) / abs(base)
            if abs(delta) > threshold:
                findings.append(("advisory", path, f"{base:.4g} -> {fresh:.4g} ({delta:+.1%})"))
        return
    # unclassified scalar: surface schema drift without blocking
    if base != fresh:
        findings.append(("advisory", path, f"unclassified field changed: {base!r} -> {fresh!r}"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path)
    ap.add_argument("fresh", type=Path)
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument("--report", type=Path)
    args = ap.parse_args()

    base = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if base.get("bench") != fresh.get("bench"):
        print(
            f"bench-compare: documents disagree on 'bench': "
            f"{base.get('bench')!r} vs {fresh.get('bench')!r}",
            file=sys.stderr,
        )
        return 1

    findings = []
    compare(base, fresh, "$", "", args.threshold, findings)
    blocking = [f for f in findings if f[0] == "blocking"]
    advisory = [f for f in findings if f[0] == "advisory"]

    name = base.get("bench", "?")
    lines = [
        f"# bench-compare: {name}",
        "",
        f"baseline `{args.baseline}` vs fresh `{args.fresh}`, "
        f"threshold {args.threshold:.0%}",
        "",
    ]
    for title, rows in (("Blocking", blocking), ("Advisory (wall-clock)", advisory)):
        lines.append(f"## {title} ({len(rows)})")
        lines.extend(f"- `{p}`: {msg}" for _, p, msg in rows)
        lines.append("")
    report = "\n".join(lines)
    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report)
    print(report)

    if blocking:
        print(
            f"bench-compare FAIL [{name}]: {len(blocking)} blocking finding(s)",
            file=sys.stderr,
        )
        return 1
    print(f"bench-compare OK [{name}]: no blocking findings ({len(advisory)} advisory)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
