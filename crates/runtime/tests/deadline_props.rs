//! Property tests for cooperative cancellation on the durable backend:
//! a deadline firing at an arbitrary cancellation point must leave the
//! published snapshot, the runtime cache and the scratch pool
//! unpoisoned — the next un-deadlined query answers bit-identically to
//! the independent oracle's fresh evaluation.

use expfinder_core::bounded_simulation;
use expfinder_engine::{ExecConfig, ExpFinderError, Route};
use expfinder_graph::{AttrValue, DiGraph, NodeId};
use expfinder_pattern::{Bound, PNodeId, Pattern, PatternEdge, PatternNode, Predicate};
use expfinder_runtime::wal::FsyncPolicy;
use expfinder_runtime::{CancelToken, DurableExpFinder, RuntimeConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp dir per proptest case (cases run concurrently).
fn tmpdir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("expfinder_deadlineprop_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[derive(Clone, Debug)]
struct RawCase {
    labels: Vec<u8>,
    exps: Vec<u8>,
    edges: Vec<(u8, u8)>,
    plabels: Vec<u8>,
    pthresholds: Vec<u8>,
    pedges: Vec<(u8, u8, u8)>,
}

fn raw_case() -> impl Strategy<Value = RawCase> {
    ((2usize..=10), (2usize..=3)).prop_flat_map(|(n, pn)| {
        (
            (
                proptest::collection::vec(0u8..3, n),
                proptest::collection::vec(0u8..3, n),
                proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..n * 3),
            ),
            (
                proptest::collection::vec(0u8..3, pn),
                proptest::collection::vec(0u8..3, pn),
                proptest::collection::vec((0u8..pn as u8, 0u8..pn as u8, 0u8..4), 1..pn * 2),
            ),
        )
            .prop_map(
                |((labels, exps, edges), (plabels, pthresholds, pedges))| RawCase {
                    labels,
                    exps,
                    edges,
                    plabels,
                    pthresholds,
                    pedges,
                },
            )
    })
}

fn build_case(raw: &RawCase) -> (DiGraph, Pattern) {
    let mut g = DiGraph::new();
    for (l, e) in raw.labels.iter().zip(&raw.exps) {
        g.add_node(
            &format!("L{l}"),
            [("experience", AttrValue::Int(*e as i64))],
        );
    }
    for &(a, b) in &raw.edges {
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    let nodes: Vec<PatternNode> = raw
        .plabels
        .iter()
        .zip(&raw.pthresholds)
        .enumerate()
        .map(|(i, (l, t))| PatternNode {
            name: format!("v{i}"),
            predicate: Predicate::label(format!("L{l}"))
                .and(Predicate::attr_ge("experience", *t as i64)),
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for &(f, t, b) in &raw.pedges {
        if f == t || !seen.insert((f, t)) {
            continue;
        }
        let bound = if b == 0 {
            Bound::Unbounded
        } else {
            Bound::hops(b as u32)
        };
        edges.push(PatternEdge {
            from: PNodeId(f as u32),
            to: PNodeId(t as u32),
            bound,
        });
    }
    let q = Pattern::from_parts(nodes, edges, Some(PNodeId(0))).expect("valid pattern");
    (g, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancel at the `fuse`-th cancellation point on a durable runtime,
    /// then re-query without a deadline: same answer as the oracle.
    #[test]
    fn deadline_at_any_round_leaves_runtime_unpoisoned(
        raw in raw_case(),
        fuse in 1u64..40,
    ) {
        let (g, q) = build_case(&raw);
        let oracle = bounded_simulation(&g, &q).unwrap();

        let dir = tmpdir();
        let rt = DurableExpFinder::open(
            &dir,
            RuntimeConfig {
                shards: 1,
                fsync: FsyncPolicy::Never,
                exec: ExecConfig::sequential(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        rt.add_graph("g", g).unwrap();

        let token = CancelToken::after_checks(fuse);
        match rt.query_cancellable("g", &q, None, Route::Auto, &token) {
            Err(ExpFinderError::DeadlineExceeded(_)) => {}
            Ok(resp) => prop_assert_eq!(&*resp.matches, &oracle),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }

        let after = rt.query("g", &q, Some(3), Route::Auto).unwrap();
        prop_assert_eq!(&*after.matches, &oracle);

        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
