//! Property tests for the deterministic fault-injection layer: whatever
//! single write fault (full, partial, ENOSPC, EIO, or simulated crash)
//! lands on whatever append, the log on disk must remain replayable and
//! must decode to exactly the appends that were acknowledged.

use expfinder_graph::{EdgeUpdate, NodeId};
use expfinder_runtime::wal::{FsyncPolicy, Wal, WalError};
use expfinder_runtime::{FaultInjector, FaultKind, FaultPlan, IoOp};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per proptest case (cases run concurrently).
fn tmp_wal(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "expfinder_faultprop_{tag}_{}_{n}.wal",
        std::process::id()
    ))
}

const NODES: u32 = 12;

fn update_strategy() -> impl Strategy<Value = EdgeUpdate> {
    (proptest::bool::ANY, 0..NODES, 0..NODES).prop_map(|(ins, a, b)| {
        if ins {
            EdgeUpdate::Insert(NodeId(a), NodeId(b))
        } else {
            EdgeUpdate::Delete(NodeId(a), NodeId(b))
        }
    })
}

fn batches_strategy(max_batches: usize) -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    proptest::collection::vec(
        proptest::collection::vec(update_strategy(), 0..8),
        1..max_batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A transient write failure (whole-frame or torn at any byte
    /// offset, ENOSPC or EIO) on any append self-heals: the failed
    /// batch is absent, the writer is *not* sealed, and every other
    /// append — including those issued after the fault — replays
    /// intact with contiguous sequence numbers.
    #[test]
    fn transient_write_fault_leaves_an_exact_prefix_log(
        batches in batches_strategy(10),
        fault_sel in 0u32..1000,
        partial_sel in 0usize..64,
        eio in proptest::bool::ANY,
    ) {
        let path = tmp_wal("transient");
        let faults = FaultInjector::disarmed();
        let mut wal =
            Wal::open_with_faults(&path, FsyncPolicy::Never, 0, faults.clone()).unwrap();

        let fault_idx = fault_sel as usize % batches.len();
        let kind = if eio { FaultKind::Eio } else { FaultKind::Enospc };
        // values past 47 mean "no torn bytes": fail the write outright
        let plan = if partial_sel < 48 {
            FaultPlan::new().partial_write(fault_idx as u64, partial_sel, kind)
        } else {
            FaultPlan::new().fail_nth(IoOp::Write, fault_idx as u64, kind)
        };
        faults.arm(plan);

        let mut acked: Vec<&Vec<EdgeUpdate>> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let res = wal.append(batch);
            if i == fault_idx {
                prop_assert!(res.is_err(), "the armed write fault must surface");
                prop_assert!(!wal.is_sealed(), "a plain write fault must not seal");
            } else {
                prop_assert!(res.is_ok(), "append {} failed: {:?}", i, res.err());
                acked.push(batch);
            }
        }
        faults.disarm();
        drop(wal);

        let (records, summary) = Wal::replay(&path).unwrap();
        prop_assert!(!summary.truncated_tail, "self-heal already truncated torn bytes");
        prop_assert_eq!(records.len(), acked.len());
        for (i, (rec, batch)) in records.iter().zip(&acked).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.as_updates().unwrap(), &batch[..]);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A simulated crash mid-append (torn frame of any length) seals
    /// the writer — further appends refuse with `WalError::Sealed` —
    /// and restart-time replay truncates the torn bytes and recovers
    /// exactly the acknowledged prefix.
    #[test]
    fn crash_mid_append_recovers_exactly_the_acked_prefix(
        batches in batches_strategy(10),
        fault_sel in 0u32..1000,
        torn in 0usize..48,
    ) {
        let path = tmp_wal("crash");
        let faults = FaultInjector::disarmed();
        let mut wal =
            Wal::open_with_faults(&path, FsyncPolicy::Never, 0, faults.clone()).unwrap();

        let fault_idx = fault_sel as usize % batches.len();
        // under Never the only boundaries are writes, so the global
        // boundary index and the append index coincide
        faults.arm(FaultPlan::new().crash_at_partial(fault_idx as u64, torn));

        for (i, batch) in batches.iter().enumerate().take(fault_idx) {
            prop_assert!(wal.append(batch).is_ok(), "pre-crash append {} failed", i);
        }
        let crashed = wal.append(&batches[fault_idx]);
        prop_assert!(crashed.is_err());
        prop_assert!(wal.is_sealed(), "a simulated crash must seal the writer");
        prop_assert!(
            matches!(wal.append(&batches[fault_idx]), Err(WalError::Sealed)),
            "a sealed writer must refuse further appends"
        );
        faults.disarm();
        drop(wal);

        let (records, _) = Wal::replay(&path).unwrap();
        prop_assert_eq!(records.len(), fault_idx, "replay must yield the acked prefix");
        for (i, (rec, batch)) in records.iter().zip(&batches).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.as_updates().unwrap(), &batch[..]);
        }
        // the repair is persistent: a second replay sees a clean log
        let (again, summary2) = Wal::replay(&path).unwrap();
        prop_assert!(!summary2.truncated_tail);
        prop_assert_eq!(again.len(), records.len());
        let _ = std::fs::remove_file(&path);
    }
}
