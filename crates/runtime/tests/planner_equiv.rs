//! Property tests pinning the route planner to its contract: routing is
//! an *optimization*, never a semantic choice. For any seeded graph,
//! update history and pattern, the match relation under `Route::Auto`
//! (planner's pick) is bit-identical to forced `Route::Direct`, and to
//! `Route::Compressed` once the graph carries a quotient — on both the
//! in-process engine and the durable runtime, cold (first read, planner
//! leans live) and warm (profile amortized, planner leans snapshot).

use expfinder_compress::CompressionMethod;
use expfinder_engine::{ExecConfig, ExpFinder, Route};
use expfinder_graph::{DiGraph, EdgeUpdate, NodeId};
use expfinder_pattern::{Bound, Pattern, PatternBuilder, Predicate};
use expfinder_runtime::{DurableExpFinder, FsyncPolicy, RuntimeConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const NODES: u32 = 16;

/// Unique temp dir per proptest case (cases run concurrently).
fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "expfinder_planprop_{tag}_{}_{n}",
        std::process::id()
    ))
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        fsync: FsyncPolicy::Never,
        exec: ExecConfig::sequential(),
        ..RuntimeConfig::default()
    }
}

/// A graph with `NODES` nodes, labels cycling over three classes, and
/// the given edges (modulo the node count).
fn graph_with_edges(edges: &[(u32, u32)]) -> DiGraph {
    let mut g = DiGraph::new();
    for i in 0..NODES {
        g.add_node(["A", "B", "C"][i as usize % 3], []);
    }
    for &(a, b) in edges {
        g.add_edge(NodeId(a % NODES), NodeId(b % NODES));
    }
    g
}

fn update_strategy() -> impl Strategy<Value = EdgeUpdate> {
    (proptest::bool::ANY, 0..NODES, 0..NODES).prop_map(|(ins, a, b)| {
        if ins {
            EdgeUpdate::Insert(NodeId(a), NodeId(b))
        } else {
            EdgeUpdate::Delete(NodeId(a), NodeId(b))
        }
    })
}

/// A small family over the three label classes: a single edge, a star
/// and a chain, with proptest-chosen hop bounds (bound 1 everywhere
/// makes the pattern a plain-simulation one, exercising that algorithm
/// family too).
fn pattern_for(kind: u8, b1: u32, b2: u32) -> Pattern {
    let base = PatternBuilder::new().node_output("x", Predicate::label("A"));
    match kind {
        0 => base
            .node("y", Predicate::label("B"))
            .edge("x", "y", Bound::hops(b1)),
        1 => base
            .node("y", Predicate::label("B"))
            .node("z", Predicate::label("C"))
            .edge("x", "y", Bound::hops(b1))
            .edge("x", "z", Bound::hops(b2)),
        _ => base
            .node("y", Predicate::label("B"))
            .node("z", Predicate::label("C"))
            .edge("x", "y", Bound::hops(b1))
            .edge("y", "z", Bound::hops(b2)),
    }
    .build()
    .unwrap()
}

/// Fixed pattern used only to warm a graph's `CostProfile` (every eval
/// bumps reads-at-version, pushing the planner from live to snapshot).
fn warm_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output("u", Predicate::label("B"))
        .node("v", Predicate::label("C"))
        .edge("u", "v", Bound::hops(2))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn planner_routes_are_semantics_preserving(
        initial in proptest::collection::vec((0..NODES, 0..NODES), 4..40),
        updates in proptest::collection::vec(update_strategy(), 1..12),
        kind in 0u8..3,
        b1 in 1u32..4,
        b2 in 1u32..4,
    ) {
        let g = graph_with_edges(&initial);
        let p = pattern_for(kind, b1, b2);
        let p2 = pattern_for((kind + 1) % 3, b2, b1);
        let warm = warm_pattern();

        // ----- in-process engine (default exec: available parallelism,
        // so the SnapshotParallel candidate is in play) -----
        let engine = ExpFinder::default();
        let h = engine.add_graph("g", g.clone()).unwrap();

        // cold: first read on a fresh graph (Auto must run first — a
        // Direct eval would populate the cache and turn the Auto query
        // into a trivial cache hit)
        let cold = engine.query(&h).pattern(p.clone()).prefer(Route::Auto).run().unwrap();
        let direct = engine.query(&h).pattern(p.clone()).prefer(Route::Direct).run().unwrap();
        prop_assert_eq!(&*cold.matches, &*direct.matches);
        prop_assert!(!cold.plan.candidates.is_empty());

        // warm: amortize the profile, then plan a pattern the cache has
        // never seen — the planner now leans snapshot
        for _ in 0..4 {
            engine.query(&h).pattern(warm.clone()).prefer(Route::Direct).run().unwrap();
        }
        let warm2 = engine.query(&h).pattern(p2.clone()).prefer(Route::Auto).run().unwrap();
        let direct2 = engine.query(&h).pattern(p2.clone()).prefer(Route::Direct).run().unwrap();
        prop_assert_eq!(&*warm2.matches, &*direct2.matches);

        // after updates: cache invalidated, profile reads reset, replan
        engine.apply_updates(&h, &updates).unwrap();
        let auto3 = engine.query(&h).pattern(p.clone()).prefer(Route::Auto).run().unwrap();
        let direct3 = engine.query(&h).pattern(p.clone()).prefer(Route::Direct).run().unwrap();
        prop_assert_eq!(&*auto3.matches, &*direct3.matches);

        // compressed override: evaluate on the quotient, expand, compare
        engine.compress(&h).unwrap();
        let comp = engine.query(&h).pattern(p.clone()).prefer(Route::Compressed).run().unwrap();
        prop_assert_eq!(&*comp.matches, &*direct3.matches);

        // ----- durable runtime (sequential exec, WAL-backed) -----
        let dir = tmpdir("equiv");
        let rt = DurableExpFinder::open(&dir, runtime_config()).unwrap();
        rt.add_graph("g", g).unwrap();

        let d_cold = rt.query("g", &p, None, Route::Auto).unwrap();
        let d_direct = rt.query("g", &p, None, Route::Direct).unwrap();
        prop_assert_eq!(&*d_cold.matches, &*d_direct.matches);
        // cross-check: the durable runtime agrees with the engine
        prop_assert_eq!(&*d_direct.matches, &*direct.matches);

        for _ in 0..4 {
            rt.query("g", &warm, None, Route::Direct).unwrap();
        }
        let d_warm2 = rt.query("g", &p2, None, Route::Auto).unwrap();
        let d_direct2 = rt.query("g", &p2, None, Route::Direct).unwrap();
        prop_assert_eq!(&*d_warm2.matches, &*d_direct2.matches);
        prop_assert_eq!(&*d_direct2.matches, &*direct2.matches);

        rt.apply_updates("g", &updates).unwrap();
        let d_auto3 = rt.query("g", &p, None, Route::Auto).unwrap();
        let d_direct3 = rt.query("g", &p, None, Route::Direct).unwrap();
        prop_assert_eq!(&*d_auto3.matches, &*d_direct3.matches);
        prop_assert_eq!(&*d_direct3.matches, &*direct3.matches);

        rt.compress("g", CompressionMethod::Bisimulation).unwrap();
        let d_comp = rt.query("g", &p, None, Route::Compressed).unwrap();
        prop_assert_eq!(&*d_comp.matches, &*d_direct3.matches);

        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
