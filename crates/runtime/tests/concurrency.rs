//! The runtime's headline read-path claim: queries run on published
//! immutable snapshots, so readers racing a writer (1) never block on
//! the shard actor and (2) always observe a *consistent* state — every
//! response's matches equal a fresh single-threaded evaluation of the
//! graph at the exact `graph_version` the response reports.

use expfinder_core::{bounded_simulation, MatchError};
use expfinder_engine::{ExecConfig, Route};
use expfinder_graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder_graph::DiGraph;
use expfinder_pattern::fixtures::fig1_pattern;
use expfinder_runtime::{DurableExpFinder, FsyncPolicy, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("expfinder_rt_conc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn runtime_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DurableExpFinder>();
    assert_send_sync::<Arc<DurableExpFinder>>();
}

/// N reader threads querying through `Arc<DurableExpFinder>` while one
/// writer streams single-update batches through the shard mailbox.
/// Every observation is validated against a precomputed truth table
/// keyed by graph version.
#[test]
fn readers_consistent_with_concurrent_writer() {
    const READERS: usize = 4;
    const UPDATES: usize = 60;
    const READS_PER_READER: usize = 120;

    let dir = tmpdir("race");
    let base = collaboration(
        &mut StdRng::seed_from_u64(7),
        &CollabConfig {
            teams: 12,
            team_size: 6,
            ..CollabConfig::default()
        },
    );
    let q = fig1_pattern();
    let updates = random_updates(&mut StdRng::seed_from_u64(41), &base, UPDATES, 0.5);

    // The runtime's actor applies the same updates to a clone of `base`
    // in the same order, so it walks the same version sequence — the
    // truth table covers every version a reader can be served.
    let mut expected: HashMap<u64, _> = HashMap::new();
    {
        let mut g = base.clone();
        expected.insert(g.version(), bounded_simulation(&g, &q).unwrap());
        for &up in &updates {
            if g.apply(up) {
                expected.insert(g.version(), bounded_simulation(&g, &q).unwrap());
            }
        }
    }

    let rt = Arc::new(
        DurableExpFinder::open(
            &dir,
            RuntimeConfig {
                shards: 2,
                fsync: FsyncPolicy::Never,
                exec: ExecConfig::sequential(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap(),
    );
    rt.add_graph("live", base).unwrap();

    std::thread::scope(|s| {
        {
            let rt = Arc::clone(&rt);
            let updates = &updates;
            s.spawn(move || {
                for &up in updates {
                    rt.apply_updates("live", &[up]).unwrap();
                    std::thread::yield_now();
                }
            });
        }
        for r in 0..READERS {
            let rt = Arc::clone(&rt);
            let q = q.clone();
            let expected = &expected;
            s.spawn(move || {
                for i in 0..READS_PER_READER {
                    let out = rt.query("live", &q, None, Route::Auto).unwrap();
                    let truth = expected.get(&out.graph_version).unwrap_or_else(|| {
                        panic!(
                            "reader {r} iteration {i}: version {} was never a \
                             real graph state",
                            out.graph_version
                        )
                    });
                    assert_eq!(
                        *out.matches, *truth,
                        "reader {r} iteration {i}: matches diverge from a fresh \
                         evaluation at version {}",
                        out.graph_version
                    );
                    if i % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    // quiesced: the runtime agrees with the final truth
    let final_out = rt.query("live", &q, None, Route::Auto).unwrap();
    let final_truth: Result<_, MatchError> = rt
        .read_graph("live", |g| bounded_simulation(g, &q))
        .unwrap();
    assert_eq!(*final_out.matches, final_truth.unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writers on one graph do not serialize with readers of another: the
/// two graphs live on (potentially) different shards and reads touch
/// no shard at all. Correctness check — both sides finish with exact
/// answers while racing.
#[test]
fn readers_of_one_graph_race_writers_of_another() {
    let dir = tmpdir("twograph");
    let mk = |seed| {
        collaboration(
            &mut StdRng::seed_from_u64(seed),
            &CollabConfig {
                teams: 8,
                team_size: 6,
                ..CollabConfig::default()
            },
        )
    };
    let hot: DiGraph = mk(1);
    let cold: DiGraph = mk(2);
    let q = fig1_pattern();
    let cold_truth = bounded_simulation(&cold, &q).unwrap();
    let updates = random_updates(&mut StdRng::seed_from_u64(3), &hot, 40, 0.5);

    let rt = Arc::new(
        DurableExpFinder::open(
            &dir,
            RuntimeConfig {
                shards: 2,
                fsync: FsyncPolicy::Never,
                exec: ExecConfig::sequential(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap(),
    );
    rt.add_graph("hot", hot).unwrap();
    rt.add_graph("cold", cold).unwrap();

    std::thread::scope(|s| {
        {
            let rt = Arc::clone(&rt);
            let updates = &updates;
            s.spawn(move || {
                for chunk in updates.chunks(4) {
                    rt.apply_updates("hot", chunk).unwrap();
                }
            });
        }
        for _ in 0..3 {
            let rt = Arc::clone(&rt);
            let q = q.clone();
            let cold_truth = &cold_truth;
            s.spawn(move || {
                for _ in 0..50 {
                    let out = rt.query("cold", &q, None, Route::Auto).unwrap();
                    assert_eq!(*out.matches, *cold_truth, "cold graph never changed");
                }
            });
        }
    });

    let totals = rt.wal_totals();
    assert_eq!(totals.appends, updates.chunks(4).count() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
