//! Property tests for the WAL frame format and the replay semantics the
//! runtime's durability story rests on:
//!
//! * append → replay is the identity on any batch sequence;
//! * an arbitrary byte-level cut of the file tail (a crash mid-write)
//!   replays to a *prefix* of the batches, repairs the file in place,
//!   and is clean on the second replay;
//! * replaying the full update history onto a snapshot taken at *any*
//!   intermediate point converges to the final graph — the invariant
//!   that lets `snapshot` rewrite `.efg` without truncating the log.

use expfinder_graph::{DiGraph, EdgeUpdate, NodeId};
use expfinder_runtime::wal::{FsyncPolicy, Wal, WAL_MAGIC};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per proptest case (cases run concurrently).
fn tmp_wal(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "expfinder_walprop_{tag}_{}_{n}.wal",
        std::process::id()
    ))
}

const NODES: u32 = 12;

fn update_strategy() -> impl Strategy<Value = EdgeUpdate> {
    (proptest::bool::ANY, 0..NODES, 0..NODES).prop_map(|(ins, a, b)| {
        if ins {
            EdgeUpdate::Insert(NodeId(a), NodeId(b))
        } else {
            EdgeUpdate::Delete(NodeId(a), NodeId(b))
        }
    })
}

fn batches_strategy(max_batches: usize) -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    proptest::collection::vec(
        proptest::collection::vec(update_strategy(), 0..8),
        1..max_batches,
    )
}

/// A graph with `NODES` nodes, labels cycling over three classes, and
/// the given initial edges (modulo the node count).
fn graph_with_edges(edges: &[(u32, u32)]) -> DiGraph {
    let mut g = DiGraph::new();
    for i in 0..NODES {
        g.add_node(["A", "B", "C"][i as usize % 3], []);
    }
    for &(a, b) in edges {
        g.add_edge(NodeId(a % NODES), NodeId(b % NODES));
    }
    g
}

fn sorted_edges(g: &DiGraph) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
    edges.sort_unstable();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn append_replay_is_identity(batches in batches_strategy(12)) {
        let path = tmp_wal("roundtrip");
        {
            let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
            for batch in &batches {
                wal.append(batch).unwrap();
            }
        }
        let (records, summary) = Wal::replay(&path).unwrap();
        prop_assert!(!summary.truncated_tail);
        prop_assert_eq!(records.len(), batches.len());
        for (i, (rec, batch)) in records.iter().zip(&batches).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.as_updates().unwrap(), &batch[..]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn arbitrary_tail_cut_recovers_a_prefix(
        batches in batches_strategy(8),
        cut_ppm in 0u32..1_000_000,
    ) {
        let path = tmp_wal("cut");
        {
            let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
            for batch in &batches {
                wal.append(batch).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let header = WAL_MAGIC.len();
        // cut anywhere from "frames all gone" to "one byte missing"
        let cut = header + (full.len() - header) * cut_ppm as usize / 1_000_000;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (records, _) = Wal::replay(&path).unwrap();
        // whatever survived is a strict prefix of what was written
        prop_assert!(records.len() <= batches.len());
        for (i, (rec, batch)) in records.iter().zip(&batches).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(rec.as_updates().unwrap(), &batch[..]);
        }
        // the repair is persistent: a second replay is clean and equal
        let (again, summary2) = Wal::replay(&path).unwrap();
        prop_assert!(!summary2.truncated_tail);
        prop_assert_eq!(again.len(), records.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn final_frame_corruption_drops_only_that_frame(
        batches in batches_strategy(6),
        flip in 0u8..=255,
    ) {
        let path = tmp_wal("corrupt");
        {
            let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
            for batch in &batches {
                wal.append(batch).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        if bytes.len() > WAL_MAGIC.len() {
            let last = bytes.len() - 1;
            bytes[last] ^= flip | 1; // guaranteed to change the byte
            std::fs::write(&path, &bytes).unwrap();
        }
        let (records, summary) = Wal::replay(&path).unwrap();
        prop_assert_eq!(records.len(), batches.len() - 1);
        prop_assert!(summary.truncated_tail);
        let _ = std::fs::remove_file(&path);
    }

    /// Replaying the *full* history onto the state at any intermediate
    /// batch boundary yields the final graph: edge updates are
    /// last-writer-wins per edge, so re-applied old updates are either
    /// no-ops or are overridden by the later ones also being replayed.
    #[test]
    fn replay_onto_any_compaction_point_converges(
        initial in proptest::collection::vec((0..NODES, 0..NODES), 0..20),
        batches in batches_strategy(10),
    ) {
        let base = graph_with_edges(&initial);
        // states[k] = graph after the first k batches
        let mut states = vec![base.clone()];
        for batch in &batches {
            let mut g = states.last().unwrap().clone();
            for &up in batch {
                g.apply(up);
            }
            states.push(g);
        }
        let final_edges = sorted_edges(states.last().unwrap());
        for (k, state) in states.iter().enumerate() {
            let mut g = state.clone();
            for batch in &batches {
                for &up in batch {
                    g.apply(up);
                }
            }
            prop_assert_eq!(
                sorted_edges(&g),
                final_edges.clone(),
                "snapshot at batch boundary {} diverged after full replay",
                k
            );
        }
    }
}
