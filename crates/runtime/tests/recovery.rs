//! Crash-recovery tests for [`DurableExpFinder`]: a runtime that goes
//! away without writing any snapshot must come back — via WAL replay —
//! to a state whose query answers are **bit-identical** to an in-memory
//! oracle that applied the same updates. (The out-of-process `kill -9`
//! variant lives in the server crate's `recovery_smoke` binary; these
//! tests cover the same replay machinery in-process.)

use expfinder_engine::Route;
use expfinder_graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder_graph::{DiGraph, EdgeUpdate};
use expfinder_pattern::fixtures::demo_queries;
use expfinder_runtime::{DurableExpFinder, FsyncPolicy, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("expfinder_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        fsync: FsyncPolicy::Never,
        ..RuntimeConfig::default()
    }
}

fn collab(seed: u64) -> DiGraph {
    collaboration(
        &mut StdRng::seed_from_u64(seed),
        &CollabConfig {
            teams: 6,
            team_size: 6,
            ..CollabConfig::default()
        },
    )
}

/// Every demo query must answer identically on the recovered runtime
/// and on the oracle graph.
fn assert_queries_match_oracle(rt: &DurableExpFinder, name: &str, oracle: &DiGraph) {
    let engine = expfinder_engine::ExpFinder::default();
    let h = engine.add_graph("oracle", oracle.clone()).unwrap();
    for (qname, q) in demo_queries() {
        let got = rt.query(name, &q, None, Route::Auto).unwrap();
        let want = engine
            .query(&h)
            .pattern(q)
            .prefer(Route::Direct)
            .run()
            .unwrap();
        assert_eq!(
            *got.matches, *want.matches,
            "query {qname:?} diverged after recovery"
        );
    }
}

#[test]
fn replay_restores_updates_applied_before_the_crash() {
    let dir = tmpdir("basic");
    let base = collab(11);
    let updates = random_updates(&mut StdRng::seed_from_u64(12), &base, 40, 0.5);
    let batches: Vec<&[EdgeUpdate]> = updates.chunks(8).collect();

    {
        let rt = DurableExpFinder::open(&dir, config()).unwrap();
        rt.add_graph("c", base.clone()).unwrap();
        for batch in &batches {
            rt.apply_updates("c", batch).unwrap();
        }
        // dropped here with no snapshot/compaction: the .efg still
        // holds the *initial* graph, every batch lives only in the WAL
    }

    let rt = DurableExpFinder::open(&dir, config()).unwrap();
    let totals = rt.wal_totals();
    assert_eq!(totals.replayed_frames, batches.len() as u64);
    assert_eq!(totals.replayed_updates, updates.len() as u64);
    assert_eq!(totals.truncated_tails, 0);

    let mut oracle = base;
    for &up in &updates {
        oracle.apply(up);
    }
    assert_queries_match_oracle(&rt, "c", &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_frame_is_dropped_and_the_rest_recovers() {
    let dir = tmpdir("torn");
    let base = collab(21);
    let updates = random_updates(&mut StdRng::seed_from_u64(22), &base, 30, 0.5);
    let batches: Vec<&[EdgeUpdate]> = updates.chunks(6).collect();

    {
        let rt = DurableExpFinder::open(&dir, config()).unwrap();
        rt.add_graph("c", base.clone()).unwrap();
        for batch in &batches {
            rt.apply_updates("c", batch).unwrap();
        }
    }

    // simulate a crash mid-append: chop the last 3 bytes off the log
    let wal_path = dir.join("c.wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.truncate(bytes.len() - 3);
    std::fs::write(&wal_path, &bytes).unwrap();

    let rt = DurableExpFinder::open(&dir, config()).unwrap();
    let totals = rt.wal_totals();
    assert_eq!(totals.truncated_tails, 1, "torn tail must be detected");
    assert_eq!(totals.replayed_frames, batches.len() as u64 - 1);

    // oracle state: everything except the torn final batch
    let mut oracle = base;
    for batch in &batches[..batches.len() - 1] {
        for &up in *batch {
            oracle.apply(up);
        }
    }
    assert_queries_match_oracle(&rt, "c", &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_mid_stream_keeps_replay_convergent() {
    let dir = tmpdir("snapshot");
    let base = collab(31);
    let updates = random_updates(&mut StdRng::seed_from_u64(32), &base, 24, 0.5);
    let (first, second) = updates.split_at(12);

    {
        let rt = DurableExpFinder::open(&dir, config()).unwrap();
        rt.add_graph("c", base.clone()).unwrap();
        rt.apply_updates("c", first).unwrap();
        // rewrite .efg *without* truncating the WAL: recovery will
        // replay the full log onto the newer snapshot and must converge
        rt.snapshot("c").unwrap();
        rt.apply_updates("c", second).unwrap();
    }

    let rt = DurableExpFinder::open(&dir, config()).unwrap();
    assert_eq!(rt.wal_totals().replayed_frames, 2);

    let mut oracle = base;
    for &up in &updates {
        oracle.apply(up);
    }
    let edges = rt
        .read_graph("c", |g| {
            let mut e: Vec<_> = g.edges().collect();
            e.sort_unstable();
            e
        })
        .unwrap();
    let mut oracle_edges: Vec<_> = oracle.edges().collect();
    oracle_edges.sort_unstable();
    assert_eq!(edges, oracle_edges);
    assert_queries_match_oracle(&rt, "c", &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected ENOSPC that tears an append mid-frame must not poison
/// the run: the failed batch retries cleanly (the log self-healed), the
/// oracle checks still pass, and recovery after restart is exact.
#[test]
fn injected_enospc_mid_run_keeps_recovery_exact() {
    use expfinder_runtime::{FaultKind, FaultPlan};

    let dir = tmpdir("enospc");
    let base = collab(51);
    let updates = random_updates(&mut StdRng::seed_from_u64(52), &base, 40, 0.5);
    let batches: Vec<&[EdgeUpdate]> = updates.chunks(8).collect();

    {
        let rt = DurableExpFinder::open(&dir, config()).unwrap();
        rt.add_graph("c", base.clone()).unwrap();
        // tear the third append after 5 bytes, then report ENOSPC
        let inj = rt.fault_injector();
        inj.arm(FaultPlan::new().partial_write(2, 5, FaultKind::Enospc));
        let mut failures = 0;
        for batch in &batches {
            if rt.apply_updates("c", batch).is_err() {
                failures += 1;
                // the log truncated the torn frame: the retry must land
                rt.apply_updates("c", batch).unwrap();
            }
        }
        assert_eq!(failures, 1, "exactly the armed append fails");
        assert_eq!(rt.fault_totals().injected, 1);
        inj.disarm();
        assert_queries_match_oracle(&rt, "c", &{
            let mut g = base.clone();
            for &up in &updates {
                g.apply(up);
            }
            g
        });
    }

    let rt = DurableExpFinder::open(&dir, config()).unwrap();
    let totals = rt.wal_totals();
    assert_eq!(
        totals.truncated_tails, 0,
        "self-heal left no torn tail behind"
    );
    assert_eq!(totals.replayed_updates, updates.len() as u64);

    let mut oracle = base;
    for &up in &updates {
        oracle.apply(up);
    }
    assert_queries_match_oracle(&rt, "c", &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_survives_restart_with_short_log() {
    let dir = tmpdir("compact");
    let base = collab(41);
    let updates = random_updates(&mut StdRng::seed_from_u64(42), &base, 24, 0.5);
    let (first, second) = updates.split_at(12);

    {
        let rt = DurableExpFinder::open(&dir, config()).unwrap();
        rt.add_graph("c", base.clone()).unwrap();
        rt.apply_updates("c", first).unwrap();
        rt.compact("c").unwrap();
        rt.apply_updates("c", second).unwrap();
    }

    let rt = DurableExpFinder::open(&dir, config()).unwrap();
    // only the post-compaction batch is in the log
    assert_eq!(rt.wal_totals().replayed_frames, 1);
    assert_eq!(rt.wal_totals().replayed_updates, second.len() as u64);

    let mut oracle = base;
    for &up in &updates {
        oracle.apply(up);
    }
    assert_queries_match_oracle(&rt, "c", &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}
