//! Actor-per-shard runtime with an event-sourced write-ahead log.
//!
//! [`DurableExpFinder`] is the durable sibling of
//! [`expfinder_engine::ExpFinder`]: the same catalog-of-graphs surface
//! (add, query, update, register, batch), re-founded on two ideas the
//! in-memory engine does not have —
//!
//! 1. **Actor-owned writes.** Graph names are consistently hashed onto
//!    `N` shard workers (the `shard` module); each worker owns the
//!    authoritative
//!    [`DiGraph`] of its graphs and drains a *bounded* mailbox of
//!    commands, so an update batch has exclusive access by construction
//!    and backpressure is a full mailbox, not an unbounded queue.
//! 2. **Event-sourced durability.** Every accepted update batch is
//!    appended to a per-graph WAL ([`wal`]) *before* it is applied.
//!    Cold start replays `<name>.wal` onto the last `<name>.efg`
//!    snapshot; compaction rewrites the snapshot and truncates the log.
//!
//! Reads never enter a mailbox: each actor *publishes* an immutable
//! [`Arc`] snapshot of its graph after every change (with the CSR
//! snapshot and the per-version reach index travelling along, built
//! lazily), and queries evaluate against whichever snapshot they
//! grabbed. A reader holds a lock only long enough to clone an `Arc`,
//! so readers never block on writers and a query's `graph_version` is
//! exact for the state it saw.
//!
//! The WAL is *event-sourced serving state*, not just graph history:
//! registered queries are logged as `register`/`unregister` records and
//! replayed in sequence order on cold start, so standing queries (and
//! the push subscriptions built on them) survive a restart. Compaction
//! re-seeds the truncated log with one register record per live query.
//!
//! Maintained compression works here too: [`DurableExpFinder::compress`]
//! asks the owning shard actor to build the quotient, which then travels
//! with every published snapshot (like the reach index) and is
//! maintained through update batches, so `Route::Compressed` — and the
//! planner's compressed candidate — evaluate on the quotient exactly as
//! on the in-memory engine. Compression is *session* state, not
//! WAL-logged: it is derived, rebuildable on demand, and a restart
//! comes back uncompressed.
//!
//! Route selection is the engine's cost-based planner
//! ([`expfinder_engine::planner`]): each graph's published slot carries
//! a [`CostProfile`] that survives republishing, so read/update
//! frequencies and index hit rates accumulate across snapshot versions
//! and every [`QueryResponse`] carries its [`PlanDecision`].
//!
//! ```
//! use expfinder_runtime::{DurableExpFinder, RuntimeConfig, FsyncPolicy};
//! use expfinder_engine::Route;
//! use expfinder_graph::fixtures::collaboration_fig1;
//! use expfinder_pattern::fixtures::fig1_pattern;
//!
//! let dir = std::env::temp_dir().join(format!("ef-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = RuntimeConfig { fsync: FsyncPolicy::Never, ..RuntimeConfig::default() };
//! let rt = DurableExpFinder::open(&dir, config.clone()).unwrap();
//! rt.add_graph("fig1", collaboration_fig1().graph).unwrap();
//! rt.register_query("fig1", "team", fig1_pattern()).unwrap();
//! drop(rt);
//!
//! // reopen: the graph *and* its registered query are recovered
//! let rt = DurableExpFinder::open(&dir, config).unwrap();
//! assert_eq!(rt.registered_queries("fig1").unwrap(), vec!["team".to_owned()]);
//! let resp = rt.query("fig1", &fig1_pattern(), Some(2), Route::Auto).unwrap();
//! assert_eq!(resp.experts.len(), 2);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod faults;
pub mod wal;

pub(crate) mod shard;

pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultTotals, IoOp};
pub use shard::{CompactReport, ShardStats};
pub use wal::FsyncPolicy;

use crate::shard::{write_efg_atomic, Cmd, GraphActor, Reply, Ring, ShardHandle};
use crate::wal::{ReplaySummary, Wal};
use expfinder_compress::{CompressStats, CompressedGraph, CompressionMethod};
pub use expfinder_core::CancelToken;
use expfinder_core::{
    bounded_simulation_cancellable, graph_simulation_cancellable,
    parallel_bounded_simulation_cancellable, parallel_simulation_cancellable, rank_matches_top_k,
    BuildOptions, Cancelled, EvalOptions, EvalScratch, EvalStats, MatchRelation, ResultGraph,
    ScratchPool,
};
use expfinder_engine::cache::{CacheStats, QueryCache};
use expfinder_engine::planner::{self, PlannerCounters};
use expfinder_engine::{
    validate_graph_name, CancelTotals, CostProfile, EvalRoute, ExecConfig, ExpFinderError,
    GraphInfo, IndexTotals, PlanContext, PlanDecision, PlanRoute, PlannerTotals, QueryResponse,
    QuerySpec, QueryTimings, Route, UpdateHook, UpdateReport,
};
use expfinder_graph::{io as gio, CsrGraph, DiGraph, EdgeUpdate, GraphView, ReachIndex};
use expfinder_pattern::Pattern;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// published snapshots (the read side)
// ---------------------------------------------------------------------

/// A registered query as the read path sees it: name, route fingerprint
/// and the maintained relation at this snapshot's version.
pub(crate) struct RegisteredView {
    pub name: String,
    pub fingerprint: String,
    pub matches: Arc<MatchRelation>,
}

/// One immutable published state of a graph. Everything a query needs
/// travels together: the graph, its version, the lazily-built CSR
/// snapshot, the per-version reach index and the registered-query
/// relations — a reader that grabbed the `Arc` can keep evaluating on
/// it even while the actor publishes ten newer versions.
pub(crate) struct Snapshot {
    pub graph: Arc<DiGraph>,
    pub version: u64,
    /// CSR built on first eligible use, then shared by every reader of
    /// this snapshot (`OnceLock`: concurrent first readers race to
    /// build, one result wins).
    pub csr: OnceLock<Arc<CsrGraph>>,
    /// Class-reach memo for this exact version (interior mutability;
    /// entries fill lazily).
    pub reach: Arc<ReachIndex>,
    /// The maintained compressed quotient published by the actor, when
    /// one was built ([`DurableExpFinder::compress`]). Immutable like
    /// the graph — the actor publishes a fresh clone after maintenance.
    pub compressed: Option<Arc<CompressedGraph>>,
    /// The per-snapshot reach memo of the quotient. Fresh on every
    /// publish: the quotient can change without a version bump, so
    /// version-keyed invalidation alone would not be safe.
    pub reach_c: Arc<ReachIndex>,
    pub registered: Vec<RegisteredView>,
}

impl Snapshot {
    pub fn new(graph: &DiGraph, registered: Vec<RegisteredView>) -> Snapshot {
        let version = graph.version();
        Snapshot {
            graph: Arc::new(graph.clone()),
            version,
            csr: OnceLock::new(),
            reach: Arc::new(ReachIndex::new(version)),
            compressed: None,
            reach_c: Arc::new(ReachIndex::new(version)),
            registered,
        }
    }

    /// The CSR snapshot, building it if this snapshot does not have one
    /// yet (concurrent first readers race in `get_or_init`, one build
    /// wins). The build is timed into `profile` — observability only,
    /// the planner's estimates stay deterministic.
    fn csr(&self, profile: &CostProfile) -> Arc<CsrGraph> {
        if let Some(c) = self.csr.get() {
            return Arc::clone(c);
        }
        let started = Instant::now();
        let c = Arc::clone(
            self.csr
                .get_or_init(|| Arc::new(CsrGraph::snapshot(&self.graph))),
        );
        profile.note_csr_build(started.elapsed().as_nanos() as u64);
        c
    }

    /// The CSR only if some earlier query already paid for it — its
    /// build is sunk cost, which the planner treats as free.
    fn csr_if_built(&self) -> Option<Arc<CsrGraph>> {
        self.csr.get().map(Arc::clone)
    }
}

/// The stable identity of one graph in the runtime: its cache-key id,
/// owning shard, the slot the actor publishes snapshots into, and the
/// graph's [`CostProfile`] — which lives here, not on the snapshot, so
/// workload statistics accumulate across republished versions. The
/// `state` lock is held for one `Arc` clone (readers) or one `Arc`
/// store (the actor) — never across evaluation.
pub(crate) struct PublishedGraph {
    pub id: u64,
    pub shard: usize,
    pub state: RwLock<Arc<Snapshot>>,
    pub profile: Arc<CostProfile>,
}

impl PublishedGraph {
    pub fn new(id: u64, shard: usize, graph: &DiGraph) -> PublishedGraph {
        PublishedGraph {
            id,
            shard,
            state: RwLock::new(Arc::new(Snapshot::new(graph, Vec::new()))),
            profile: Arc::new(CostProfile::default()),
        }
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.state.read())
    }
}

// ---------------------------------------------------------------------
// WAL metrics
// ---------------------------------------------------------------------

/// Shared WAL counters, bumped by shard workers on append and by
/// [`DurableExpFinder::open`] during replay.
#[derive(Debug, Default)]
pub(crate) struct WalCounters {
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    replayed_frames: AtomicU64,
    replayed_updates: AtomicU64,
    truncated_tails: AtomicU64,
}

impl WalCounters {
    pub fn on_append(&self, frame_bytes: u64, fsyncs: u64) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        self.bytes.fetch_add(frame_bytes, Ordering::Relaxed);
    }

    fn on_replay(&self, s: &ReplaySummary) {
        self.replayed_frames
            .fetch_add(s.frames as u64, Ordering::Relaxed);
        self.replayed_updates
            .fetch_add(s.updates as u64, Ordering::Relaxed);
        if s.truncated_tail {
            self.truncated_tails.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn totals(&self) -> WalTotals {
        WalTotals {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            replayed_updates: self.replayed_updates.load(Ordering::Relaxed),
            truncated_tails: self.truncated_tails.load(Ordering::Relaxed),
        }
    }
}

/// Cumulative WAL activity since this runtime started — the
/// `engine.wal` block of `GET /metrics`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WalTotals {
    /// Frames appended (one per accepted update batch or
    /// register/unregister record).
    pub appends: u64,
    /// `fsync` calls issued by appends.
    pub fsyncs: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Frames replayed during cold start.
    pub replayed_frames: u64,
    /// Updates inside those frames.
    pub replayed_updates: u64,
    /// Logs whose torn tail was detected and truncated at replay.
    pub truncated_tails: u64,
}

// ---------------------------------------------------------------------
// eval totals (runtime copy of the engine's atomics)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct EvalTotals {
    refreshes: AtomicU64,
    removals: AtomicU64,
    refreshes_skipped: AtomicU64,
    bfs_nodes_visited: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
}

impl EvalTotals {
    fn add(&self, s: EvalStats) {
        self.refreshes
            .fetch_add(s.refreshes as u64, Ordering::Relaxed);
        self.removals
            .fetch_add(s.removals as u64, Ordering::Relaxed);
        self.refreshes_skipped
            .fetch_add(s.refreshes_skipped as u64, Ordering::Relaxed);
        self.bfs_nodes_visited
            .fetch_add(s.bfs_nodes_visited as u64, Ordering::Relaxed);
        self.index_hits
            .fetch_add(s.index_hits as u64, Ordering::Relaxed);
        self.index_misses
            .fetch_add(s.index_misses as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EvalStats {
        EvalStats {
            refreshes: self.refreshes.load(Ordering::Relaxed) as usize,
            removals: self.removals.load(Ordering::Relaxed) as usize,
            refreshes_skipped: self.refreshes_skipped.load(Ordering::Relaxed) as usize,
            bfs_nodes_visited: self.bfs_nodes_visited.load(Ordering::Relaxed) as usize,
            index_hits: self.index_hits.load(Ordering::Relaxed) as usize,
            index_misses: self.index_misses.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Lock-free accumulator behind [`DurableExpFinder::cancel_totals`] —
/// every deadline-carrying query drains its token's counters here when
/// it finishes (successfully or by abort).
#[derive(Default)]
struct CancelCounters {
    checked: AtomicU64,
    fired: AtomicU64,
}

impl CancelCounters {
    fn drain(&self, token: &CancelToken) {
        self.checked.fetch_add(token.checks(), Ordering::Relaxed);
        self.fired.fetch_add(token.fired(), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------

/// Knobs of one [`DurableExpFinder`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Shard worker threads (graphs are consistently hashed across
    /// them). More shards = more independent write pipelines.
    pub shards: usize,
    /// Mailbox slots per shard; a full mailbox blocks senders (the
    /// backpressure point).
    pub mailbox_capacity: usize,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Cached query results (LRU), shared across graphs.
    pub cache_capacity: usize,
    /// Per-query / batch thread budget (same semantics as the engine).
    pub exec: ExecConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        RuntimeConfig {
            // write pipelines, not compute: a handful is plenty, and
            // each idle shard is a parked thread
            shards: cores.clamp(1, 4),
            mailbox_capacity: 64,
            fsync: FsyncPolicy::Always,
            cache_capacity: 64,
            exec: ExecConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------
// the facade
// ---------------------------------------------------------------------

/// The durable, sharded ExpFinder: same query surface as the in-memory
/// engine, with every graph owned by a shard actor and every update
/// batch WAL-logged before it is applied. See the crate docs for the
/// architecture.
pub struct DurableExpFinder {
    dir: PathBuf,
    config: RuntimeConfig,
    graphs: RwLock<HashMap<String, Arc<PublishedGraph>>>,
    shards: Vec<ShardHandle>,
    ring: Ring,
    cache: Mutex<QueryCache>,
    scratch: ScratchPool,
    eval_totals: EvalTotals,
    planner: PlannerCounters,
    cancel_totals: CancelCounters,
    wal_counters: Arc<WalCounters>,
    /// The fault-injection gate every durability-critical I/O site of
    /// this runtime routes through (disarmed in production — see
    /// [`faults`]).
    faults: Arc<FaultInjector>,
    /// Observer of committed update batches, shared with every shard
    /// worker (ΔM push fan-out; see [`DurableExpFinder::set_update_hook`]).
    update_hook: Arc<RwLock<Option<UpdateHook>>>,
    next_id: AtomicU64,
}

// one runtime, many threads — same contract as the engine
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DurableExpFinder>();
};

impl DurableExpFinder {
    /// Open (creating if needed) the catalog at `dir` and recover every
    /// graph: load `<name>.efg`, replay `<name>.wal` onto it (torn
    /// tails truncated), and hand the result to its owning shard. A
    /// `.wal` with no matching `.efg` is ignored — `add_graph` writes
    /// the snapshot before the log ever accepts a frame, so an orphan
    /// log belongs to a removed graph.
    pub fn open(
        dir: impl AsRef<Path>,
        config: RuntimeConfig,
    ) -> Result<DurableExpFinder, ExpFinderError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal_counters = Arc::new(WalCounters::default());
        let update_hook: Arc<RwLock<Option<UpdateHook>>> = Arc::new(RwLock::new(None));
        let shards: Vec<ShardHandle> = (0..config.shards.max(1))
            .map(|i| {
                ShardHandle::spawn(
                    i,
                    config.mailbox_capacity,
                    Arc::clone(&wal_counters),
                    Arc::clone(&update_hook),
                )
            })
            .collect();
        let ring = Ring::new(config.shards.max(1));
        let cache = Mutex::new(QueryCache::new(config.cache_capacity));
        let rt = DurableExpFinder {
            dir,
            config,
            graphs: RwLock::new(HashMap::new()),
            shards,
            ring,
            cache,
            scratch: ScratchPool::new(),
            eval_totals: EvalTotals::default(),
            planner: PlannerCounters::default(),
            cancel_totals: CancelCounters::default(),
            wal_counters,
            faults: FaultInjector::disarmed(),
            update_hook,
            next_id: AtomicU64::new(1),
        };

        let mut names: Vec<String> = Vec::new();
        for entry in rt.dir.read_dir()? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "efg") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_owned());
                }
            }
        }
        names.sort();
        for name in names {
            rt.recover_graph(&name)?;
        }
        Ok(rt)
    }

    /// Cold-start one graph: load the snapshot, replay the WAL's records
    /// — update batches *and* register/unregister records — in sequence
    /// order onto an actor, publish the recovered state (registered
    /// queries included), then hand ownership to the shard.
    fn recover_graph(&self, name: &str) -> Result<(), ExpFinderError> {
        let graph = gio::load_text(self.dir.join(format!("{name}.efg")))?;
        let wal_path = self.wal_path(name);
        let (records, summary) = Wal::replay(&wal_path)
            .map_err(|e| ExpFinderError::Storage(format!("wal replay for {name:?}: {e}")))?;
        let last_seq = records.last().map_or(0, |r| r.seq);
        self.wal_counters.on_replay(&summary);
        let wal = Wal::open_with_faults(
            &wal_path,
            self.config.fsync,
            last_seq,
            Arc::clone(&self.faults),
        )
        .map_err(|e| ExpFinderError::Storage(format!("wal open for {name:?}: {e}")))?;
        let shard = self.ring.shard_for(name);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(PublishedGraph::new(id, shard, &graph));
        let mut actor = GraphActor::new(
            name.to_owned(),
            self.dir.clone(),
            graph,
            wal,
            Arc::clone(&published),
            Arc::clone(&self.faults),
        );
        for rec in &records {
            actor.replay_op(&rec.op)?;
        }
        // publish before adoption: the first snapshot readers see
        // already carries the replayed graph and its registered queries
        actor.publish();
        self.graphs
            .write()
            .insert(name.to_owned(), Arc::clone(&published));
        self.request(shard, |reply| Cmd::Adopt {
            actor: Box::new(actor),
            reply,
        })?;
        Ok(())
    }

    /// Install (or, with `None`, remove) the [`UpdateHook`] every shard
    /// worker fires after committing an update batch. The hook runs on
    /// the actor thread right after the snapshot publish, so per-graph
    /// invocations arrive in commit order; while one is installed,
    /// batches are always traced (full ΔM in every report).
    pub fn set_update_hook(&self, hook: Option<UpdateHook>) {
        *self.update_hook.write() = hook;
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the runtime was opened with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    fn wal_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.wal"))
    }

    /// Send one command to a shard and wait for its reply; a dead
    /// worker surfaces as a storage error, never a hang.
    fn request<T>(
        &self,
        shard: usize,
        mk: impl FnOnce(Reply<T>) -> Cmd,
    ) -> Result<T, ExpFinderError> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.shards[shard].send(mk(tx))?;
        rx.recv()
            .map_err(|_| ExpFinderError::Storage("shard worker terminated".to_owned()))?
    }

    fn published(&self, name: &str) -> Result<Arc<PublishedGraph>, ExpFinderError> {
        self.graphs
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ExpFinderError::UnknownGraph(name.to_owned()))
    }

    // --------------------------- catalog ---------------------------

    /// Add a graph: write its `.efg` snapshot, create its WAL, and hand
    /// ownership to the shard the name hashes to. Durable when this
    /// returns. The graph becomes queryable a moment before the shard's
    /// ack; if the durable IO fails it is unpublished again and the
    /// error surfaces here.
    pub fn add_graph(&self, name: &str, graph: DiGraph) -> Result<u64, ExpFinderError> {
        validate_graph_name(name)?;
        let shard = self.ring.shard_for(name);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(PublishedGraph::new(id, shard, &graph));
        {
            let mut graphs = self.graphs.write();
            if graphs.contains_key(name) {
                return Err(ExpFinderError::DuplicateGraph(name.to_owned()));
            }
            graphs.insert(name.to_owned(), Arc::clone(&published));
        }
        // durable IO happens outside the registry lock so concurrent
        // readers of other graphs never wait on this graph's disk
        let result = (|| {
            let wal_path = self.wal_path(name);
            // a stale log from a removed former life must not replay
            // onto the new graph
            let _ = std::fs::remove_file(&wal_path);
            write_efg_atomic(&graph, &self.dir.join(format!("{name}.efg")), &self.faults)?;
            let wal =
                Wal::open_with_faults(&wal_path, self.config.fsync, 0, Arc::clone(&self.faults))
                    .map_err(|e| ExpFinderError::Storage(format!("wal open for {name:?}: {e}")))?;
            let actor = GraphActor::new(
                name.to_owned(),
                self.dir.clone(),
                graph,
                wal,
                published,
                Arc::clone(&self.faults),
            );
            self.request(shard, |reply| Cmd::Adopt {
                actor: Box::new(actor),
                reply,
            })
        })();
        match result {
            Ok(version) => Ok(version),
            Err(e) => {
                self.graphs.write().remove(name);
                Err(e)
            }
        }
    }

    /// Remove a graph and delete its files (snapshot first, then log,
    /// so a crash in between leaves only an orphan `.wal`, which `open`
    /// ignores).
    pub fn remove_graph(&self, name: &str) -> Result<(), ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Remove {
            name: name.to_owned(),
            reply,
        })?;
        self.graphs.write().remove(name);
        Ok(())
    }

    /// Managed graph names, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Point-in-time summaries of every graph, sorted by name.
    pub fn graph_infos(&self) -> Vec<GraphInfo> {
        let graphs: Vec<(String, Arc<PublishedGraph>)> = self
            .graphs
            .read()
            .iter()
            .map(|(n, pg)| (n.clone(), Arc::clone(pg)))
            .collect();
        let mut infos: Vec<GraphInfo> = graphs
            .into_iter()
            .map(|(name, pg)| {
                let snap = pg.snapshot();
                GraphInfo {
                    name,
                    nodes: snap.graph.node_count(),
                    edges: snap.graph.edge_count(),
                    version: snap.version,
                    registered_queries: snap.registered.len(),
                    compressed: snap.compressed.is_some(),
                }
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Run `f` against the published snapshot's graph (no lock held
    /// while `f` runs — it borrows the snapshot `Arc`).
    pub fn read_graph<R>(
        &self,
        name: &str,
        f: impl FnOnce(&DiGraph) -> R,
    ) -> Result<R, ExpFinderError> {
        let snap = self.published(name)?.snapshot();
        Ok(f(&snap.graph))
    }

    /// The published version of a graph.
    pub fn graph_version(&self, name: &str) -> Result<u64, ExpFinderError> {
        Ok(self.published(name)?.snapshot().version)
    }

    // --------------------------- queries ---------------------------

    /// Evaluate one pattern, optionally ranking the best `top_k`
    /// experts. Runs entirely on the calling thread against the latest
    /// published snapshot.
    pub fn query(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
    ) -> Result<QueryResponse, ExpFinderError> {
        self.query_deadline(name, pattern, top_k, prefer, None)
    }

    /// [`DurableExpFinder::query`] under an evaluation budget: once
    /// `deadline` has elapsed the evaluation abandons work at its next
    /// cancellation point and returns
    /// [`ExpFinderError::DeadlineExceeded`] with the partial
    /// [`EvalStats`]. `None` costs nothing on the hot path.
    pub fn query_deadline(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
        deadline: Option<Duration>,
    ) -> Result<QueryResponse, ExpFinderError> {
        let threads = self.config.exec.threads.max(1);
        let mut scratch = self.scratch.take();
        let token = deadline.map(CancelToken::with_deadline);
        let out = self.execute(
            name,
            pattern,
            top_k,
            prefer,
            threads,
            &mut scratch,
            token.as_deref(),
        );
        if let Some(t) = &token {
            self.cancel_totals.drain(t);
        }
        out
    }

    /// [`DurableExpFinder::query`] polling a caller-supplied
    /// [`CancelToken`] at every cancellation point — the durable
    /// counterpart of the engine's `QueryBuilder::cancel_token`: a
    /// `cancel()` from another thread (a disconnected client, a
    /// supervisor, a deterministic test fuse) aborts the evaluation with
    /// [`ExpFinderError::DeadlineExceeded`] carrying the partial stats.
    /// The token's check/fire counts are folded into
    /// [`DurableExpFinder::cancel_totals`] when the call returns.
    pub fn query_cancellable(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
        token: &CancelToken,
    ) -> Result<QueryResponse, ExpFinderError> {
        let threads = self.config.exec.threads.max(1);
        let mut scratch = self.scratch.take();
        let out = self.execute(
            name,
            pattern,
            top_k,
            prefer,
            threads,
            &mut scratch,
            Some(token),
        );
        self.cancel_totals.drain(token);
        out
    }

    /// Evaluate one [`QuerySpec`] (parsing DSL text if needed).
    pub fn query_spec(
        &self,
        name: &str,
        spec: &QuerySpec,
    ) -> Result<QueryResponse, ExpFinderError> {
        let threads = self.config.exec.threads.max(1);
        let mut scratch = self.scratch.take();
        self.run_spec(name, spec, threads, &mut scratch, None)
    }

    /// Evaluate a batch of specs against one graph, fanning out across
    /// `exec.batch_parallelism` workers with the engine's split-budget
    /// rule (`threads / workers` inner threads each). All slots see the
    /// same published snapshot era (each grabs the latest at its start).
    pub fn query_batch(
        &self,
        name: &str,
        specs: Vec<QuerySpec>,
    ) -> Vec<Result<QueryResponse, ExpFinderError>> {
        self.query_batch_deadline(name, specs, None)
    }

    /// [`DurableExpFinder::query_batch`] under one shared deadline — the
    /// durable counterpart of
    /// [`ExpFinder::query_batch_deadline`](expfinder_engine::ExpFinder::query_batch_deadline):
    /// one token polled by every worker, per-spec deadlines tightening
    /// their own slot.
    pub fn query_batch_deadline(
        &self,
        name: &str,
        specs: Vec<QuerySpec>,
        deadline: Option<Duration>,
    ) -> Vec<Result<QueryResponse, ExpFinderError>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let batch_token = deadline.map(CancelToken::with_deadline);
        let batch_cancel = batch_token.as_deref();
        let workers = self.config.exec.batch_parallelism.clamp(1, specs.len());
        let inner_threads = (self.config.exec.threads / workers).max(1);
        let indices: Vec<usize> = (0..specs.len()).collect();
        let pairs = expfinder_core::parallel::run_items(
            workers,
            &indices,
            || self.scratch.take(),
            |scratch, &i| {
                (
                    i,
                    self.run_spec(name, &specs[i], inner_threads, scratch, batch_cancel),
                )
            },
        );
        let out = match pairs {
            Some(mut pairs) => {
                pairs.sort_by_key(|(i, _)| *i);
                pairs.into_iter().map(|(_, r)| r).collect()
            }
            None => {
                let threads = self.config.exec.threads.max(1);
                let mut scratch = self.scratch.take();
                specs
                    .iter()
                    .map(|sp| self.run_spec(name, sp, threads, &mut scratch, batch_cancel))
                    .collect()
            }
        };
        if let Some(t) = &batch_token {
            self.cancel_totals.drain(t);
        }
        out
    }

    fn run_spec(
        &self,
        name: &str,
        spec: &QuerySpec,
        threads: usize,
        scratch: &mut EvalScratch,
        batch_cancel: Option<&CancelToken>,
    ) -> Result<QueryResponse, ExpFinderError> {
        let (pattern, top_k, prefer) = spec.resolve()?;
        // a per-spec deadline becomes its own token, clipped to whatever
        // remains of the batch budget
        let own = spec.deadline_budget().map(|d| {
            let budget = batch_cancel
                .and_then(CancelToken::remaining)
                .map_or(d, |left| left.min(d));
            CancelToken::with_deadline(budget)
        });
        let cancel = own.as_deref().or(batch_cancel);
        let out = self.execute(name, &pattern, top_k, prefer, threads, scratch, cancel);
        if let Some(t) = &own {
            self.cancel_totals.drain(t);
        }
        out
    }

    /// Snapshot-grab, evaluate, rank: the whole read path. No lock is
    /// held past the snapshot `Arc` clone.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
        threads: usize,
        scratch: &mut EvalScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryResponse, ExpFinderError> {
        let started = Instant::now();
        let pg = self.published(name)?;
        let snap = pg.snapshot();
        let (matches, route, plan) =
            self.eval_snapshot(&pg, &snap, pattern, prefer, threads, scratch, cancel)?;
        let evaluate_time = started.elapsed();

        let rank_started = Instant::now();
        let experts = match top_k {
            None => Vec::new(),
            Some(k) => {
                let opts = BuildOptions { threads };
                let direct = matches!(
                    route,
                    EvalRoute::DirectSimulation | EvalRoute::DirectBounded
                );
                let csr = if direct { snap.csr_if_built() } else { None };
                if let Some(csr) = csr {
                    let rg = ResultGraph::build_with(&*csr, pattern, &matches, opts);
                    rank_matches_top_k(&rg, pattern, &matches, k)?
                } else {
                    let rg = ResultGraph::build_with(&*snap.graph, pattern, &matches, opts);
                    rank_matches_top_k(&rg, pattern, &matches, k)?
                }
            }
        };
        let rank_time = rank_started.elapsed();

        Ok(QueryResponse {
            experts,
            matches,
            route,
            graph_version: snap.version,
            timings: QueryTimings {
                evaluate: evaluate_time,
                rank: rank_time,
                total: started.elapsed(),
            },
            plan,
        })
    }

    /// The engine's routing: the exact-result short circuits (cache →
    /// registered) in paper §II order, then the cost-based planner over
    /// the published snapshot's physical routes — live adjacency,
    /// reach-indexed CSR (sequential or parallel), and the published
    /// quotient when one exists and the pattern is compression-safe.
    /// The [`CostProfile`] lives on the graph's stable [`PublishedGraph`]
    /// slot, so statistics accumulate across republished versions.
    #[allow(clippy::too_many_arguments)]
    fn eval_snapshot(
        &self,
        pg: &PublishedGraph,
        snap: &Snapshot,
        pattern: &Pattern,
        prefer: Route,
        threads: usize,
        scratch: &mut EvalScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<MatchRelation>, EvalRoute, PlanDecision), ExpFinderError> {
        // a token that fired before evaluation started aborts here, with
        // zero work to report
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return Err(ExpFinderError::DeadlineExceeded(EvalStats::default()));
        }
        let fingerprint = pattern.fingerprint();
        let key = QueryCache::key_for(pg.id, snap.version, &fingerprint);

        if prefer == Route::Auto {
            if let Some(hit) = self.cache.lock().get(&key, &fingerprint) {
                let plan = PlanDecision::exact(PlanRoute::Cache);
                self.planner.on_decision(&plan);
                return Ok((hit, EvalRoute::Cache, plan));
            }
            for rv in &snap.registered {
                if rv.fingerprint == fingerprint {
                    let matches = Arc::clone(&rv.matches);
                    self.cache
                        .lock()
                        .put(key, &fingerprint, Arc::clone(&matches));
                    let plan = PlanDecision::exact(PlanRoute::Registered);
                    self.planner.on_decision(&plan);
                    return Ok((matches, EvalRoute::Registered, plan));
                }
            }
        }

        let try_compressed = prefer != Route::Direct;
        let compression_ratio = if try_compressed {
            snap.compressed.as_ref().and_then(|gc| {
                if gc.validate_pattern(pattern).is_ok() {
                    let cs = gc.stats();
                    let original = (cs.original_nodes + cs.original_edges).max(1);
                    let quotient = (cs.compressed_nodes + cs.compressed_edges).max(1);
                    Some(quotient as f64 / original as f64)
                } else {
                    None
                }
            })
        } else {
            None
        };
        let inputs = pg.profile.inputs(
            snap.version,
            snap.graph.size(),
            snap.csr_if_built().is_some(),
        );
        let ctx = PlanContext {
            threads,
            pattern_edges: pattern.edge_count(),
            compression_ratio,
        };
        let mut plan = planner::plan(&inputs, &ctx);
        plan.apply_preference(prefer);

        // A fired token surfaces as the inner `Cancelled` before any torn
        // state is cached or applied (see `expfinder-core`), so an
        // aborted evaluation leaves scratch, cache and profile untouched.
        let evaluated: Result<(MatchRelation, EvalStats, EvalRoute), Cancelled> = match plan.chosen
        {
            PlanRoute::Compressed => {
                let gc = snap
                    .compressed
                    .as_ref()
                    .expect("compressed candidate implies a published quotient");
                let on_c = if pattern.is_simulation() {
                    graph_simulation_cancellable(&**gc, pattern, scratch, cancel)?
                } else if gc.has_label_index() {
                    let bound = snap.reach_c.bind(&**gc);
                    bounded_simulation_cancellable(
                        &**gc,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        Some(&bound),
                        cancel,
                    )
                } else {
                    bounded_simulation_cancellable(
                        &**gc,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        None,
                        cancel,
                    )
                };
                on_c.map(|(m, stats)| (gc.expand(&m), stats, EvalRoute::Compressed))
            }
            PlanRoute::SnapshotParallel => {
                let csr = snap.csr(&pg.profile);
                let bound = snap.reach.bind(&*csr);
                if pattern.is_simulation() {
                    parallel_simulation_cancellable(&*csr, pattern, threads, Some(&bound), cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    parallel_bounded_simulation_cancellable(
                        &*csr,
                        pattern,
                        threads,
                        Some(&bound),
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
            PlanRoute::Snapshot => {
                let csr = snap.csr(&pg.profile);
                if pattern.is_simulation() {
                    graph_simulation_cancellable(&*csr, pattern, scratch, cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    let bound = snap.reach.bind(&*csr);
                    bounded_simulation_cancellable(
                        &*csr,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        Some(&bound),
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
            // Live (Cache/Registered never reach this point)
            _ => {
                if pattern.is_simulation() {
                    graph_simulation_cancellable(&*snap.graph, pattern, scratch, cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    bounded_simulation_cancellable(
                        &*snap.graph,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        None,
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
        };
        let (m, stats, route) = match evaluated {
            Ok(t) => t,
            Err(c) => {
                // partial work still counts toward the runtime totals,
                // but never into the cost profile or the cache
                self.planner.on_decision(&plan);
                self.eval_totals.add(c.stats);
                return Err(ExpFinderError::DeadlineExceeded(c.stats));
            }
        };
        pg.profile.note_eval(snap.version, &stats);
        if plan.mispredicted(&stats) {
            self.planner.on_mispredict();
        }
        self.planner.on_decision(&plan);
        self.eval_totals.add(stats);
        let matches = Arc::new(m);
        self.cache
            .lock()
            .put(key, &fingerprint, Arc::clone(&matches));
        Ok((matches, route, plan))
    }

    // --------------------------- updates ---------------------------

    /// Apply edge updates through the owning shard: WAL-append (fsynced
    /// per policy), apply, maintain registered queries, republish.
    /// Returns how many updates changed the graph.
    pub fn apply_updates(
        &self,
        name: &str,
        updates: &[EdgeUpdate],
    ) -> Result<usize, ExpFinderError> {
        Ok(self.apply_updates_inner(name, updates, false)?.applied)
    }

    /// Like [`DurableExpFinder::apply_updates`] with the full ΔM report.
    pub fn apply_updates_traced(
        &self,
        name: &str,
        updates: &[EdgeUpdate],
    ) -> Result<UpdateReport, ExpFinderError> {
        self.apply_updates_inner(name, updates, true)
    }

    fn apply_updates_inner(
        &self,
        name: &str,
        updates: &[EdgeUpdate],
        trace: bool,
    ) -> Result<UpdateReport, ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Apply {
            name: name.to_owned(),
            updates: updates.to_vec(),
            trace,
            reply,
        })
    }

    // ---------------------- registered queries ---------------------

    /// Register a query for incremental maintenance on its shard. The
    /// registration is durable: a `register` record (carrying the
    /// pattern's DSL source) is WAL-appended before the ack, and cold
    /// start replays it — the query, and any push subscription that
    /// names it, survives a restart.
    pub fn register_query(
        &self,
        name: &str,
        query_name: &str,
        pattern: Pattern,
    ) -> Result<(), ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Register {
            name: name.to_owned(),
            query_name: query_name.to_owned(),
            pattern,
            reply,
        })
    }

    /// Drop a registered query. The removal is WAL-logged before it
    /// takes effect, so it survives a restart like the registration did.
    pub fn unregister_query(&self, name: &str, query_name: &str) -> Result<(), ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Unregister {
            name: name.to_owned(),
            query_name: query_name.to_owned(),
            reply,
        })
    }

    /// Names of queries registered on a graph, sorted.
    pub fn registered_queries(&self, name: &str) -> Result<Vec<String>, ExpFinderError> {
        let snap = self.published(name)?.snapshot();
        let mut names: Vec<String> = snap.registered.iter().map(|rv| rv.name.clone()).collect();
        names.sort();
        Ok(names)
    }

    /// The maintained result of a registered query, as published.
    pub fn registered_result(
        &self,
        name: &str,
        query_name: &str,
    ) -> Result<MatchRelation, ExpFinderError> {
        let snap = self.published(name)?.snapshot();
        snap.registered
            .iter()
            .find(|rv| rv.name == query_name)
            .map(|rv| (*rv.matches).clone())
            .ok_or_else(|| ExpFinderError::UnknownQuery(query_name.to_owned()))
    }

    // ------------------------- compression -------------------------

    /// Build (or rebuild) a maintained reachability-preserving
    /// compression of a graph on its shard and publish the quotient with
    /// the next snapshot. The quotient is session state — it is *not*
    /// WAL-logged, so a restart comes back uncompressed and `compress`
    /// must be called again.
    pub fn compress(
        &self,
        name: &str,
        method: CompressionMethod,
    ) -> Result<CompressStats, ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Compress {
            name: name.to_owned(),
            method,
            reply,
        })
    }

    /// Drop a graph's maintained compression; subsequent snapshots
    /// publish without a quotient and the planner stops considering
    /// the compressed route.
    pub fn drop_compression(&self, name: &str) -> Result<(), ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::DropCompression {
            name: name.to_owned(),
            reply,
        })
    }

    /// Compression statistics of the currently published quotient, or
    /// `None` when the graph is not compressed.
    pub fn compression_stats(&self, name: &str) -> Result<Option<CompressStats>, ExpFinderError> {
        let snap = self.published(name)?.snapshot();
        Ok(snap.compressed.as_ref().map(|gc| gc.stats()))
    }

    // ---------------------- snapshot / compact ---------------------

    /// Rewrite `<name>.efg` from the current graph (WAL untouched).
    pub fn snapshot(&self, name: &str) -> Result<PathBuf, ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Snapshot {
            name: name.to_owned(),
            reply,
        })
    }

    /// Rewrite `<name>.efg`, then truncate the WAL — the log's frames
    /// are folded into the snapshot.
    pub fn compact(&self, name: &str) -> Result<CompactReport, ExpFinderError> {
        let pg = self.published(name)?;
        self.request(pg.shard, |reply| Cmd::Compact {
            name: name.to_owned(),
            reply,
        })
    }

    // --------------------------- metrics ---------------------------

    /// Cumulative query-cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// Entries currently held by the query cache.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Cumulative evaluation-work counters across every query served.
    pub fn eval_totals(&self) -> EvalStats {
        self.eval_totals.snapshot()
    }

    /// Reach-index totals: cumulative hits/misses plus live entry/byte
    /// gauges over the currently published snapshots.
    pub fn index_totals(&self) -> IndexTotals {
        let stats = self.eval_totals.snapshot();
        let graphs: Vec<Arc<PublishedGraph>> =
            self.graphs.read().values().map(Arc::clone).collect();
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for pg in graphs {
            let snap = pg.snapshot();
            entries += snap.reach.len();
            bytes += snap.reach.bytes();
        }
        IndexTotals {
            hits: stats.index_hits as u64,
            misses: stats.index_misses as u64,
            entries,
            bytes,
        }
    }

    /// Cumulative WAL activity.
    pub fn wal_totals(&self) -> WalTotals {
        self.wal_counters.totals()
    }

    /// Cumulative fault-injection activity (`engine.faults` in
    /// `/metrics`); all zeros unless a test harness armed a plan.
    pub fn fault_totals(&self) -> FaultTotals {
        self.faults.totals()
    }

    /// The fault-injection gate of this runtime, for test harnesses to
    /// arm ([`FaultInjector::arm`]). Production code never touches it —
    /// disarmed hooks cost one relaxed atomic load per I/O boundary.
    pub fn fault_injector(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.faults)
    }

    /// Cumulative planner counters: decisions made, preference
    /// overrides recorded, and index-warmth mispredictions.
    pub fn planner_totals(&self) -> PlannerTotals {
        self.planner.totals()
    }

    /// Cumulative cancellation counters — armed checks polled and tokens
    /// fired across every deadline-carrying query on this runtime.
    pub fn cancel_totals(&self) -> CancelTotals {
        CancelTotals {
            checked: self.cancel_totals.checked.load(Ordering::Relaxed),
            fired: self.cancel_totals.fired.load(Ordering::Relaxed),
        }
    }

    /// Estimate the planner cost (abstract work units) of evaluating
    /// `pattern` on the latest published snapshot of `name`, without
    /// evaluating anything — the runtime-side twin of
    /// [`expfinder_engine::ExpFinder::estimate_cost`], used by the
    /// server's admission
    /// control. Does not consult the cache or registered results, so
    /// the estimate is conservative.
    pub fn estimate_cost(&self, name: &str, pattern: &Pattern) -> Result<f64, ExpFinderError> {
        let pg = self.published(name)?;
        let snap = pg.snapshot();
        let compression_ratio = snap.compressed.as_ref().and_then(|gc| {
            if gc.validate_pattern(pattern).is_ok() {
                let cs = gc.stats();
                let original = (cs.original_nodes + cs.original_edges).max(1);
                let quotient = (cs.compressed_nodes + cs.compressed_edges).max(1);
                Some(quotient as f64 / original as f64)
            } else {
                None
            }
        });
        let inputs = pg.profile.inputs(
            snap.version,
            snap.graph.size(),
            snap.csr_if_built().is_some(),
        );
        let ctx = PlanContext {
            threads: self.config.exec.threads.max(1),
            pattern_edges: pattern.edge_count(),
            compression_ratio,
        };
        let plan = planner::plan(&inputs, &ctx);
        Ok(plan
            .candidates
            .iter()
            .find(|c| c.route == plan.planned)
            .map_or(f64::INFINITY, |c| c.cost))
    }

    /// Per-shard load: mailbox depth, owned graphs, processed commands.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut per_shard_graphs = vec![0usize; self.shards.len()];
        for pg in self.graphs.read().values() {
            if pg.shard < per_shard_graphs.len() {
                per_shard_graphs[pg.shard] += 1;
            }
        }
        self.shards
            .iter()
            .enumerate()
            .map(|(i, h)| ShardStats {
                shard: i,
                depth: h.depth(),
                graphs: per_shard_graphs[i],
                commands: h.commands(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_pattern::fixtures::{fig1_pattern, fig1_pattern_simulation};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("expfinder_rt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sequential_config() -> RuntimeConfig {
        RuntimeConfig {
            shards: 2,
            fsync: FsyncPolicy::Never,
            exec: ExecConfig::sequential(),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn zero_deadline_aborts_and_leaves_runtime_unpoisoned() {
        let dir = tmpdir("deadline");
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", collaboration_fig1().graph).unwrap();
        let q = fig1_pattern();
        let err = rt
            .query_deadline("fig1", &q, None, Route::Auto, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.http_status(), 408);
        assert!(err.partial_stats().is_some());
        assert!(rt.cancel_totals().fired >= 1);
        // the next un-deadlined query is unaffected and uncached
        let ok = rt.query("fig1", &q, None, Route::Auto).unwrap();
        assert_ne!(ok.route, EvalRoute::Cache);
        assert_eq!(ok.matches.total_pairs(), 7);
        // batch-wide zero deadline fails every slot with 408
        let out = rt.query_batch_deadline(
            "fig1",
            vec![QuerySpec::pattern(q.clone()), QuerySpec::pattern(q)],
            Some(Duration::ZERO),
        );
        for r in out {
            assert_eq!(r.unwrap_err().http_status(), 408);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn add_query_matches_engine() {
        let dir = tmpdir("add_query");
        let f = collaboration_fig1();
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();

        let engine = expfinder_engine::ExpFinder::default();
        let h = engine.add_graph("fig1", f.graph.clone()).unwrap();
        let want = engine
            .query(&h)
            .pattern(fig1_pattern())
            .prefer(Route::Direct)
            .run()
            .unwrap();

        let got = rt
            .query("fig1", &fig1_pattern(), None, Route::Auto)
            .unwrap();
        assert_eq!(*got.matches, *want.matches);
        // second identical query is a cache hit
        let again = rt
            .query("fig1", &fig1_pattern(), None, Route::Auto)
            .unwrap();
        assert_eq!(again.route, EvalRoute::Cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn updates_survive_reopen() {
        let dir = tmpdir("reopen");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        {
            let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
            rt.add_graph("fig1", f.graph.clone()).unwrap();
            let applied = rt
                .apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
                .unwrap();
            assert_eq!(applied, 1);
        } // clean-ish shutdown: no snapshot write, recovery must replay

        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert_eq!(rt.graph_names(), vec!["fig1".to_owned()]);
        assert_eq!(rt.wal_totals().replayed_frames, 1);
        assert_eq!(rt.wal_totals().replayed_updates, 1);
        let mut oracle = f.graph.clone();
        oracle.apply(EdgeUpdate::Insert(x, y));
        let edges = rt.read_graph("fig1", |g| g.edge_count()).unwrap();
        assert_eq!(edges, oracle.edge_count());
        let got = rt
            .query("fig1", &fig1_pattern(), None, Route::Auto)
            .unwrap();
        let engine = expfinder_engine::ExpFinder::default();
        let h = engine.add_graph("fig1", oracle).unwrap();
        let want = engine.query(&h).pattern(fig1_pattern()).run().unwrap();
        assert_eq!(*got.matches, *want.matches);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_wal_into_snapshot() {
        let dir = tmpdir("compact");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        {
            let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
            rt.add_graph("fig1", f.graph.clone()).unwrap();
            rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
                .unwrap();
            let report = rt.compact("fig1").unwrap();
            assert!(report.wal_bytes_dropped > 0);
            // post-compaction updates land in the truncated log
            rt.apply_updates("fig1", &[EdgeUpdate::Delete(x, y)])
                .unwrap();
        }
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert_eq!(
            rt.wal_totals().replayed_frames,
            1,
            "only the post-compaction frame"
        );
        let edges = rt.read_graph("fig1", |g| g.edge_count()).unwrap();
        assert_eq!(edges, f.graph.edge_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registered_query_is_served_and_maintained() {
        let dir = tmpdir("registered");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        let q = fig1_pattern_simulation();
        rt.register_query("fig1", "team", q.clone()).unwrap();
        assert_eq!(
            rt.registered_queries("fig1").unwrap(),
            vec!["team".to_owned()]
        );
        assert!(matches!(
            rt.register_query("fig1", "team", q.clone()),
            Err(ExpFinderError::DuplicateQuery(_))
        ));

        let r = rt.query("fig1", &q, None, Route::Auto).unwrap();
        assert_eq!(r.route, EvalRoute::Registered);

        let before = rt.registered_result("fig1", "team").unwrap().total_pairs();
        let report = rt
            .apply_updates_traced("fig1", &[EdgeUpdate::Insert(x, y)])
            .unwrap();
        assert_eq!(report.registered.len(), 1);
        assert_eq!(report.registered[0].before_pairs, before);
        let after = rt.registered_result("fig1", "team").unwrap().total_pairs();
        assert_eq!(report.registered[0].after_pairs, after);

        // maintained result equals a fresh evaluation
        let fresh = rt.query("fig1", &q, None, Route::Direct).unwrap();
        let maintained = rt.registered_result("fig1", "team").unwrap();
        assert_eq!(*fresh.matches, maintained);

        rt.unregister_query("fig1", "team").unwrap();
        assert!(rt.registered_queries("fig1").unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registrations_survive_reopen() {
        let dir = tmpdir("reg_reopen");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        {
            let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
            rt.add_graph("fig1", f.graph.clone()).unwrap();
            rt.register_query("fig1", "team", fig1_pattern()).unwrap();
            rt.register_query("fig1", "sim", fig1_pattern_simulation())
                .unwrap();
            rt.unregister_query("fig1", "sim").unwrap();
            rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
                .unwrap();
        } // no snapshot write: recovery must replay the query set

        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert_eq!(
            rt.registered_queries("fig1").unwrap(),
            vec!["team".to_owned()],
            "register and unregister records both replayed"
        );
        // the recovered maintainer saw the post-registration update
        let maintained = rt.registered_result("fig1", "team").unwrap();
        let fresh = rt
            .query("fig1", &fig1_pattern(), None, Route::Direct)
            .unwrap();
        assert_eq!(*fresh.matches, maintained);
        // a duplicate registration is still rejected after recovery
        assert!(matches!(
            rt.register_query("fig1", "team", fig1_pattern()),
            Err(ExpFinderError::DuplicateQuery(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registrations_survive_compaction() {
        let dir = tmpdir("reg_compact");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        {
            let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
            rt.add_graph("fig1", f.graph.clone()).unwrap();
            rt.register_query("fig1", "team", fig1_pattern()).unwrap();
            rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
                .unwrap();
            // compaction truncates the log; the register record must be
            // re-seeded or the query would vanish on the next cold start
            rt.compact("fig1").unwrap();
        }
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert_eq!(
            rt.registered_queries("fig1").unwrap(),
            vec!["team".to_owned()]
        );
        let maintained = rt.registered_result("fig1", "team").unwrap();
        let fresh = rt
            .query("fig1", &fig1_pattern(), None, Route::Direct)
            .unwrap();
        assert_eq!(*fresh.matches, maintained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_hook_fires_in_commit_order() {
        let dir = tmpdir("hook");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        rt.register_query("fig1", "team", fig1_pattern()).unwrap();
        let seen: Arc<Mutex<Vec<(String, u64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        rt.set_update_hook(Some(Arc::new(move |graph: &str, report: &UpdateReport| {
            let delta = report.registered.iter().map(|d| d.delta()).sum();
            sink.lock()
                .push((graph.to_owned(), report.graph_version, delta));
        })));

        // the untraced entry point still produces fully-traced frames
        rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
            .unwrap();
        rt.apply_updates("fig1", &[EdgeUpdate::Delete(x, y)])
            .unwrap();
        let frames = seen.lock().clone();
        assert_eq!(frames.len(), 2);
        assert!(frames[0].1 < frames[1].1, "commit order");
        assert_eq!(frames[0].2, 1);
        assert_eq!(frames[1].2, -1);

        rt.set_update_hook(None);
        rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
            .unwrap();
        assert_eq!(seen.lock().len(), 2, "removed hook no longer fires");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_and_duplicate_graphs_error() {
        let dir = tmpdir("errors");
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert!(matches!(
            rt.query("nope", &fig1_pattern(), None, Route::Auto),
            Err(ExpFinderError::UnknownGraph(_))
        ));
        let f = collaboration_fig1();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        assert!(matches!(
            rt.add_graph("fig1", f.graph.clone()),
            Err(ExpFinderError::DuplicateGraph(_))
        ));
        assert!(matches!(
            rt.add_graph("../escape", f.graph.clone()),
            Err(ExpFinderError::InvalidGraphName(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_graph_deletes_files_and_frees_name() {
        let dir = tmpdir("remove");
        let f = collaboration_fig1();
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        rt.apply_updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        rt.remove_graph("fig1").unwrap();
        assert!(!dir.join("fig1.efg").exists());
        assert!(!dir.join("fig1.wal").exists());
        assert!(rt.graph_names().is_empty());
        // the name is reusable, and the fresh graph has no replayed tail
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        let edges = rt.read_graph("fig1", |g| g.edge_count()).unwrap();
        assert_eq!(edges, f.graph.edge_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_resolves_specs_in_order() {
        let dir = tmpdir("batch");
        let f = collaboration_fig1();
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph).unwrap();
        let specs = vec![
            QuerySpec::pattern(fig1_pattern()).top_k(2),
            QuerySpec::dsl("definitely not a pattern"),
            QuerySpec::pattern(fig1_pattern_simulation()),
        ];
        let out = rt.query_batch("fig1", specs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().experts.len(), 2);
        assert!(out[1].is_err());
        let direct = rt
            .query("fig1", &fig1_pattern_simulation(), None, Route::Direct)
            .unwrap();
        assert_eq!(*out[2].as_ref().unwrap().matches, *direct.matches);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_and_wal_metrics_accumulate() {
        let dir = tmpdir("metrics");
        let f = collaboration_fig1();
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        rt.apply_updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let wal = rt.wal_totals();
        assert_eq!(wal.appends, 1);
        assert!(wal.bytes > 0);
        assert_eq!(wal.fsyncs, 0, "FsyncPolicy::Never");
        let stats = rt.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.graphs).sum::<usize>(), 1);
        assert!(stats.iter().map(|s| s.commands).sum::<u64>() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_durable_response_carries_a_plan() {
        let dir = tmpdir("plan");
        let f = collaboration_fig1();
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph).unwrap();

        let first = rt
            .query("fig1", &fig1_pattern(), None, Route::Auto)
            .unwrap();
        assert_eq!(first.plan.chosen, PlanRoute::Live, "cold first read");
        assert!(
            first.plan.candidates.len() >= 2,
            "planned decisions expose the costed candidates"
        );
        assert!(!first.plan.overridden);

        let cached = rt
            .query("fig1", &fig1_pattern(), None, Route::Auto)
            .unwrap();
        assert_eq!(cached.plan.chosen, PlanRoute::Cache);
        assert!(
            cached.plan.candidates.is_empty(),
            "exact routes cost nothing"
        );

        let forced = rt
            .query("fig1", &fig1_pattern(), None, Route::Direct)
            .unwrap();
        assert!(forced.plan.overridden, "preference is recorded, not hidden");

        let totals = rt.planner_totals();
        assert_eq!(totals.decisions, 3);
        assert_eq!(totals.overrides, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compression_serves_identical_matches_and_survives_updates() {
        let dir = tmpdir("compress");
        let f = collaboration_fig1();
        let (x, y) = f.e1;
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        assert_eq!(rt.compression_stats("fig1").unwrap(), None);

        let stats = rt
            .compress("fig1", CompressionMethod::Bisimulation)
            .unwrap();
        assert!(stats.compressed_nodes <= stats.original_nodes);
        assert_eq!(rt.compression_stats("fig1").unwrap(), Some(stats));
        let infos = rt.graph_infos();
        assert!(infos.iter().any(|i| i.name == "fig1" && i.compressed));

        // a forced compressed route answers exactly like a direct one
        let via_quotient = rt
            .query("fig1", &fig1_pattern(), None, Route::Compressed)
            .unwrap();
        assert_eq!(via_quotient.route, EvalRoute::Compressed);
        assert_eq!(via_quotient.plan.chosen, PlanRoute::Compressed);
        let direct = rt
            .query("fig1", &fig1_pattern(), None, Route::Direct)
            .unwrap();
        assert_eq!(*via_quotient.matches, *direct.matches);

        // the quotient is maintained through updates on the shard
        rt.apply_updates("fig1", &[EdgeUpdate::Insert(x, y)])
            .unwrap();
        let after_q = rt
            .query("fig1", &fig1_pattern(), None, Route::Compressed)
            .unwrap();
        let after_d = rt
            .query("fig1", &fig1_pattern(), None, Route::Direct)
            .unwrap();
        assert_eq!(*after_q.matches, *after_d.matches);

        rt.drop_compression("fig1").unwrap();
        assert_eq!(rt.compression_stats("fig1").unwrap(), None);
        let dropped = rt
            .query("fig1", &fig1_pattern(), None, Route::Compressed)
            .unwrap();
        assert_ne!(
            dropped.route,
            EvalRoute::Compressed,
            "no quotient to route to"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compression_is_session_state_not_replayed() {
        let dir = tmpdir("compress_reopen");
        let f = collaboration_fig1();
        {
            let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
            rt.add_graph("fig1", f.graph.clone()).unwrap();
            rt.compress("fig1", CompressionMethod::Bisimulation)
                .unwrap();
            assert!(rt.compression_stats("fig1").unwrap().is_some());
        }
        let rt = DurableExpFinder::open(&dir, sequential_config()).unwrap();
        assert_eq!(
            rt.compression_stats("fig1").unwrap(),
            None,
            "quotients are not WAL-logged; a restart comes back uncompressed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
