//! Shard workers: the mutation half of the runtime.
//!
//! Graph names are consistently hashed onto `N` shard workers. Each
//! worker is an actor — a plain thread draining a **bounded** mailbox of
//! commands — that *owns* the authoritative [`DiGraph`], the WAL handle
//! and the registered-query maintainers of every graph on its shard.
//! Ownership is the whole concurrency story on the write side: a batch
//! has exclusive access to its graph for free (nobody else can touch
//! actor state), and no lock is ever held across evaluation because
//! readers run on *published* immutable snapshots instead (see
//! [`crate::Snapshot`]).
//!
//! Backpressure is the mailbox bound: when a shard falls behind,
//! senders block in [`ShardHandle::send`] rather than queueing
//! unboundedly. The current depth of every mailbox is exported through
//! `/metrics` (`engine.shard`), so a hot shard is visible before it is
//! a problem.

use crate::faults::{FaultInjector, IoOp};
use crate::wal::{Wal, WalOp};
use crate::{PublishedGraph, RegisteredView, Snapshot, WalCounters};
use expfinder_compress::maintain::MaintainedCompression;
use expfinder_compress::{CompressStats, CompressionMethod};
use expfinder_engine::{ExpFinderError, RegisteredDelta, UpdateHook, UpdateReport};
use expfinder_graph::{io as gio, DiGraph, EdgeUpdate, ReachIndex};
use expfinder_incremental::{IncrementalBoundedSim, IncrementalSim, Maintainer};
use expfinder_pattern::{parser, Pattern};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Point-in-time load summary of one shard worker (`engine.shard` in
/// `/metrics`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Commands currently waiting in the mailbox.
    pub depth: usize,
    /// Graphs owned by this shard.
    pub graphs: usize,
    /// Commands processed since startup.
    pub commands: u64,
}

/// Reply channel of one command. Rendezvous-sized: the worker's send
/// never blocks because every request holds a receiver slot.
pub(crate) type Reply<T> = SyncSender<Result<T, ExpFinderError>>;

/// The command alphabet of a shard mailbox. Reads are *not* here — they
/// run on published snapshots without involving the actor.
pub(crate) enum Cmd {
    /// Take ownership of a fully-constructed graph actor (initial add
    /// and cold-start adoption; the facade did the durable IO already).
    Adopt {
        // boxed: an actor (graph + WAL + maintained state) dwarfs every
        // other command, and `Cmd` travels by value through the ring
        actor: Box<GraphActor>,
        reply: Reply<u64>,
    },
    /// WAL-append, then apply an update batch and republish.
    Apply {
        name: String,
        updates: Vec<EdgeUpdate>,
        trace: bool,
        reply: Reply<UpdateReport>,
    },
    /// Register a query for incremental maintenance.
    Register {
        name: String,
        query_name: String,
        pattern: Pattern,
        reply: Reply<()>,
    },
    /// Drop a registered query.
    Unregister {
        name: String,
        query_name: String,
        reply: Reply<()>,
    },
    /// Rewrite `<name>.efg` from the current in-memory graph, leaving
    /// the WAL alone (replay onto the newer snapshot converges — edge
    /// updates are last-writer-wins per edge).
    Snapshot { name: String, reply: Reply<PathBuf> },
    /// Snapshot, then truncate the WAL back to an empty header.
    Compact {
        name: String,
        reply: Reply<CompactReport>,
    },
    /// Build (or rebuild) the maintained compressed quotient and
    /// publish it with the next snapshot. Session state, not WAL-logged
    /// — a restart comes back uncompressed.
    Compress {
        name: String,
        method: CompressionMethod,
        reply: Reply<CompressStats>,
    },
    /// Drop the maintained quotient and republish without it.
    DropCompression { name: String, reply: Reply<()> },
    /// Drop the graph and delete its `.efg` and `.wal` files.
    Remove { name: String, reply: Reply<()> },
}

/// What `Cmd::Compact` reports back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// The rewritten snapshot file.
    pub snapshot: PathBuf,
    /// WAL bytes dropped by the truncation (frames only, header stays).
    pub wal_bytes_dropped: u64,
}

/// A registered query riding on an actor: the pattern, its DSL source
/// (what the WAL record carries — see [`WalOp::Register`]) and its
/// incremental maintainer (mirrors the engine's routing contract).
struct RegisteredQuery {
    pattern: Pattern,
    source: String,
    maintainer: Box<dyn Maintainer + Send + Sync>,
}

/// Build the incremental maintainer of one pattern, seeded from the
/// current graph — the same routing rule the engine uses.
fn build_maintainer(
    graph: &DiGraph,
    pattern: &Pattern,
) -> Result<Box<dyn Maintainer + Send + Sync>, ExpFinderError> {
    Ok(if pattern.is_simulation() {
        Box::new(IncrementalSim::new(graph, pattern)?)
    } else {
        Box::new(IncrementalBoundedSim::new(graph, pattern))
    })
}

/// One graph's actor state: the authoritative mutable graph, its WAL
/// and its registered queries. Constructed by the facade (which does
/// the durable add/recover IO) and handed to the owning shard via
/// [`Cmd::Adopt`].
pub(crate) struct GraphActor {
    pub name: String,
    /// Catalog directory holding `<name>.efg` / `<name>.wal`.
    pub dir: PathBuf,
    pub graph: DiGraph,
    pub wal: Wal,
    pub published: Arc<PublishedGraph>,
    registered: HashMap<String, RegisteredQuery>,
    /// The maintained compressed quotient, when [`Cmd::Compress`] built
    /// one. Published as an immutable clone with every snapshot (like
    /// the reach index), maintained through update batches here.
    /// Deliberately *not* WAL-logged: compression is derived serving
    /// state, rebuildable on demand — a restart comes back uncompressed.
    compressed: Option<MaintainedCompression>,
    /// The runtime's fault-injection gate; every snapshot write, fsync
    /// and rename routes through it (the WAL carries its own clone).
    faults: Arc<FaultInjector>,
}

/// Recompress when maintenance drift exceeds this factor — the same
/// default the engine's `EngineConfig::recompress_drift` uses.
const RECOMPRESS_DRIFT: f64 = 2.0;

impl GraphActor {
    pub fn new(
        name: String,
        dir: PathBuf,
        graph: DiGraph,
        wal: Wal,
        published: Arc<PublishedGraph>,
        faults: Arc<FaultInjector>,
    ) -> GraphActor {
        GraphActor {
            name,
            dir,
            graph,
            wal,
            published,
            registered: HashMap::new(),
            compressed: None,
            faults,
        }
    }

    fn efg_path(&self) -> PathBuf {
        self.dir.join(format!("{}.efg", self.name))
    }

    /// Replay one recovered WAL record onto the actor's in-memory state:
    /// no WAL append, no publish (recovery publishes once at the end).
    /// Records replay in sequence order, so a registration's maintainer
    /// is seeded from the graph exactly as it stood when the query was
    /// registered, then maintained by the update frames that follow it.
    pub(crate) fn replay_op(&mut self, op: &WalOp) -> Result<(), ExpFinderError> {
        match op {
            WalOp::Updates(ups) => {
                for &up in ups {
                    if self.graph.apply(up) {
                        for rq in self.registered.values_mut() {
                            rq.maintainer.on_update(&self.graph, up);
                        }
                    }
                }
            }
            WalOp::Register { query, pattern } => {
                let parsed = parser::parse(pattern).map_err(|e| {
                    ExpFinderError::Storage(format!(
                        "wal register record for {query:?} has an unparseable pattern: {e}"
                    ))
                })?;
                let maintainer = build_maintainer(&self.graph, &parsed)?;
                self.registered.insert(
                    query.clone(),
                    RegisteredQuery {
                        pattern: parsed,
                        source: pattern.clone(),
                        maintainer,
                    },
                );
            }
            WalOp::Unregister { query } => {
                self.registered.remove(query);
            }
        }
        Ok(())
    }

    /// Swap a fresh immutable snapshot into the published slot. The
    /// write lock covers one `Arc` store, so a racing reader is delayed
    /// by a pointer swap, never by evaluation or IO (copy-on-publish:
    /// the actor pays a graph clone here so readers pay nothing).
    pub(crate) fn publish(&self) {
        let version = self.graph.version();
        let registered = self
            .registered
            .iter()
            .map(|(n, rq)| RegisteredView {
                name: n.clone(),
                fingerprint: rq.pattern.fingerprint(),
                matches: Arc::new(rq.maintainer.current()),
            })
            .collect();
        let snap = Arc::new(Snapshot {
            graph: Arc::new(self.graph.clone()),
            version,
            csr: OnceLock::new(),
            reach: Arc::new(ReachIndex::new(version)),
            // copy-on-publish, like the graph: readers keep evaluating
            // on their snapshot's quotient while the actor maintains its
            // own — the fresh reach_c drops any memo the old quotient
            // accumulated (the quotient can change without a version
            // bump, so version-keyed invalidation alone is not enough)
            compressed: self
                .compressed
                .as_ref()
                .map(|mc| Arc::new(mc.compressed().clone())),
            reach_c: Arc::new(ReachIndex::new(version)),
            registered,
        });
        *self.published.state.write() = snap;
    }

    /// Build (or rebuild) the maintained quotient and republish so the
    /// read path can route compression-safe queries through it.
    fn compress(&mut self, method: CompressionMethod) -> Result<CompressStats, ExpFinderError> {
        let mc = MaintainedCompression::new(&self.graph, method)?;
        let stats = mc.compressed().stats();
        self.compressed = Some(mc);
        self.publish();
        Ok(stats)
    }

    /// Drop the maintained quotient and republish without it.
    fn drop_compression(&mut self) {
        self.compressed = None;
        self.publish();
    }

    /// The write path: append the batch to the WAL (fsync per policy)
    /// *before* touching the graph, then apply, maintain registered
    /// queries, republish, and fire the update hook. The hook runs on
    /// the actor thread after the snapshot swap, so subscribers observe
    /// frames in commit order and a frame's `graph_version` is already
    /// readable when it arrives.
    fn apply(
        &mut self,
        updates: &[EdgeUpdate],
        trace: bool,
        wal_counters: &WalCounters,
        hook: &RwLock<Option<UpdateHook>>,
    ) -> Result<UpdateReport, ExpFinderError> {
        // an installed hook forces tracing so its frames always carry ΔM
        let hook = hook.read().clone();
        let trace = trace || hook.is_some();
        let (_, frame_bytes) = self
            .wal
            .append(updates)
            .map_err(|e| ExpFinderError::Storage(format!("wal append: {e}")))?;
        wal_counters.on_append(frame_bytes as u64, self.wal.fsyncs_per_append());

        let mut registered: Vec<RegisteredDelta> = if trace {
            self.registered
                .iter()
                .map(|(name, rq)| RegisteredDelta {
                    query: name.clone(),
                    before_pairs: rq.maintainer.current().total_pairs(),
                    after_pairs: 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut applied = 0usize;
        for &up in updates {
            if !self.graph.apply(up) {
                continue;
            }
            applied += 1;
            if let Some(mc) = self.compressed.as_mut() {
                mc.on_update(&self.graph, up);
            }
            for rq in self.registered.values_mut() {
                rq.maintainer.on_update(&self.graph, up);
            }
        }
        if let Some(mc) = self.compressed.as_mut() {
            mc.refresh(&self.graph);
            mc.maybe_recompress(&self.graph, RECOMPRESS_DRIFT)?;
        }
        if applied > 0 {
            self.published.profile.note_update_batch();
        }
        for d in &mut registered {
            d.after_pairs = self.registered[&d.query].maintainer.current().total_pairs();
        }
        registered.sort_by(|a, b| a.query.cmp(&b.query));
        self.publish();
        let report = UpdateReport {
            applied,
            attempted: updates.len(),
            graph_version: self.graph.version(),
            registered,
        };
        if let Some(hook) = &hook {
            hook(&self.name, &report);
        }
        Ok(report)
    }

    /// Register a query: WAL-append the registration record (fsynced per
    /// policy) *before* building the maintainer, so a crash right after
    /// the ack still replays the registration. The DSL source written to
    /// the log is the pattern's `Display` form, verified to re-parse to
    /// the same fingerprint before anything is committed.
    fn register(
        &mut self,
        query_name: &str,
        pattern: Pattern,
        wal_counters: &WalCounters,
    ) -> Result<(), ExpFinderError> {
        if self.registered.contains_key(query_name) {
            return Err(ExpFinderError::DuplicateQuery(query_name.to_owned()));
        }
        let source = pattern.to_string();
        let reparsed = parser::parse(&source)
            .map_err(|e| ExpFinderError::Storage(format!("pattern does not round-trip: {e}")))?;
        if reparsed.fingerprint() != pattern.fingerprint() {
            return Err(ExpFinderError::Storage(
                "pattern does not round-trip through its DSL form".to_owned(),
            ));
        }
        let maintainer = build_maintainer(&self.graph, &pattern)?;
        let (_, frame_bytes) = self
            .wal
            .append_op(&WalOp::Register {
                query: query_name.to_owned(),
                pattern: source.clone(),
            })
            .map_err(|e| ExpFinderError::Storage(format!("wal append: {e}")))?;
        wal_counters.on_append(frame_bytes as u64, self.wal.fsyncs_per_append());
        self.registered.insert(
            query_name.to_owned(),
            RegisteredQuery {
                pattern,
                source,
                maintainer,
            },
        );
        self.publish();
        Ok(())
    }

    fn unregister(
        &mut self,
        query_name: &str,
        wal_counters: &WalCounters,
    ) -> Result<(), ExpFinderError> {
        if !self.registered.contains_key(query_name) {
            return Err(ExpFinderError::UnknownQuery(query_name.to_owned()));
        }
        let (_, frame_bytes) = self
            .wal
            .append_op(&WalOp::Unregister {
                query: query_name.to_owned(),
            })
            .map_err(|e| ExpFinderError::Storage(format!("wal append: {e}")))?;
        wal_counters.on_append(frame_bytes as u64, self.wal.fsyncs_per_append());
        self.registered.remove(query_name);
        self.publish();
        Ok(())
    }

    /// Write `<name>.efg` atomically (tmp + fsync + rename + dir fsync),
    /// so a crash mid-write — or right after the rename — leaves either
    /// the previous snapshot or the complete new one, never a torn or
    /// empty file, and the WAL stays replayable onto whichever survives.
    fn save_snapshot(&self) -> Result<PathBuf, ExpFinderError> {
        let path = self.efg_path();
        write_efg_atomic(&self.graph, &path, &self.faults)?;
        Ok(path)
    }

    fn compact(&mut self, wal_counters: &WalCounters) -> Result<CompactReport, ExpFinderError> {
        let snapshot = self.save_snapshot()?;
        // snapshot is durable; now the log frames are redundant. Crash
        // between the snapshot rename and the log swap replays the full
        // WAL onto the new snapshot, which converges to the same graph.
        let wal_bytes_dropped = self
            .wal
            .frame_bytes()
            .map_err(|e| ExpFinderError::Storage(format!("wal size: {e}")))?;
        // the snapshot holds the graph but not the query set: swap in a
        // fresh log seeded with one register record per live query. The
        // swap is atomic (tmp + rename), so no crash point between the
        // old log and the new one can lose a live registration.
        let mut names: Vec<&String> = self.registered.keys().collect();
        names.sort();
        let seeds: Vec<WalOp> = names
            .into_iter()
            .map(|name| WalOp::Register {
                query: name.clone(),
                pattern: self.registered[name].source.clone(),
            })
            .collect();
        let sizes = self
            .wal
            .reset_seeded(&seeds)
            .map_err(|e| ExpFinderError::Storage(format!("wal swap: {e}")))?;
        for frame_bytes in sizes {
            // the swap fsyncs once for the whole batch, not per frame
            wal_counters.on_append(frame_bytes as u64, 0);
        }
        Ok(CompactReport {
            snapshot,
            wal_bytes_dropped,
        })
    }
}

/// Save a graph to `path` via a sibling `.tmp` file and an atomic
/// rename, fsyncing the tmp file *before* the rename and the parent
/// directory *after* it — without the first, the rename can become
/// durable ahead of the bytes it names (publishing an empty snapshot
/// after a power cut); without the second, the rename itself may not
/// survive one. Shared by the actor's snapshot/compact path and the
/// facade's initial `add_graph` write.
pub(crate) fn write_efg_atomic(
    g: &DiGraph,
    path: &Path,
    faults: &FaultInjector,
) -> Result<(), ExpFinderError> {
    let tmp = path.with_extension("efg.tmp");
    faults.check(IoOp::Write)?;
    gio::save_text(g, &tmp)?;
    let f = File::open(&tmp)?;
    faults.sync_all(&f)?;
    drop(f);
    faults.rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = File::open(parent)?;
        faults.sync_all(&dir)?;
    }
    Ok(())
}

/// Sender side of one shard: the bounded mailbox plus its gauges. The
/// facade holds one per shard; dropping the last handle closes the
/// mailbox and the worker thread exits after draining it.
pub(crate) struct ShardHandle {
    tx: SyncSender<Cmd>,
    depth: Arc<AtomicUsize>,
    commands: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Spawn shard worker `index` with a mailbox of `capacity` slots.
    pub fn spawn(
        index: usize,
        capacity: usize,
        wal_counters: Arc<WalCounters>,
        hook: Arc<RwLock<Option<UpdateHook>>>,
    ) -> ShardHandle {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let commands = Arc::new(AtomicU64::new(0));
        let worker_depth = Arc::clone(&depth);
        let worker_commands = Arc::clone(&commands);
        let join = std::thread::Builder::new()
            .name(format!("efshard-{index}"))
            .spawn(move || run_worker(rx, worker_depth, worker_commands, wal_counters, hook))
            .expect("spawn shard worker");
        ShardHandle {
            tx,
            depth,
            commands,
            join: Some(join),
        }
    }

    /// Enqueue a command, blocking while the mailbox is full (the
    /// backpressure point of the write path).
    pub fn send(&self, cmd: Cmd) -> Result<(), ExpFinderError> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx.send(cmd).map_err(|_| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            ExpFinderError::Storage("shard worker terminated".to_owned())
        })
    }

    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn commands(&self) -> u64 {
        self.commands.load(Ordering::Relaxed)
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // close the mailbox, then wait for the worker to drain it — a
        // clean shutdown finishes in-flight WAL appends before exit
        drop(std::mem::replace(&mut self.tx, mpsc::sync_channel(1).0));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The actor loop: pop one command, dispatch against owned state, reply.
fn run_worker(
    rx: Receiver<Cmd>,
    depth: Arc<AtomicUsize>,
    commands: Arc<AtomicU64>,
    wal_counters: Arc<WalCounters>,
    hook: Arc<RwLock<Option<UpdateHook>>>,
) {
    let mut graphs: HashMap<String, GraphActor> = HashMap::new();
    while let Ok(cmd) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        commands.fetch_add(1, Ordering::Relaxed);
        // replies are best-effort: a caller that gave up (dropped its
        // receiver) does not take the worker down with it
        match cmd {
            Cmd::Adopt { actor, reply } => {
                // the facade published the initial snapshot when it
                // built the PublishedGraph — nothing to publish here
                let version = actor.graph.version();
                graphs.insert(actor.name.clone(), *actor);
                let _ = reply.send(Ok(version));
            }
            Cmd::Apply {
                name,
                updates,
                trace,
                reply,
            } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => actor.apply(&updates, trace, &wal_counters, &hook),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Register {
                name,
                query_name,
                pattern,
                reply,
            } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => actor.register(&query_name, pattern, &wal_counters),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Unregister {
                name,
                query_name,
                reply,
            } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => actor.unregister(&query_name, &wal_counters),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Snapshot { name, reply } => {
                let result = match graphs.get(&name) {
                    Some(actor) => actor.save_snapshot(),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Compact { name, reply } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => actor.compact(&wal_counters),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Compress {
                name,
                method,
                reply,
            } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => actor.compress(method),
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::DropCompression { name, reply } => {
                let result = match graphs.get_mut(&name) {
                    Some(actor) => {
                        actor.drop_compression();
                        Ok(())
                    }
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
            Cmd::Remove { name, reply } => {
                let result = match graphs.remove(&name) {
                    Some(actor) => {
                        let wal_path = actor.wal.path().to_path_buf();
                        let efg = actor.efg_path();
                        drop(actor); // close the WAL file first
                                     // snapshot before log: a crash in between
                                     // leaves an orphan .wal, which open() ignores —
                                     // the reverse order would resurrect the graph
                        let _ = std::fs::remove_file(efg);
                        let _ = std::fs::remove_file(wal_path);
                        Ok(())
                    }
                    None => Err(ExpFinderError::UnknownGraph(name)),
                };
                let _ = reply.send(result);
            }
        }
    }
}

/// The consistent-hash ring mapping graph names onto shards. Each shard
/// contributes [`RING_POINTS_PER_SHARD`] virtual points so load spreads
/// even with few shards, and growing the shard count moves only the
/// names whose arc changed hands (the property that makes future
/// rebalancing cheap; today the count is fixed at startup).
pub(crate) struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
}

const RING_POINTS_PER_SHARD: usize = 64;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer: FNV alone clusters similar short keys on
    // nearby ring points, starving whole shards
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Ring {
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * RING_POINTS_PER_SHARD);
        for s in 0..shards {
            for r in 0..RING_POINTS_PER_SHARD {
                points.push((fnv64(format!("shard-{s}:{r}").as_bytes()), s));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(p, _)| *p);
        Ring { points }
    }

    /// The shard owning `name`: the first ring point at or after the
    /// name's hash, wrapping at the top.
    pub fn shard_for(&self, name: &str) -> usize {
        let h = fnv64(name.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = Ring::new(4);
        for name in ["alpha", "beta", "collab", "fig1", "x"] {
            let s = ring.shard_for(name);
            assert!(s < 4);
            assert_eq!(s, ring.shard_for(name), "stable per name");
        }
    }

    #[test]
    fn ring_spreads_names() {
        let ring = Ring::new(4);
        let mut seen = [0usize; 4];
        for i in 0..256 {
            seen[ring.shard_for(&format!("graph-{i}"))] += 1;
        }
        // consistent hashing is not perfectly uniform, but with 64
        // virtual points per shard every shard must own something
        assert!(seen.iter().all(|&c| c > 0), "distribution: {seen:?}");
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1);
        assert_eq!(ring.shard_for("anything"), 0);
    }
}
