//! Deterministic I/O fault injection for the durable runtime.
//!
//! Every durability-critical I/O site in the WAL ([`crate::wal`]) and the
//! snapshot writer (`shard::write_efg_atomic`) routes through a shared
//! [`FaultInjector`]. Disarmed — the production state — each hook is one
//! relaxed atomic load in front of the real syscall. Armed with a
//! [`FaultPlan`], the injector counts I/O boundaries deterministically
//! and fails the chosen ones:
//!
//! - fail the Nth write / fsync / rename with an injected ENOSPC or EIO,
//! - perform a *partial* write (a chosen number of bytes reach the file,
//!   then the error surfaces — a torn frame at byte granularity),
//! - simulate a crash at any boundary ([`FaultKind::Crash`]): the error
//!   carries a [`SimulatedCrash`] marker, and the storage layer treats it
//!   like a power cut — no self-healing runs, the torn bytes stay on
//!   disk for *recovery* to deal with, exactly as after a real crash.
//!
//! Boundaries are counted per plan arming, so a scripted op sequence
//! crosses the same numbered boundaries on every run — the property the
//! `chaos_smoke` torture harness builds on: run the script once armed
//! with an empty plan to count boundaries, then crash at each one.

use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The classes of I/O boundary the injector can interpose on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// A file write (WAL frame, header, or snapshot body).
    Write,
    /// An `fsync`/`fdatasync` (WAL flush, tmp-file or directory sync).
    Fsync,
    /// An atomic rename (snapshot or log swap publish step).
    Rename,
}

/// How an injected fault fails.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`-shaped error: the disk filled up mid-operation.
    Enospc,
    /// `EIO`-shaped error: the device failed the operation.
    Eio,
    /// A simulated crash: the process "died" at this boundary. The
    /// storage layer must not run its error-recovery paths (a real
    /// crash would not), only restart-time recovery may repair.
    Crash,
}

/// One planned fault: fire on the `nth` matching boundary after arming.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The boundary class this fault matches; `None` matches *every*
    /// boundary (so `nth` indexes the global boundary sequence).
    pub op: Option<IoOp>,
    /// 0-based index of the matching boundary that fails.
    pub nth: u64,
    /// For write boundaries: bytes actually written before the failure
    /// (a torn frame). Ignored by fsync/rename boundaries.
    pub partial: Option<usize>,
    /// The failure shape.
    pub kind: FaultKind,
}

/// A set of faults to arm at once. Build with the chainable
/// constructors, then [`FaultInjector::arm`] it.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The planned faults; each fires at most once (its boundary index
    /// is crossed at most once per arming).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan — useful armed as a pure boundary counter.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail the `nth` boundary of class `op` with `kind`.
    pub fn fail_nth(mut self, op: IoOp, nth: u64, kind: FaultKind) -> FaultPlan {
        self.faults.push(Fault {
            op: Some(op),
            nth,
            partial: None,
            kind,
        });
        self
    }

    /// Fail the `nth` write after `bytes` bytes reached the file.
    pub fn partial_write(mut self, nth: u64, bytes: usize, kind: FaultKind) -> FaultPlan {
        self.faults.push(Fault {
            op: Some(IoOp::Write),
            nth,
            partial: Some(bytes),
            kind,
        });
        self
    }

    /// Simulate a crash at global boundary `nth` (any op class).
    pub fn crash_at(mut self, nth: u64) -> FaultPlan {
        self.faults.push(Fault {
            op: None,
            nth,
            partial: None,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Simulate a crash at global boundary `nth`, leaving `bytes` torn
    /// bytes behind when that boundary is a write.
    pub fn crash_at_partial(mut self, nth: u64, bytes: usize) -> FaultPlan {
        self.faults.push(Fault {
            op: None,
            nth,
            partial: Some(bytes),
            kind: FaultKind::Crash,
        });
        self
    }
}

/// The marker payload inside a [`FaultKind::Crash`] error.
#[derive(Debug)]
pub struct SimulatedCrash;

/// The substring every simulated-crash error message carries, for
/// layers that only see stringified errors (e.g. `ExpFinderError::Storage`).
pub const CRASH_MARKER: &str = "simulated crash";

impl std::fmt::Display for SimulatedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{CRASH_MARKER} at injected I/O boundary")
    }
}

impl std::error::Error for SimulatedCrash {}

/// True when `e` is an injected crash (the storage layer must behave as
/// if the process died: skip self-healing, leave torn bytes on disk).
pub fn is_simulated_crash(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<SimulatedCrash>())
}

/// Cumulative fault-injection activity — the `engine.faults` block of
/// `GET /metrics`. Boundary counters only advance while a plan is
/// armed, so a production server exports all zeros.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Faults fired since the injector was created.
    pub injected: u64,
    /// Write boundaries crossed while armed.
    pub writes: u64,
    /// Fsync boundaries crossed while armed.
    pub fsyncs: u64,
    /// Rename boundaries crossed while armed.
    pub renames: u64,
}

#[derive(Debug, Default)]
struct PlanState {
    faults: Vec<Fault>,
    writes: u64,
    fsyncs: u64,
    renames: u64,
    total: u64,
    log: Vec<IoOp>,
}

/// The armable fault-injection gate shared by every durability-critical
/// I/O site of one runtime. Disarmed hooks cost one relaxed atomic load.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: AtomicBool,
    injected: AtomicU64,
    state: Mutex<PlanState>,
}

impl FaultInjector {
    /// A fresh, disarmed injector behind an `Arc` (the shape every
    /// consumer holds).
    pub fn disarmed() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// Arm `plan`, resetting the boundary counters to zero so its
    /// indices are relative to this call.
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        st.faults = plan.faults;
        st.writes = 0;
        st.fsyncs = 0;
        st.renames = 0;
        st.total = 0;
        st.log.clear();
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarm: hooks return to pass-through. Boundary counters and the
    /// op log keep their values for post-run inspection.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
        self.state.lock().faults.clear();
    }

    /// Whether a plan is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Boundaries crossed since the last [`FaultInjector::arm`].
    pub fn boundaries(&self) -> u64 {
        self.state.lock().total
    }

    /// The class of every boundary crossed since the last arm, in
    /// order — lets a harness target, say, exactly the write boundaries.
    pub fn op_log(&self) -> Vec<IoOp> {
        self.state.lock().log.clone()
    }

    /// Cumulative totals (the `engine.faults` metrics block).
    pub fn totals(&self) -> FaultTotals {
        let st = self.state.lock();
        FaultTotals {
            injected: self.injected.load(Ordering::Relaxed),
            writes: st.writes,
            fsyncs: st.fsyncs,
            renames: st.renames,
        }
    }

    /// Count one boundary of class `op`; the fault to fire, if planned.
    fn fire(&self, op: IoOp) -> Option<Fault> {
        let mut st = self.state.lock();
        let class_idx = match op {
            IoOp::Write => {
                st.writes += 1;
                st.writes - 1
            }
            IoOp::Fsync => {
                st.fsyncs += 1;
                st.fsyncs - 1
            }
            IoOp::Rename => {
                st.renames += 1;
                st.renames - 1
            }
        };
        let total_idx = st.total;
        st.total += 1;
        st.log.push(op);
        let hit = st
            .faults
            .iter()
            .find(|f| match f.op {
                Some(class) => class == op && f.nth == class_idx,
                None => f.nth == total_idx,
            })
            .copied();
        if hit.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn error_for(kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Enospc => io::Error::other("injected fault: no space left on device"),
            FaultKind::Eio => io::Error::other("injected fault: input/output error"),
            FaultKind::Crash => io::Error::other(SimulatedCrash),
        }
    }

    /// `write_all` through the gate. A partial-write fault puts the
    /// planned byte count into the file before the error surfaces.
    pub fn write_all(&self, file: &File, buf: &[u8]) -> io::Result<()> {
        let mut f = file;
        if !self.armed.load(Ordering::Relaxed) {
            return f.write_all(buf);
        }
        match self.fire(IoOp::Write) {
            None => f.write_all(buf),
            Some(fault) => {
                if let Some(n) = fault.partial {
                    f.write_all(&buf[..n.min(buf.len())])?;
                }
                Err(Self::error_for(fault.kind))
            }
        }
    }

    /// `File::sync_data` through the gate. An injected failure means the
    /// data may or may not be durable — exactly the ambiguity a real
    /// failed fsync leaves (the caller must not retry and trust it).
    pub fn sync_data(&self, file: &File) -> io::Result<()> {
        if !self.armed.load(Ordering::Relaxed) {
            return file.sync_data();
        }
        match self.fire(IoOp::Fsync) {
            None => file.sync_data(),
            Some(fault) => Err(Self::error_for(fault.kind)),
        }
    }

    /// `File::sync_all` through the gate (same contract as
    /// [`FaultInjector::sync_data`]).
    pub fn sync_all(&self, file: &File) -> io::Result<()> {
        if !self.armed.load(Ordering::Relaxed) {
            return file.sync_all();
        }
        match self.fire(IoOp::Fsync) {
            None => file.sync_all(),
            Some(fault) => Err(Self::error_for(fault.kind)),
        }
    }

    /// `fs::rename` through the gate; an injected fault fails *before*
    /// the rename (the target is untouched, like a full journal).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if !self.armed.load(Ordering::Relaxed) {
            return std::fs::rename(from, to);
        }
        match self.fire(IoOp::Rename) {
            None => std::fs::rename(from, to),
            Some(fault) => Err(Self::error_for(fault.kind)),
        }
    }

    /// A bare boundary for sites whose I/O happens inside a helper the
    /// injector cannot wrap (e.g. the snapshot body written through
    /// `expfinder_graph::io::save_text`): fail before the helper runs.
    pub fn check(&self, op: IoOp) -> io::Result<()> {
        if !self.armed.load(Ordering::Relaxed) {
            return Ok(());
        }
        match self.fire(op) {
            None => Ok(()),
            Some(fault) => Err(Self::error_for(fault.kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("expfinder_faults_{tag}_{}", std::process::id()))
    }

    #[test]
    fn disarmed_hooks_pass_through() {
        let p = tmp("passthrough");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::default();
        let f = File::create(&p).unwrap();
        inj.write_all(&f, b"hello").unwrap();
        inj.sync_all(&f).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        assert_eq!(inj.boundaries(), 0, "disarmed boundaries are not counted");
        assert_eq!(inj.totals(), FaultTotals::default());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn nth_write_fails_with_partial_bytes() {
        let p = tmp("partial");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::default();
        inj.arm(FaultPlan::new().partial_write(1, 2, FaultKind::Enospc));
        let f = File::create(&p).unwrap();
        inj.write_all(&f, b"aaaa").unwrap();
        let err = inj.write_all(&f, b"bbbb").unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        assert!(!is_simulated_crash(&err));
        // the planned 2 torn bytes reached the file
        let mut buf = Vec::new();
        File::open(&p).unwrap().read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"aaaabb");
        // a later write succeeds (the fault fired once)
        inj.write_all(&f, b"cc").unwrap();
        assert_eq!(inj.totals().injected, 1);
        assert_eq!(inj.totals().writes, 3);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn crash_faults_carry_the_marker() {
        let p = tmp("crash");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::default();
        inj.arm(FaultPlan::new().crash_at(1));
        let f = File::create(&p).unwrap();
        inj.write_all(&f, b"x").unwrap();
        let err = inj.sync_all(&f).unwrap_err();
        assert!(is_simulated_crash(&err));
        assert!(err.to_string().contains(CRASH_MARKER));
        assert_eq!(inj.op_log(), vec![IoOp::Write, IoOp::Fsync]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rename_fault_leaves_target_untouched() {
        let from = tmp("ren_from");
        let to = tmp("ren_to");
        std::fs::write(&from, b"new").unwrap();
        std::fs::write(&to, b"old").unwrap();
        let inj = FaultInjector::default();
        inj.arm(FaultPlan::new().fail_nth(IoOp::Rename, 0, FaultKind::Eio));
        assert!(inj.rename(&from, &to).is_err());
        assert_eq!(std::fs::read(&to).unwrap(), b"old");
        // disarmed again, the rename goes through
        inj.disarm();
        inj.rename(&from, &to).unwrap();
        assert_eq!(std::fs::read(&to).unwrap(), b"new");
        let _ = std::fs::remove_file(&to);
    }

    #[test]
    fn rearming_resets_boundary_indices() {
        let p = tmp("rearm");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::default();
        let f = File::create(&p).unwrap();
        inj.arm(FaultPlan::new().fail_nth(IoOp::Write, 1, FaultKind::Eio));
        inj.write_all(&f, b"a").unwrap();
        assert!(inj.write_all(&f, b"b").is_err());
        inj.arm(FaultPlan::new().fail_nth(IoOp::Write, 1, FaultKind::Eio));
        inj.write_all(&f, b"c").unwrap();
        assert!(inj.write_all(&f, b"d").is_err(), "indices restart at 0");
        assert_eq!(inj.totals().injected, 2);
        let _ = std::fs::remove_file(&p);
    }
}
