//! The per-graph write-ahead log.
//!
//! One `<name>.wal` file per graph, append-only, replayed onto the last
//! `<name>.efg` snapshot on cold start. The file is a fixed header
//! followed by length-prefixed, checksummed frames:
//!
//! ```text
//! "EFWAL1\n"                                  file header (7 bytes)
//! [len: u32 LE][crc: u32 LE][payload: len]    frame, repeated
//! ```
//!
//! `crc` is FNV-1a over the payload bytes; `payload` is a compact JSON
//! document. An update frame is `{"seq": N, "updates": [{"op","from",
//! "to"}, ...]}` using the canonical update codec of
//! `expfinder_graph::io` — the same encoding the HTTP wire protocol
//! speaks, so a WAL frame is a replayable `/updates` request body plus a
//! sequence number. Since the log is *event-sourced serving state*, not
//! just graph history, registered-query changes are records too:
//!
//! ```text
//! {"seq": N, "op": "register", "query": "team", "pattern": "<dsl>"}
//! {"seq": N, "op": "unregister", "query": "team"}
//! ```
//!
//! The `"op"` field is absent on update frames, so logs written before
//! registration records existed replay unchanged.
//!
//! **Durability contract.** A batch is appended (and, under
//! [`FsyncPolicy::Always`], fsynced) *before* it is applied to the owning
//! actor's graph — write-ahead in the literal sense. Replay therefore
//! sees every acknowledged batch; an unacknowledged batch can at worst
//! leave a *torn tail* (partial final frame from a crash mid-write),
//! which [`Wal::replay`] detects via the length/checksum envelope and
//! truncates away rather than propagating.

use expfinder_graph::json::{self, Value};
use expfinder_graph::{io as gio, EdgeUpdate};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic; the trailing newline keeps `head -c7` output readable.
pub const WAL_MAGIC: &[u8; 7] = b"EFWAL1\n";

/// Largest accepted frame payload. A length field beyond this is treated
/// as tail corruption (truncate), never as an allocation request.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// When `append` flushes to stable storage.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame (default): an acknowledged
    /// batch survives power loss, at one disk flush per batch.
    #[default]
    Always,
    /// Never fsync; rely on the OS writeback cache. Survives process
    /// crashes (the write hit the kernel) but not power loss. For tests
    /// and bulk loads.
    Never,
}

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    /// Transport-level file IO failure.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`].
    BadHeader,
    /// A fully-framed payload failed to decode — unlike a torn tail this
    /// is mid-file corruption and refuses to load (frame index, reason).
    BadFrame(usize, String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadHeader => write!(f, "wal header is not {WAL_MAGIC:?}"),
            WalError::BadFrame(i, msg) => write!(f, "wal frame {i} is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// FNV-1a over a byte slice — the frame checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries (the WAL
/// directory is trusted local state).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The event one WAL record carries. Update batches are the common
/// case; register/unregister records make the registered-query set part
/// of the replayable serving state (subscriptions survive a restart).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// An accepted edge-update batch.
    Updates(Vec<EdgeUpdate>),
    /// A query put under incremental maintenance.
    Register {
        /// The registered query's name.
        query: String,
        /// The pattern's DSL source, re-parsed at replay.
        pattern: String,
    },
    /// A registered query dropped.
    Unregister {
        /// The registered query's name.
        query: String,
    },
}

/// One decoded WAL record: a sequence number and its event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone per-graph sequence number.
    pub seq: u64,
    /// The event this record carries.
    pub op: WalOp,
}

impl WalRecord {
    /// The update batch, when this record is one (replay loops that only
    /// care about graph history can `filter_map` on this).
    pub fn as_updates(&self) -> Option<&[EdgeUpdate]> {
        match &self.op {
            WalOp::Updates(ups) => Some(ups),
            _ => None,
        }
    }

    fn to_payload(&self) -> Vec<u8> {
        let mut fields: Vec<(String, Value)> =
            vec![("seq".to_owned(), Value::Int(self.seq as i64))];
        match &self.op {
            WalOp::Updates(ups) => {
                let updates = Value::Array(ups.iter().map(|&u| gio::update_to_json(u)).collect());
                fields.push(("updates".to_owned(), updates));
            }
            WalOp::Register { query, pattern } => {
                fields.push(("op".to_owned(), Value::Str("register".to_owned())));
                fields.push(("query".to_owned(), Value::Str(query.clone())));
                fields.push(("pattern".to_owned(), Value::Str(pattern.clone())));
            }
            WalOp::Unregister { query } => {
                fields.push(("op".to_owned(), Value::Str("unregister".to_owned())));
                fields.push(("query".to_owned(), Value::Str(query.clone())));
            }
        }
        let doc = Value::Object(fields.into_iter().collect());
        doc.to_string_compact().into_bytes()
    }

    fn from_payload(bytes: &[u8]) -> Result<WalRecord, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "payload is not utf-8".to_owned())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let seq = doc
            .field("seq")
            .and_then(|s| s.as_i64())
            .map_err(|e| e.to_string())? as u64;
        // `"op"` absent → an update frame (the pre-registration format)
        let op = match doc.field("op").ok().map(|o| o.as_str()) {
            None => {
                let updates = doc
                    .field("updates")
                    .and_then(|u| u.as_array())
                    .map_err(|e| e.to_string())?
                    .iter()
                    .map(gio::update_from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| e.to_string())?;
                WalOp::Updates(updates)
            }
            Some(kind) => {
                let kind = kind.map_err(|e| e.to_string())?;
                let query = doc
                    .field("query")
                    .and_then(|q| q.as_str())
                    .map_err(|e| e.to_string())?
                    .to_owned();
                match kind {
                    "register" => WalOp::Register {
                        query,
                        pattern: doc
                            .field("pattern")
                            .and_then(|p| p.as_str())
                            .map_err(|e| e.to_string())?
                            .to_owned(),
                    },
                    "unregister" => WalOp::Unregister { query },
                    other => return Err(format!("unknown wal op {other:?}")),
                }
            }
        };
        Ok(WalRecord { seq, op })
    }
}

/// What [`Wal::replay`] found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Whole frames decoded and returned.
    pub frames: usize,
    /// Updates across those frames.
    pub updates: usize,
    /// True when a torn tail (partial or checksum-failing final frame)
    /// was detected and truncated away.
    pub truncated_tail: bool,
    /// Bytes of log read (after any truncation).
    pub bytes: u64,
}

/// An open per-graph write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    next_seq: u64,
}

impl Wal {
    /// Open (creating if missing) the log at `path` for appending.
    /// Replays nothing — call [`Wal::replay`] first on cold start; a
    /// fresh `Wal` starts its sequence after `last_seq`.
    pub fn open(
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
        last_seq: u64,
    ) -> Result<Wal, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
        }
        Ok(Wal {
            path,
            file,
            fsync,
            next_seq: last_seq + 1,
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// How many fsyncs one append performs under the current policy.
    pub fn fsyncs_per_append(&self) -> u64 {
        match self.fsync {
            FsyncPolicy::Always => 1,
            FsyncPolicy::Never => 0,
        }
    }

    /// Bytes of frames currently in the log (file length minus header).
    pub fn frame_bytes(&self) -> Result<u64, WalError> {
        Ok(self
            .file
            .metadata()?
            .len()
            .saturating_sub(WAL_MAGIC.len() as u64))
    }

    /// Append one update batch as a frame; returns `(seq, frame_bytes)`.
    /// Under [`FsyncPolicy::Always`] the frame is on stable storage when
    /// this returns — the caller may then apply the batch and ack it.
    pub fn append(&mut self, updates: &[EdgeUpdate]) -> Result<(u64, usize), WalError> {
        self.append_op(&WalOp::Updates(updates.to_vec()))
    }

    /// Append one record of any kind (update batch, register,
    /// unregister); returns `(seq, frame_bytes)` with the same
    /// durability contract as [`Wal::append`].
    pub fn append_op(&mut self, op: &WalOp) -> Result<(u64, usize), WalError> {
        let seq = self.next_seq;
        let payload = WalRecord {
            seq,
            op: op.clone(),
        }
        .to_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        self.next_seq += 1;
        Ok((seq, frame.len()))
    }

    /// Truncate the log back to an empty header (after a compaction
    /// rewrote the snapshot) and reset the sequence counter.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.next_seq = 1;
        Ok(())
    }

    /// Read every whole frame of the log at `path`, truncating a torn
    /// tail in place (partial final frame, bad length, or checksum
    /// mismatch on the *last* frame). A checksum/decode failure on a
    /// non-final frame is mid-file corruption and errors instead. A
    /// missing file replays as empty.
    pub fn replay(path: impl AsRef<Path>) -> Result<(Vec<WalRecord>, ReplaySummary), WalError> {
        let path = path.as_ref();
        let mut summary = ReplaySummary::default();
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), summary)),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        drop(file);
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadHeader);
        }

        let mut records = Vec::new();
        let mut off = WAL_MAGIC.len();
        let mut good_end = off; // offset just past the last valid frame
        loop {
            if off == bytes.len() {
                break; // clean end
            }
            if off + 8 > bytes.len() {
                summary.truncated_tail = true; // partial frame header
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
            let start = off + 8;
            let end = match (len <= MAX_FRAME_BYTES).then(|| start.checked_add(len as usize)) {
                Some(Some(end)) if end <= bytes.len() => end,
                // oversized length or payload runs past EOF: torn tail
                _ => {
                    summary.truncated_tail = true;
                    break;
                }
            };
            let payload = &bytes[start..end];
            if checksum(payload) != crc {
                if end == bytes.len() {
                    summary.truncated_tail = true; // bit-rotted final frame
                    break;
                }
                return Err(WalError::BadFrame(
                    records.len(),
                    "checksum mismatch".into(),
                ));
            }
            match WalRecord::from_payload(payload) {
                Ok(rec) => {
                    summary.updates += rec.as_updates().map_or(0, <[EdgeUpdate]>::len);
                    records.push(rec);
                }
                Err(msg) => {
                    if end == bytes.len() {
                        summary.truncated_tail = true;
                        break;
                    }
                    return Err(WalError::BadFrame(records.len(), msg));
                }
            }
            off = end;
            good_end = end;
        }
        summary.frames = records.len();
        summary.bytes = good_end as u64;
        if summary.truncated_tail {
            // drop the torn tail so the next append starts on a frame
            // boundary
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_end as u64)?;
            f.sync_all()?;
        }
        Ok((records, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::NodeId;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("expfinder_wal_{tag}_{}.wal", std::process::id()))
    }

    fn ins(a: u32, b: u32) -> EdgeUpdate {
        EdgeUpdate::Insert(NodeId(a), NodeId(b))
    }

    fn del(a: u32, b: u32) -> EdgeUpdate {
        EdgeUpdate::Delete(NodeId(a), NodeId(b))
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = tmp("roundtrip");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1), del(2, 3)]).unwrap();
        wal.append(&[]).unwrap();
        wal.append(&[ins(5, 5)]).unwrap();
        drop(wal);

        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].as_updates(), Some(&[ins(0, 1), del(2, 3)][..]));
        assert_eq!(records[1].as_updates(), Some(&[][..]));
        assert_eq!(records[2].seq, 3);
        assert!(!summary.truncated_tail);
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.updates, 3);

        // reopening continues the sequence
        let wal = Wal::open(&p, FsyncPolicy::Never, records.last().unwrap().seq).unwrap();
        assert_eq!(wal.next_seq(), 4);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let full = std::fs::read(&p).unwrap();

        // chop the file at every byte inside the final frame: replay
        // must keep frame 1 and truncate the tail
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 2);
        let frame1_end = {
            // header + frame1: recompute from the payload length field
            let len = u32::from_le_bytes(full[7..11].try_into().unwrap()) as usize;
            7 + 8 + len
        };
        for cut in frame1_end + 1..full.len() {
            std::fs::write(&p, &full[..cut]).unwrap();
            let (records, summary) = Wal::replay(&p).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert!(summary.truncated_tail, "cut at {cut}");
            // the truncation is persistent: a second replay is clean
            let (again, summary2) = Wal::replay(&p).unwrap();
            assert_eq!(again.len(), 1);
            assert!(!summary2.truncated_tail, "cut at {cut} left a dirty tail");
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn corrupt_final_frame_checksum_truncates() {
        let p = tmp("crc");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_tail);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let p = tmp("midfile");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        // flip a byte inside frame 1's payload (not the last frame)
        bytes[16] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            Wal::replay(&p),
            Err(WalError::BadFrame(0, _)) | Err(WalError::BadHeader)
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn reset_truncates_to_header_and_restarts_seq() {
        let p = tmp("reset");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Always, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.next_seq(), 1);
        wal.append(&[ins(2, 3)]).unwrap();
        drop(wal);
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].as_updates(), Some(&[ins(2, 3)][..]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn register_records_roundtrip() {
        let p = tmp("register");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        let reg = WalOp::Register {
            query: "team".to_owned(),
            pattern: "node pm; node dba; edge pm -> dba within 2;".to_owned(),
        };
        wal.append_op(&reg).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append_op(&WalOp::Unregister {
            query: "team".to_owned(),
        })
        .unwrap();
        drop(wal);

        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].op, reg);
        assert_eq!(records[0].as_updates(), None);
        assert_eq!(records[1].as_updates(), Some(&[ins(0, 1)][..]));
        assert_eq!(
            records[2].op,
            WalOp::Unregister {
                query: "team".to_owned()
            }
        );
        // only update frames count toward the update tally
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.updates, 1);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn payload_without_op_field_decodes_as_updates() {
        // the pre-registration frame format: no "op" key at all
        let legacy = br#"{"seq":7,"updates":[{"from":1,"op":"insert","to":2}]}"#;
        let rec = WalRecord::from_payload(legacy).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.as_updates(), Some(&[ins(1, 2)][..]));
    }

    #[test]
    fn unknown_op_is_a_decode_error() {
        let bad = br#"{"op":"truncate","query":"x","seq":1}"#;
        assert!(WalRecord::from_payload(bad).is_err());
    }

    #[test]
    fn missing_file_replays_empty() {
        let p = tmp("missing");
        let _ = std::fs::remove_file(&p);
        let (records, summary) = Wal::replay(&p).unwrap();
        assert!(records.is_empty());
        assert_eq!(summary, ReplaySummary::default());
    }

    #[test]
    fn oversized_length_field_is_a_torn_tail() {
        let p = tmp("oversize");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&p, &bytes).unwrap();
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_tail);
        let _ = std::fs::remove_file(&p);
    }
}
