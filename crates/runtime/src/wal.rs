//! The per-graph write-ahead log.
//!
//! One `<name>.wal` file per graph, append-only, replayed onto the last
//! `<name>.efg` snapshot on cold start. The file is a fixed header
//! followed by length-prefixed, checksummed frames:
//!
//! ```text
//! "EFWAL1\n"                                  file header (7 bytes)
//! [len: u32 LE][crc: u32 LE][payload: len]    frame, repeated
//! ```
//!
//! `crc` is FNV-1a over the payload bytes; `payload` is a compact JSON
//! document. An update frame is `{"seq": N, "updates": [{"op","from",
//! "to"}, ...]}` using the canonical update codec of
//! `expfinder_graph::io` — the same encoding the HTTP wire protocol
//! speaks, so a WAL frame is a replayable `/updates` request body plus a
//! sequence number. Since the log is *event-sourced serving state*, not
//! just graph history, registered-query changes are records too:
//!
//! ```text
//! {"seq": N, "op": "register", "query": "team", "pattern": "<dsl>"}
//! {"seq": N, "op": "unregister", "query": "team"}
//! ```
//!
//! The `"op"` field is absent on update frames, so logs written before
//! registration records existed replay unchanged.
//!
//! **Durability contract.** A batch is appended (and, under
//! [`FsyncPolicy::Always`], fsynced) *before* it is applied to the owning
//! actor's graph — write-ahead in the literal sense. Replay therefore
//! sees every acknowledged batch; an unacknowledged batch can at worst
//! leave a *torn tail* (partial final frame from a crash mid-write),
//! which [`Wal::replay`] detects via the length/checksum envelope and
//! truncates away rather than propagating.

use crate::faults::{self, FaultInjector};
use expfinder_graph::json::{self, Value};
use expfinder_graph::{io as gio, EdgeUpdate};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic; the trailing newline keeps `head -c7` output readable.
pub const WAL_MAGIC: &[u8; 7] = b"EFWAL1\n";

/// Largest accepted frame payload. A length field beyond this is treated
/// as tail corruption (truncate), never as an allocation request.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// When `append` flushes to stable storage.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame (default): an acknowledged
    /// batch survives power loss, at one disk flush per batch.
    #[default]
    Always,
    /// Never fsync; rely on the OS writeback cache. Survives process
    /// crashes (the write hit the kernel) but not power loss. For tests
    /// and bulk loads.
    Never,
}

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    /// Transport-level file IO failure.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`].
    BadHeader,
    /// A fully-framed payload failed to decode — unlike a torn tail this
    /// is mid-file corruption and refuses to load (frame index, reason).
    BadFrame(usize, String),
    /// The writer sealed itself after a failed fsync: whether earlier
    /// frames reached stable storage is unknowable (fsyncgate), so
    /// pretending to append durably again would be a lie. Reopen the
    /// log — restart-time replay re-establishes ground truth.
    Sealed,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadHeader => write!(f, "wal header is not {WAL_MAGIC:?}"),
            WalError::BadFrame(i, msg) => write!(f, "wal frame {i} is corrupt: {msg}"),
            WalError::Sealed => write!(
                f,
                "wal writer is sealed after a failed fsync; reopen the log to recover"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// FNV-1a over a byte slice — the frame checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries (the WAL
/// directory is trusted local state).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encode one record as a length-prefixed, checksummed frame.
fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.to_payload();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The event one WAL record carries. Update batches are the common
/// case; register/unregister records make the registered-query set part
/// of the replayable serving state (subscriptions survive a restart).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// An accepted edge-update batch.
    Updates(Vec<EdgeUpdate>),
    /// A query put under incremental maintenance.
    Register {
        /// The registered query's name.
        query: String,
        /// The pattern's DSL source, re-parsed at replay.
        pattern: String,
    },
    /// A registered query dropped.
    Unregister {
        /// The registered query's name.
        query: String,
    },
}

/// One decoded WAL record: a sequence number and its event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone per-graph sequence number.
    pub seq: u64,
    /// The event this record carries.
    pub op: WalOp,
}

impl WalRecord {
    /// The update batch, when this record is one (replay loops that only
    /// care about graph history can `filter_map` on this).
    pub fn as_updates(&self) -> Option<&[EdgeUpdate]> {
        match &self.op {
            WalOp::Updates(ups) => Some(ups),
            _ => None,
        }
    }

    fn to_payload(&self) -> Vec<u8> {
        let mut fields: Vec<(String, Value)> =
            vec![("seq".to_owned(), Value::Int(self.seq as i64))];
        match &self.op {
            WalOp::Updates(ups) => {
                let updates = Value::Array(ups.iter().map(|&u| gio::update_to_json(u)).collect());
                fields.push(("updates".to_owned(), updates));
            }
            WalOp::Register { query, pattern } => {
                fields.push(("op".to_owned(), Value::Str("register".to_owned())));
                fields.push(("query".to_owned(), Value::Str(query.clone())));
                fields.push(("pattern".to_owned(), Value::Str(pattern.clone())));
            }
            WalOp::Unregister { query } => {
                fields.push(("op".to_owned(), Value::Str("unregister".to_owned())));
                fields.push(("query".to_owned(), Value::Str(query.clone())));
            }
        }
        let doc = Value::Object(fields.into_iter().collect());
        doc.to_string_compact().into_bytes()
    }

    fn from_payload(bytes: &[u8]) -> Result<WalRecord, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "payload is not utf-8".to_owned())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let seq = doc
            .field("seq")
            .and_then(|s| s.as_i64())
            .map_err(|e| e.to_string())? as u64;
        // `"op"` absent → an update frame (the pre-registration format)
        let op = match doc.field("op").ok().map(|o| o.as_str()) {
            None => {
                let updates = doc
                    .field("updates")
                    .and_then(|u| u.as_array())
                    .map_err(|e| e.to_string())?
                    .iter()
                    .map(gio::update_from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| e.to_string())?;
                WalOp::Updates(updates)
            }
            Some(kind) => {
                let kind = kind.map_err(|e| e.to_string())?;
                let query = doc
                    .field("query")
                    .and_then(|q| q.as_str())
                    .map_err(|e| e.to_string())?
                    .to_owned();
                match kind {
                    "register" => WalOp::Register {
                        query,
                        pattern: doc
                            .field("pattern")
                            .and_then(|p| p.as_str())
                            .map_err(|e| e.to_string())?
                            .to_owned(),
                    },
                    "unregister" => WalOp::Unregister { query },
                    other => return Err(format!("unknown wal op {other:?}")),
                }
            }
        };
        Ok(WalRecord { seq, op })
    }
}

/// What [`Wal::replay`] found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Whole frames decoded and returned.
    pub frames: usize,
    /// Updates across those frames.
    pub updates: usize,
    /// True when a torn tail (partial or checksum-failing final frame)
    /// was detected and truncated away.
    pub truncated_tail: bool,
    /// Bytes of log read (after any truncation).
    pub bytes: u64,
}

/// An open per-graph write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    next_seq: u64,
    faults: Arc<FaultInjector>,
    /// Set after a failed fsync (or a simulated crash): every further
    /// append refuses with [`WalError::Sealed`].
    sealed: bool,
}

impl Wal {
    /// Open (creating if missing) the log at `path` for appending.
    /// Replays nothing — call [`Wal::replay`] first on cold start; a
    /// fresh `Wal` starts its sequence after `last_seq`.
    pub fn open(
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
        last_seq: u64,
    ) -> Result<Wal, WalError> {
        Wal::open_with_faults(path, fsync, last_seq, FaultInjector::disarmed())
    }

    /// [`Wal::open`] with an explicit fault-injection gate; every write,
    /// fsync and rename this log performs routes through it.
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
        last_seq: u64,
        faults: Arc<FaultInjector>,
    ) -> Result<Wal, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        if file.metadata()?.len() == 0 {
            faults.write_all(&file, WAL_MAGIC)?;
            faults.sync_all(&file)?;
        }
        Ok(Wal {
            path,
            file,
            fsync,
            next_seq: last_seq + 1,
            faults,
            sealed: false,
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether the writer sealed itself after a failed fsync. A sealed
    /// log is still *readable* and replayable — only appends refuse.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// How many fsyncs one append performs under the current policy.
    pub fn fsyncs_per_append(&self) -> u64 {
        match self.fsync {
            FsyncPolicy::Always => 1,
            FsyncPolicy::Never => 0,
        }
    }

    /// Bytes of frames currently in the log (file length minus header).
    pub fn frame_bytes(&self) -> Result<u64, WalError> {
        Ok(self
            .file
            .metadata()?
            .len()
            .saturating_sub(WAL_MAGIC.len() as u64))
    }

    /// Append one update batch as a frame; returns `(seq, frame_bytes)`.
    /// Under [`FsyncPolicy::Always`] the frame is on stable storage when
    /// this returns — the caller may then apply the batch and ack it.
    pub fn append(&mut self, updates: &[EdgeUpdate]) -> Result<(u64, usize), WalError> {
        self.append_op(&WalOp::Updates(updates.to_vec()))
    }

    /// Append one record of any kind (update batch, register,
    /// unregister); returns `(seq, frame_bytes)` with the same
    /// durability contract as [`Wal::append`].
    ///
    /// **Failure semantics.** A failed *write* (e.g. a transient ENOSPC
    /// mid-frame) self-heals: the file is truncated back to the last
    /// good frame before the error returns, so the log stays appendable
    /// — the caller simply did not get its ack. A failed *fsync* seals
    /// the writer instead ([`WalError::Sealed`] from then on): whether
    /// the frame — or any earlier unflushed write — actually reached
    /// stable storage is unknowable after fsync reports failure, and
    /// silently pretending durability is how fsyncgate ate data. The
    /// torn frame is dropped best-effort either way, so no unacked
    /// record can surface at replay.
    pub fn append_op(&mut self, op: &WalOp) -> Result<(u64, usize), WalError> {
        if self.sealed {
            return Err(WalError::Sealed);
        }
        let seq = self.next_seq;
        let frame = encode_frame(&WalRecord {
            seq,
            op: op.clone(),
        });
        let good_end = self.file.metadata()?.len();
        if let Err(e) = self.faults.write_all(&self.file, &frame) {
            if faults::is_simulated_crash(&e) {
                // the "process" died here: no self-healing (a real crash
                // runs none), torn bytes stay for replay to truncate
                self.sealed = true;
                return Err(e.into());
            }
            // transient write failure: drop the torn frame so the next
            // append starts on a frame boundary — the log is not bricked
            let _ = self.file.set_len(good_end);
            return Err(e.into());
        }
        if self.fsync == FsyncPolicy::Always {
            if let Err(e) = self.faults.sync_data(&self.file) {
                if faults::is_simulated_crash(&e) {
                    self.sealed = true;
                    return Err(e.into());
                }
                // drop the unacknowledged frame best-effort, then seal:
                // after a failed fsync the kernel may have discarded
                // dirty pages, so this writer can never honestly ack
                // durability again
                let _ = self.file.set_len(good_end);
                let _ = self.file.sync_all();
                self.sealed = true;
                return Err(e.into());
            }
        }
        self.next_seq += 1;
        Ok((seq, frame.len()))
    }

    /// Truncate the log back to an empty header (after a compaction
    /// rewrote the snapshot) and reset the sequence counter.
    pub fn reset(&mut self) -> Result<(), WalError> {
        if self.sealed {
            return Err(WalError::Sealed);
        }
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        if let Err(e) = self.faults.sync_all(&self.file) {
            // the truncation's durability is unknown — same fsyncgate
            // reasoning as in append: seal rather than guess
            self.sealed = true;
            return Err(e.into());
        }
        self.next_seq = 1;
        Ok(())
    }

    /// Atomically replace the log with a fresh one seeded with `ops`
    /// (sequence numbers `1..=ops.len()`): write a sibling `.wal.tmp`,
    /// fsync it, rename it over the log, fsync the directory. This is
    /// the compaction path — unlike truncate-then-reappend, a crash at
    /// *any* byte of this sequence leaves either the complete old log or
    /// the complete new one, so the re-seeded records (live query
    /// registrations) can never be lost to a badly-timed power cut.
    /// Returns the byte size of each seeded frame.
    pub fn reset_seeded(&mut self, ops: &[WalOp]) -> Result<Vec<usize>, WalError> {
        if self.sealed {
            return Err(WalError::Sealed);
        }
        let tmp = self.path.with_extension("wal.tmp");
        // create truncates a stale tmp from an earlier crashed compaction
        let fresh = File::create(&tmp)?;
        let mut sizes = Vec::with_capacity(ops.len());
        let result = (|| -> Result<(), WalError> {
            self.faults.write_all(&fresh, WAL_MAGIC)?;
            for (i, op) in ops.iter().enumerate() {
                let frame = encode_frame(&WalRecord {
                    seq: i as u64 + 1,
                    op: op.clone(),
                });
                self.faults.write_all(&fresh, &frame)?;
                sizes.push(frame.len());
            }
            self.faults.sync_all(&fresh)?;
            Ok(())
        })();
        drop(fresh);
        if let Err(e) = result {
            // the old log is untouched and still the open handle: the
            // writer stays usable unless this was a simulated crash
            if matches!(&e, WalError::Io(io) if faults::is_simulated_crash(io)) {
                self.sealed = true;
            }
            return Err(e);
        }
        if let Err(e) = self.faults.rename(&tmp, &self.path) {
            if faults::is_simulated_crash(&e) {
                self.sealed = true;
            }
            return Err(e.into());
        }
        // past the rename the open handle points at the unlinked old
        // inode — any failure from here on seals until reopen
        let swapped = (|| -> Result<File, WalError> {
            #[cfg(unix)]
            if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
                let dir = File::open(parent)?;
                self.faults.sync_all(&dir)?;
            }
            Ok(OpenOptions::new()
                .read(true)
                .append(true)
                .open(&self.path)?)
        })();
        match swapped {
            Ok(file) => {
                self.file = file;
                self.next_seq = ops.len() as u64 + 1;
                Ok(sizes)
            }
            Err(e) => {
                self.sealed = true;
                Err(e)
            }
        }
    }

    /// Read every whole frame of the log at `path`, truncating a torn
    /// tail in place (partial final frame, bad length, or checksum
    /// mismatch on the *last* frame). A checksum/decode failure on a
    /// non-final frame is mid-file corruption and errors instead. A
    /// missing file replays as empty.
    pub fn replay(path: impl AsRef<Path>) -> Result<(Vec<WalRecord>, ReplaySummary), WalError> {
        let path = path.as_ref();
        let mut summary = ReplaySummary::default();
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), summary)),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        drop(file);
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadHeader);
        }

        let mut records = Vec::new();
        let mut off = WAL_MAGIC.len();
        let mut good_end = off; // offset just past the last valid frame
        loop {
            if off == bytes.len() {
                break; // clean end
            }
            if off + 8 > bytes.len() {
                summary.truncated_tail = true; // partial frame header
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
            let start = off + 8;
            let end = match (len <= MAX_FRAME_BYTES).then(|| start.checked_add(len as usize)) {
                Some(Some(end)) if end <= bytes.len() => end,
                // oversized length or payload runs past EOF: torn tail
                _ => {
                    summary.truncated_tail = true;
                    break;
                }
            };
            let payload = &bytes[start..end];
            if checksum(payload) != crc {
                if end == bytes.len() {
                    summary.truncated_tail = true; // bit-rotted final frame
                    break;
                }
                return Err(WalError::BadFrame(
                    records.len(),
                    "checksum mismatch".into(),
                ));
            }
            match WalRecord::from_payload(payload) {
                Ok(rec) => {
                    summary.updates += rec.as_updates().map_or(0, <[EdgeUpdate]>::len);
                    records.push(rec);
                }
                Err(msg) => {
                    if end == bytes.len() {
                        summary.truncated_tail = true;
                        break;
                    }
                    return Err(WalError::BadFrame(records.len(), msg));
                }
            }
            off = end;
            good_end = end;
        }
        summary.frames = records.len();
        summary.bytes = good_end as u64;
        if summary.truncated_tail {
            // drop the torn tail so the next append starts on a frame
            // boundary
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_end as u64)?;
            f.sync_all()?;
        }
        Ok((records, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::NodeId;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("expfinder_wal_{tag}_{}.wal", std::process::id()))
    }

    fn ins(a: u32, b: u32) -> EdgeUpdate {
        EdgeUpdate::Insert(NodeId(a), NodeId(b))
    }

    fn del(a: u32, b: u32) -> EdgeUpdate {
        EdgeUpdate::Delete(NodeId(a), NodeId(b))
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = tmp("roundtrip");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1), del(2, 3)]).unwrap();
        wal.append(&[]).unwrap();
        wal.append(&[ins(5, 5)]).unwrap();
        drop(wal);

        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].as_updates(), Some(&[ins(0, 1), del(2, 3)][..]));
        assert_eq!(records[1].as_updates(), Some(&[][..]));
        assert_eq!(records[2].seq, 3);
        assert!(!summary.truncated_tail);
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.updates, 3);

        // reopening continues the sequence
        let wal = Wal::open(&p, FsyncPolicy::Never, records.last().unwrap().seq).unwrap();
        assert_eq!(wal.next_seq(), 4);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let full = std::fs::read(&p).unwrap();

        // chop the file at every byte inside the final frame: replay
        // must keep frame 1 and truncate the tail
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 2);
        let frame1_end = {
            // header + frame1: recompute from the payload length field
            let len = u32::from_le_bytes(full[7..11].try_into().unwrap()) as usize;
            7 + 8 + len
        };
        for cut in frame1_end + 1..full.len() {
            std::fs::write(&p, &full[..cut]).unwrap();
            let (records, summary) = Wal::replay(&p).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert!(summary.truncated_tail, "cut at {cut}");
            // the truncation is persistent: a second replay is clean
            let (again, summary2) = Wal::replay(&p).unwrap();
            assert_eq!(again.len(), 1);
            assert!(!summary2.truncated_tail, "cut at {cut} left a dirty tail");
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn corrupt_final_frame_checksum_truncates() {
        let p = tmp("crc");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_tail);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let p = tmp("midfile");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        // flip a byte inside frame 1's payload (not the last frame)
        bytes[16] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            Wal::replay(&p),
            Err(WalError::BadFrame(0, _)) | Err(WalError::BadHeader)
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn reset_truncates_to_header_and_restarts_seq() {
        let p = tmp("reset");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Always, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.next_seq(), 1);
        wal.append(&[ins(2, 3)]).unwrap();
        drop(wal);
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].as_updates(), Some(&[ins(2, 3)][..]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn register_records_roundtrip() {
        let p = tmp("register");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        let reg = WalOp::Register {
            query: "team".to_owned(),
            pattern: "node pm; node dba; edge pm -> dba within 2;".to_owned(),
        };
        wal.append_op(&reg).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append_op(&WalOp::Unregister {
            query: "team".to_owned(),
        })
        .unwrap();
        drop(wal);

        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].op, reg);
        assert_eq!(records[0].as_updates(), None);
        assert_eq!(records[1].as_updates(), Some(&[ins(0, 1)][..]));
        assert_eq!(
            records[2].op,
            WalOp::Unregister {
                query: "team".to_owned()
            }
        );
        // only update frames count toward the update tally
        assert_eq!(summary.frames, 3);
        assert_eq!(summary.updates, 1);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn payload_without_op_field_decodes_as_updates() {
        // the pre-registration frame format: no "op" key at all
        let legacy = br#"{"seq":7,"updates":[{"from":1,"op":"insert","to":2}]}"#;
        let rec = WalRecord::from_payload(legacy).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.as_updates(), Some(&[ins(1, 2)][..]));
    }

    #[test]
    fn unknown_op_is_a_decode_error() {
        let bad = br#"{"op":"truncate","query":"x","seq":1}"#;
        assert!(WalRecord::from_payload(bad).is_err());
    }

    #[test]
    fn missing_file_replays_empty() {
        let p = tmp("missing");
        let _ = std::fs::remove_file(&p);
        let (records, summary) = Wal::replay(&p).unwrap();
        assert!(records.is_empty());
        assert_eq!(summary, ReplaySummary::default());
    }

    #[test]
    fn oversized_length_field_is_a_torn_tail() {
        let p = tmp("oversize");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p, FsyncPolicy::Never, 0).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&p, &bytes).unwrap();
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_tail);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn transient_enospc_append_self_heals() {
        use crate::faults::{FaultKind, FaultPlan};
        let p = tmp("enospc");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::disarmed();
        let mut wal = Wal::open_with_faults(&p, FsyncPolicy::Always, 0, Arc::clone(&inj)).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        // the next frame write fails after 3 torn bytes hit the disk
        inj.arm(FaultPlan::new().partial_write(0, 3, FaultKind::Enospc));
        let err = wal.append(&[ins(1, 2)]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        assert!(!wal.is_sealed(), "a write failure does not seal");
        inj.disarm();
        // the log self-healed: the torn bytes are gone and the retry
        // lands with the same sequence number
        let (seq, _) = wal.append(&[ins(1, 2)]).unwrap();
        assert_eq!(seq, 2, "failed append did not consume a sequence");
        wal.append(&[ins(2, 3)]).unwrap();
        drop(wal);
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 3);
        assert!(!summary.truncated_tail, "nothing left to repair");
        assert_eq!(records[1].as_updates(), Some(&[ins(1, 2)][..]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn fsync_failure_seals_the_writer() {
        use crate::faults::{FaultKind, FaultPlan, IoOp};
        let p = tmp("fsyncgate");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::disarmed();
        let mut wal = Wal::open_with_faults(&p, FsyncPolicy::Always, 0, Arc::clone(&inj)).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        inj.arm(FaultPlan::new().fail_nth(IoOp::Fsync, 0, FaultKind::Eio));
        let err = wal.append(&[ins(1, 2)]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err}");
        assert!(wal.is_sealed());
        inj.disarm();
        // sealed: appends and resets refuse with the distinct error
        assert!(matches!(wal.append(&[ins(2, 3)]), Err(WalError::Sealed)));
        assert!(matches!(wal.reset(), Err(WalError::Sealed)));
        drop(wal);
        // the unacknowledged frame was dropped; reopening recovers
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1, "only the acknowledged frame survives");
        let mut wal = Wal::open(&p, FsyncPolicy::Always, records.last().unwrap().seq).unwrap();
        wal.append(&[ins(5, 6)]).unwrap();
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn crashed_partial_append_leaves_replayable_log() {
        use crate::faults::FaultPlan;
        let p = tmp("crash_partial");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::disarmed();
        let mut wal = Wal::open_with_faults(&p, FsyncPolicy::Never, 0, Arc::clone(&inj)).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        // simulated crash 5 bytes into the next frame: no self-healing
        // runs (a real crash runs none) and the writer is dead
        inj.arm(FaultPlan::new().crash_at_partial(0, 5));
        assert!(wal.append(&[ins(1, 2)]).is_err());
        assert!(wal.is_sealed(), "a crashed writer accepts nothing more");
        inj.disarm();
        drop(wal);
        let len_with_torn_tail = std::fs::metadata(&p).unwrap().len();
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 1);
        assert!(summary.truncated_tail, "the torn bytes were on disk");
        assert!(std::fs::metadata(&p).unwrap().len() < len_with_torn_tail);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn reset_seeded_swaps_atomically() {
        use crate::faults::{FaultKind, FaultPlan, IoOp};
        let p = tmp("reseed");
        let _ = std::fs::remove_file(&p);
        let inj = FaultInjector::disarmed();
        let mut wal = Wal::open_with_faults(&p, FsyncPolicy::Never, 0, Arc::clone(&inj)).unwrap();
        wal.append(&[ins(0, 1)]).unwrap();
        wal.append(&[ins(1, 2)]).unwrap();
        let reg = WalOp::Register {
            query: "team".to_owned(),
            pattern: "node pm; node dba; edge pm -> dba within 2;".to_owned(),
        };

        // a failure before the rename leaves the old log fully intact
        // and the writer usable
        inj.arm(FaultPlan::new().fail_nth(IoOp::Fsync, 0, FaultKind::Enospc));
        assert!(wal.reset_seeded(std::slice::from_ref(&reg)).is_err());
        inj.disarm();
        assert!(!wal.is_sealed());
        let (records, _) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 2, "old log untouched by failed swap");

        // the successful swap replaces the log with the seeded records
        let sizes = wal.reset_seeded(std::slice::from_ref(&reg)).unwrap();
        assert_eq!(sizes.len(), 1);
        assert_eq!(wal.next_seq(), 2);
        wal.append(&[ins(7, 8)]).unwrap();
        drop(wal);
        let (records, summary) = Wal::replay(&p).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, reg);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].as_updates(), Some(&[ins(7, 8)][..]));
        assert!(!summary.truncated_tail);
        assert!(
            !p.with_extension("wal.tmp").exists(),
            "the rename consumed the tmp file"
        );
        let _ = std::fs::remove_file(&p);
    }
}
