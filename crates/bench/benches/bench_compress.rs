//! Criterion benches for E9–E11: compression build, querying the
//! compressed graph, and compressed-graph maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expfinder_bench::*;
use expfinder_compress::maintain::MaintainedCompression;
use expfinder_compress::{compress_graph, CompressionMethod};
use expfinder_core::bounded_simulation;
use expfinder_graph::generate::random_updates;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compress_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_build");
    group.sample_size(10);
    for &n in &[10_000usize, 40_000] {
        let g = twitter_graph(n, SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compress_graph(&g, CompressionMethod::Bisimulation).unwrap())
        });
    }
    group.finish();
}

fn bench_query_compressed(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_g_vs_gc");
    group.sample_size(10);
    let g = twitter_graph(40_000, SEED);
    let gc = compress_graph(&g, CompressionMethod::Bisimulation).unwrap();
    let q = twitter_pattern();
    group.bench_function("on_G", |b| b.iter(|| bounded_simulation(&g, &q).unwrap()));
    group.bench_function("on_Gc_with_expand", |b| {
        b.iter(|| gc.expand(&bounded_simulation(&gc, &q).unwrap()))
    });
    group.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressed_maintenance");
    group.sample_size(10);
    let g0 = twitter_graph(20_000, SEED);
    let ups = random_updates(&mut StdRng::seed_from_u64(SEED), &g0, 100, 0.5);
    group.bench_function("maintain_100_updates", |b| {
        b.iter_batched(
            || {
                (
                    g0.clone(),
                    MaintainedCompression::new(&g0, CompressionMethod::Bisimulation).unwrap(),
                )
            },
            |(mut g, mut mc)| {
                for &up in &ups {
                    g.apply(up);
                    mc.on_update(&g, up);
                }
                mc.refresh(&g);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("recompress_after_100", |b| {
        b.iter_batched(
            || {
                let mut g = g0.clone();
                for &up in &ups {
                    g.apply(up);
                }
                g
            },
            |g| compress_graph(&g, CompressionMethod::Bisimulation).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compress_build,
    bench_query_compressed,
    bench_maintenance
);
criterion_main!(benches);
