//! Criterion benches for E6: result-graph construction and top-K ranking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expfinder_bench::*;
use expfinder_core::{bounded_simulation, rank_matches, top_k, ResultGraph};

fn bench_result_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("result_graph_build");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let g = collab_graph(n, SEED);
        let q = collab_pattern();
        let m = bounded_simulation(&g, &q).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ResultGraph::build(&g, &q, &m))
        });
    }
    group.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_matches");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let g = collab_graph(n, SEED);
        let q = collab_pattern();
        let m = bounded_simulation(&g, &q).unwrap();
        let rg = ResultGraph::build(&g, &q, &m);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| rank_matches(&rg, &q, &m).unwrap())
        });
    }
    group.finish();
}

fn bench_topk_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_k_pipeline");
    group.sample_size(10);
    let g = collab_graph(8_000, SEED);
    let q = collab_pattern();
    let m = bounded_simulation(&g, &q).unwrap();
    for &k in &[1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| top_k(&g, &q, &m, k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_result_graph,
    bench_ranking,
    bench_topk_pipeline
);
criterion_main!(benches);
