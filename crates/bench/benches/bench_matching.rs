//! Criterion benches for E5: matching-engine performance.
//!
//! One group per matcher (simulation, bounded simulation, isomorphism)
//! across graph sizes — the series behind the paper's "performance of the
//! query engine" demonstration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expfinder_bench::*;
use expfinder_core::{bounded_simulation, graph_simulation, subgraph_isomorphism, IsoOptions};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000, 32_000] {
        let g = collab_graph(n, SEED);
        let q = collab_pattern_sim();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| graph_simulation(&g, &q).unwrap())
        });
    }
    group.finish();
}

fn bench_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_simulation");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000, 32_000] {
        let g = collab_graph(n, SEED);
        let q = collab_pattern();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bounded_simulation(&g, &q).unwrap())
        });
    }
    group.finish();
}

fn bench_iso(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph_isomorphism");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let g = collab_graph(n, SEED);
        let q = collab_pattern();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                subgraph_isomorphism(
                    &g,
                    &q,
                    IsoOptions {
                        limit: 1,
                        max_steps: 500_000,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_bounded, bench_iso);
criterion_main!(benches);
