//! Criterion benches for E12: design-choice ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use expfinder_bench::*;
use expfinder_compress::{compress_graph, CompressionMethod};
use expfinder_core::{
    bounded_simulation, bounded_simulation_with, BuildOptions, EvalOptions, PlanMode, ResultGraph,
};

fn bench_plan_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_mode");
    group.sample_size(10);
    let g = collab_graph(8_000, SEED);
    let q = collab_pattern();
    group.bench_function("selective", |b| {
        b.iter(|| bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::Selective)))
    });
    group.bench_function("declaration_order", |b| {
        b.iter(|| {
            bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::DeclarationOrder))
        })
    });
    group.finish();
}

fn bench_parallel_result_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("result_graph_threads");
    group.sample_size(10);
    let g = twitter_graph(30_000, SEED);
    let q = twitter_pattern();
    let m = bounded_simulation(&g, &q).unwrap();
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    group.bench_function("threads_1", |b| {
        b.iter(|| ResultGraph::build_with(&g, &q, &m, BuildOptions { threads: 1 }))
    });
    group.bench_function(format!("threads_{cores}"), |b| {
        b.iter(|| ResultGraph::build_with(&g, &q, &m, BuildOptions { threads: cores }))
    });
    group.finish();
}

fn bench_compression_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression_method");
    group.sample_size(10);
    let g = collab_graph(3_000, SEED);
    group.bench_function("bisimulation", |b| {
        b.iter(|| compress_graph(&g, CompressionMethod::Bisimulation).unwrap())
    });
    group.bench_function("simulation_equivalence", |b| {
        b.iter(|| compress_graph(&g, CompressionMethod::SimulationEquivalence).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_modes,
    bench_parallel_result_graph,
    bench_compression_methods
);
criterion_main!(benches);
