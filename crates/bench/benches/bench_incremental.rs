//! Criterion benches for E7/E8: incremental maintenance vs batch
//! recomputation under unit updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expfinder_bench::*;
use expfinder_core::{bounded_simulation, graph_simulation};
use expfinder_graph::generate::random_updates;
use expfinder_incremental::{IncrementalBoundedSim, IncrementalSim, Maintainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One insert+delete round-trip through the simulation maintainer.
fn bench_inc_sim_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_sim_unit_update");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let g0 = collab_graph(n, SEED);
        let q = collab_pattern_sim();
        let ups = random_updates(&mut StdRng::seed_from_u64(SEED), &g0, 2, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || (g0.clone(), IncrementalSim::new(&g0, &q).unwrap()),
                |(mut g, mut inc)| {
                    for &up in &ups {
                        g.apply(up);
                        inc.on_update(&g, up);
                    }
                    inc.current().total_pairs()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_inc_bsim_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_bsim_unit_update");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let g0 = collab_graph(n, SEED);
        let q = collab_pattern();
        let ups = random_updates(&mut StdRng::seed_from_u64(SEED), &g0, 2, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || (g0.clone(), IncrementalBoundedSim::new(&g0, &q)),
                |(mut g, mut inc)| {
                    for &up in &ups {
                        g.apply(up);
                        inc.on_update(&g, up);
                    }
                    inc.current().total_pairs()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The batch counterpart: recompute from scratch (what incremental saves).
fn bench_batch_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_recompute");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let g = collab_graph(n, SEED);
        let qs = collab_pattern_sim();
        let qb = collab_pattern();
        group.bench_with_input(BenchmarkId::new("simulation", n), &n, |b, _| {
            b.iter(|| graph_simulation(&g, &qs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bounded", n), &n, |b, _| {
            b.iter(|| bounded_simulation(&g, &qb).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inc_sim_unit,
    bench_inc_bsim_unit,
    bench_batch_recompute
);
criterion_main!(benches);
