//! Old-path vs new-path benchmark for the matching engine (PR 4).
//!
//! Measures **single-query sequential latency** of bounded simulation on
//! the collab/twitter workloads under both fixpoint engines — the
//! queue-based BFS loop (`FixpointEngine::Queue`, the pre-PR-4 path) and
//! the delta-aware frontier engine (`FixpointEngine::Frontier`:
//! dependency-ordered plan, direction-optimizing bitset BFS, refresh
//! memoization, reused [`EvalScratch`], CSR snapshot) — alongside the
//! [`EvalStats`] each produces, so the speedup is attributable:
//! `refreshes` and `bfs_nodes_visited` drop because the dependency plan
//! refreshes DAG-pattern edges exactly once, and `refreshes_skipped`
//! counts queued refreshes proven redundant by the dirty counters.
//!
//! The patterns are chain-shaped on purpose: a pattern edge whose target
//! set shrinks during refinement re-queues its upstream edges under the
//! old static plan — exactly the work the new plan avoids. Answers from
//! both engines are cross-checked for equality while measuring
//! (`results_identical` in the JSON document, written to `BENCH_4.json`).

use crate::{collab_graph, collab_pattern, fmt_dur, json_obj as obj, time, twitter_graph, SEED};
use expfinder_core::{
    bounded_simulation_cancellable, bounded_simulation_indexed, bounded_simulation_scratch,
    bounded_simulation_with, CancelToken, EvalOptions, EvalScratch, EvalStats, ReachIndex,
};
use expfinder_graph::json::Value;
use expfinder_graph::{CsrGraph, DiGraph, GraphView};
use expfinder_pattern::{Bound, Pattern, PatternBuilder, Predicate};
use std::time::Duration;

/// Knobs for one benchmark run.
#[derive(Clone, Debug, Default)]
pub struct MatchBenchOptions {
    /// Smaller graphs and fewer repetitions.
    pub quick: bool,
}

/// A chain-shaped influencer pattern for the Twitter-like generator:
/// `u0 →(2) u1 →(2) u2 →(2) u3`, with `u0` also within 3 hops of a
/// media hub — the "influence chain" workload.
///
/// The chain is built so the old static-selective plan *must*
/// re-refresh: seed-set sizes order the edges `media (tiny) → u2-seeded
/// → u1-seeded → u3-seeded`, so `u1 → u2` and `u0 → u1` both run before
/// the huge `u2 → u3` refresh shrinks `sim(u2)` hard (only about a
/// third of users follow another user directly in this generator), and
/// the shrink cascades back up the chain as repeated refreshes. The
/// frontier engine's dependency plan refreshes the chain leaf-first
/// instead — every edge exactly once — and the bound-1 `u2 → u3` edge
/// exercises the direct-intersection fast path (the old path runs a
/// full multi-source BFS from every user for it).
pub fn twitter_chain_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output("u0", Predicate::label("user"))
        .node(
            "u1",
            Predicate::label("user").and(Predicate::attr_ge("experience", 1)),
        )
        .node(
            "u2",
            Predicate::label("user").and(Predicate::attr_ge("experience", 3)),
        )
        .node("u3", Predicate::label("user"))
        .node("media", Predicate::label("media"))
        .edge("u0", "u1", Bound::hops(2))
        .edge("u1", "u2", Bound::hops(2))
        .edge("u2", "u3", Bound::ONE)
        .edge("u0", "media", Bound::hops(3))
        .build()
        .expect("valid pattern")
}

/// A pure-label "audience" star for the Twitter-like generator: every
/// constraint of `u0 →(2) u1, u0 →(3) media` is seeded from an untouched
/// full label class, so on a warm graph version the reach index serves
/// *every* first refresh and queries 2..N skip the class-seeded BFS
/// entirely — the steady-state serving shape `BENCH_5.json` pins down.
pub fn twitter_audience_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output("u0", Predicate::label("user"))
        .node("u1", Predicate::label("user"))
        .node("media", Predicate::label("media"))
        .edge("u0", "u1", Bound::hops(2))
        .edge("u0", "media", Bound::hops(3))
        .build()
        .expect("valid pattern")
}

/// The collab counterpart of [`twitter_audience_pattern`]: a pure-label
/// star whose three constraints are all class-seeded.
pub fn collab_team_star_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output("sa", Predicate::label("SA"))
        .node("sd", Predicate::label("SD"))
        .node("st", Predicate::label("ST"))
        .node("qa", Predicate::label("QA"))
        .edge("sa", "sd", Bound::hops(2))
        .edge("sa", "st", Bound::hops(3))
        .edge("sa", "qa", Bound::hops(2))
        .build()
        .expect("valid pattern")
}

fn ms(d: Duration) -> Value {
    Value::Float(d.as_secs_f64() * 1e3)
}

fn stats_doc(stats: EvalStats) -> Value {
    obj(vec![
        ("refreshes", Value::Int(stats.refreshes as i64)),
        (
            "refreshes_skipped",
            Value::Int(stats.refreshes_skipped as i64),
        ),
        (
            "bfs_nodes_visited",
            Value::Int(stats.bfs_nodes_visited as i64),
        ),
        ("removals", Value::Int(stats.removals as i64)),
        ("index_hits", Value::Int(stats.index_hits as i64)),
        ("index_misses", Value::Int(stats.index_misses as i64)),
    ])
}

/// Median latency plus the (identical-across-reps) evaluation output.
fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    // one untimed warmup settles allocator/page-cache state; medians on
    // a busy 1-core container are otherwise dominated by the first run
    let mut last = f();
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (r, t) = time(&mut f);
        times.push(t);
        last = r;
    }
    times.sort();
    (times[times.len() / 2], last)
}

/// One workload's measurements.
///
/// The **old path** is the pre-PR-4 sequential serving shape: queue-based
/// fixpoint straight off the live adjacency, fresh allocations per query.
/// The **new path** is what `ExpFinder` now runs per sequential query on
/// a large graph: the delta-aware frontier fixpoint over the cached CSR
/// snapshot (label-indexed candidate seeding), against one reused
/// `EvalScratch`. The snapshot is built once per graph version and shared
/// by every query at that version, so its (separately reported) build
/// cost is not part of per-query latency.
fn bench_workload(name: &str, graph: &DiGraph, pattern: &Pattern, reps: usize) -> Value {
    let (old_t, (old_m, old_stats)) = measure(reps, || {
        bounded_simulation_with(graph, pattern, EvalOptions::queue())
    });
    let (csr, snapshot_t) = time(|| CsrGraph::snapshot(graph));
    let mut scratch = EvalScratch::new();
    let (new_t, (new_m, new_stats)) = measure(reps, || {
        bounded_simulation_scratch(&csr, pattern, EvalOptions::default(), &mut scratch)
    });

    // the deadline-aware serving shape with a *disarmed* token: every
    // cancellation point costs one relaxed atomic load and nothing else,
    // so this must sit within noise of the token-free path above — the
    // `--max-cancel-overhead` gate holds the chain workload to that
    let disarmed = CancelToken::disarmed();
    let (cancel_t, _) = measure(reps, || {
        bounded_simulation_cancellable(
            &csr,
            pattern,
            EvalOptions::default(),
            &mut scratch,
            None,
            Some(&disarmed),
        )
        .expect("disarmed token never fires")
    });
    let cancel_overhead = cancel_t.as_secs_f64() / new_t.as_secs_f64().max(1e-12) - 1.0;

    let identical = old_m == new_m;
    assert!(
        identical,
        "{name}: frontier engine diverged from queue oracle"
    );
    assert!(
        !new_m.is_empty(),
        "{name}: pattern must match its generator"
    );

    let speedup = old_t.as_secs_f64() / new_t.as_secs_f64().max(1e-12);
    let bfs_reduction =
        old_stats.bfs_nodes_visited as f64 / (new_stats.bfs_nodes_visited as f64).max(1.0);
    println!(
        "{:>10} {:>9} {:>9} | {:>11} {:>11} {:>7.2}x | bfs nodes {:>11} → {:>11} ({:.2}x) | skipped {}",
        name,
        graph.node_count(),
        graph.edge_count(),
        fmt_dur(old_t),
        fmt_dur(new_t),
        speedup,
        old_stats.bfs_nodes_visited,
        new_stats.bfs_nodes_visited,
        bfs_reduction,
        new_stats.refreshes_skipped,
    );
    println!(
        "{:>10} disarmed cancel token: {} ({:+.2}% vs token-free)",
        "",
        fmt_dur(cancel_t),
        cancel_overhead * 100.0,
    );

    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("nodes", Value::Int(graph.node_count() as i64)),
        ("edges", Value::Int(graph.edge_count() as i64)),
        ("match_pairs", Value::Int(new_m.total_pairs() as i64)),
        (
            "old",
            obj(vec![("ms", ms(old_t)), ("stats", stats_doc(old_stats))]),
        ),
        (
            "new",
            obj(vec![
                ("ms", ms(new_t)),
                ("snapshot_build_ms", ms(snapshot_t)),
                ("stats", stats_doc(new_stats)),
            ]),
        ),
        ("speedup", Value::Float(speedup)),
        ("bfs_nodes_reduction", Value::Float(bfs_reduction)),
        ("cancel_check_ms", ms(cancel_t)),
        ("cancel_check_overhead", Value::Float(cancel_overhead)),
        ("results_identical", Value::Bool(identical)),
    ])
}

/// Run the whole benchmark; prints a table and returns the JSON document.
pub fn run_match_bench(opts: &MatchBenchOptions) -> Value {
    let reps = if opts.quick { 3 } else { 15 };
    let scale = if opts.quick { 4 } else { 1 };
    println!(
        "match benchmark: queue engine (old) vs frontier engine (new), sequential, {reps} reps"
    );
    println!(
        "{:>10} {:>9} {:>9} | {:>11} {:>11} {:>8} |",
        "workload", "|V|", "|E|", "1q old", "1q new", "speedup"
    );
    let workloads: Vec<(&str, DiGraph, Pattern)> = vec![
        ("collab", collab_graph(6000 / scale, SEED), collab_pattern()),
        (
            "twitter",
            twitter_graph(20_000 / scale, SEED),
            twitter_chain_pattern(),
        ),
    ];
    let results: Vec<Value> = workloads
        .iter()
        .map(|(name, g, q)| bench_workload(name, g, q, reps))
        .collect();
    obj(vec![
        ("bench", Value::Str("match_frontier".to_owned())),
        (
            "note",
            Value::Str(
                "sequential single-query latency: the pre-PR-4 queue fixpoint vs the \
                 delta-aware frontier fixpoint; identical results asserted while measuring"
                    .to_owned(),
            ),
        ),
        ("seed", Value::Int(SEED as i64)),
        ("quick", Value::Bool(opts.quick)),
        (
            "available_parallelism",
            Value::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        ("workloads", Value::Array(results)),
    ])
}

/// One workload of the cold-vs-warm index benchmark.
///
/// Three paths are measured against the same CSR snapshot with one
/// reused `EvalScratch`:
///
/// * **pr4** — the PR-4 serving path (frontier engine, no index): every
///   query re-pays the class-seeded first-refresh BFS of each
///   constraint;
/// * **cold** — the *first* index-backed query on a fresh graph version:
///   it pays the sweep that builds each missing `(label, bound,
///   direction)` entry (reported separately, not part of warm latency);
/// * **warm** — queries 2..N on that version: class-seeded first
///   refreshes are served from the memoized entries as one bitset copy
///   each, which is where `bfs_nodes_visited` drops.
///
/// Results of all paths (plus the queue oracle) are asserted identical
/// while measuring; `gated` marks workloads the `--min-warm-speedup`
/// gate applies to.
fn bench_warm_workload(
    name: &str,
    pattern_name: &str,
    graph: &DiGraph,
    pattern: &Pattern,
    reps: usize,
    gated: bool,
) -> Value {
    let (csr, snapshot_t) = time(|| CsrGraph::snapshot(graph));
    let mut scratch = EvalScratch::new();
    let (pr4_t, (pr4_m, pr4_stats)) = measure(reps, || {
        bounded_simulation_scratch(&csr, pattern, EvalOptions::default(), &mut scratch)
    });
    let (oracle_m, _) = bounded_simulation_with(graph, pattern, EvalOptions::queue());

    let idx = ReachIndex::new(csr.version());
    let bound = idx.bind(&csr);
    let ((cold_m, _), cold_t) = time(|| {
        bounded_simulation_indexed(
            &csr,
            pattern,
            EvalOptions::default(),
            &mut scratch,
            Some(&bound),
        )
    });
    let (warm_t, (warm_m, warm_stats)) = measure(reps, || {
        bounded_simulation_indexed(
            &csr,
            pattern,
            EvalOptions::default(),
            &mut scratch,
            Some(&bound),
        )
    });

    let identical = warm_m == pr4_m && warm_m == oracle_m && cold_m == warm_m;
    assert!(identical, "{name}/{pattern_name}: index changed results");
    assert!(!warm_m.is_empty(), "{name}/{pattern_name}: pattern matches");
    assert!(
        warm_stats.index_hits > 0,
        "{name}/{pattern_name}: warm path must hit the index"
    );
    assert!(
        warm_stats.bfs_nodes_visited < pr4_stats.bfs_nodes_visited,
        "{name}/{pattern_name}: warm path must traverse strictly less \
         ({} vs {})",
        warm_stats.bfs_nodes_visited,
        pr4_stats.bfs_nodes_visited,
    );

    let warm_speedup = pr4_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-12);
    println!(
        "{:>10} {:>14} | {:>11} {:>11} {:>11} {:>7.2}x | bfs nodes {:>9} → {:>9} | hits {} entries {}",
        name,
        pattern_name,
        fmt_dur(pr4_t),
        fmt_dur(cold_t),
        fmt_dur(warm_t),
        warm_speedup,
        pr4_stats.bfs_nodes_visited,
        warm_stats.bfs_nodes_visited,
        warm_stats.index_hits,
        idx.len(),
    );

    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("pattern", Value::Str(pattern_name.to_owned())),
        ("nodes", Value::Int(graph.node_count() as i64)),
        ("edges", Value::Int(graph.edge_count() as i64)),
        ("match_pairs", Value::Int(warm_m.total_pairs() as i64)),
        (
            "pr4",
            obj(vec![("ms", ms(pr4_t)), ("stats", stats_doc(pr4_stats))]),
        ),
        ("snapshot_build_ms", ms(snapshot_t)),
        ("cold_ms", ms(cold_t)),
        (
            "warm",
            obj(vec![("ms", ms(warm_t)), ("stats", stats_doc(warm_stats))]),
        ),
        ("warm_speedup", Value::Float(warm_speedup)),
        (
            "index",
            obj(vec![
                ("entries", Value::Int(idx.len() as i64)),
                ("bytes", Value::Int(idx.bytes() as i64)),
            ]),
        ),
        ("results_identical", Value::Bool(identical)),
        ("gated", Value::Bool(gated)),
    ])
}

/// Run the cold-vs-warm multi-query benchmark; prints a table and
/// returns the JSON document written to `BENCH_5.json`.
pub fn run_warm_bench(opts: &MatchBenchOptions) -> Value {
    let reps = if opts.quick { 3 } else { 15 };
    let scale = if opts.quick { 4 } else { 1 };
    println!(
        "warm-index benchmark: PR-4 frontier path vs reach-index warm path, sequential, {reps} reps"
    );
    println!(
        "{:>10} {:>14} | {:>11} {:>11} {:>11} {:>8} |",
        "workload", "pattern", "1q pr4", "1q cold", "1q warm", "speedup"
    );
    let collab = collab_graph(6000 / scale, SEED);
    let twitter = twitter_graph(20_000 / scale, SEED);
    // the chain workload keeps two residual-predicate seeds (their first
    // refreshes miss and stay BFS), so only its class-seeded share
    // shrinks; the star workloads are fully class-seeded — every warm
    // query skips the BFS entirely. The twitter workloads carry the
    // acceptance gate.
    let workloads: Vec<(&str, &str, &DiGraph, Pattern, bool)> = vec![
        (
            "twitter",
            "audience_star",
            &twitter,
            twitter_audience_pattern(),
            true,
        ),
        (
            "twitter",
            "influence_chain",
            &twitter,
            twitter_chain_pattern(),
            true,
        ),
        (
            "collab",
            "team_star",
            &collab,
            collab_team_star_pattern(),
            false,
        ),
    ];
    let results: Vec<Value> = workloads
        .iter()
        .map(|(name, pat, g, q, gated)| bench_warm_workload(name, pat, g, q, reps, *gated))
        .collect();
    obj(vec![
        ("bench", Value::Str("match_warm_index".to_owned())),
        (
            "note",
            Value::Str(
                "cold-vs-warm multi-query latency on one graph version: the PR-4 frontier \
                 path re-pays every class-seeded first-refresh BFS per query; the warm path \
                 serves them from the per-version reach index; identical results asserted \
                 while measuring"
                    .to_owned(),
            ),
        ),
        ("seed", Value::Int(SEED as i64)),
        ("quick", Value::Bool(opts.quick)),
        (
            "available_parallelism",
            Value::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        ("workloads", Value::Array(results)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_chain_pattern_matches_and_cascades() {
        let g = twitter_graph(4000, SEED);
        let q = twitter_chain_pattern();
        // the old path must cascade on this workload (that is what makes
        // it a memoization benchmark) ...
        let (m_old, old) = bounded_simulation_with(&g, &q, EvalOptions::queue());
        assert!(!m_old.is_empty(), "pattern matches its generator");
        assert!(
            old.refreshes > q.edge_count(),
            "chain shape must re-refresh some edge on the queue path \
             (got {} refreshes for {} edges)",
            old.refreshes,
            q.edge_count()
        );
        // ... and the dependency-ordered frontier path must not pay it
        let (m_new, new) = bounded_simulation_with(&g, &q, EvalOptions::default());
        assert_eq!(m_old, m_new);
        assert!(
            new.refreshes < old.refreshes,
            "dependency plan saves refreshes"
        );
        assert!(new.bfs_nodes_visited < old.bfs_nodes_visited);
    }

    #[test]
    fn bench_doc_shape() {
        let doc = run_match_bench(&MatchBenchOptions { quick: true });
        assert_eq!(
            doc.field("bench").unwrap().as_str().unwrap(),
            "match_frontier"
        );
        let wl = doc.field("workloads").unwrap().as_array().unwrap();
        assert_eq!(wl.len(), 2);
        for w in wl {
            assert!(w.field("results_identical").unwrap().as_bool().unwrap());
            assert!(w.field("speedup").unwrap().as_f64().unwrap() > 0.0);
            let new = w.field("new").unwrap().field("stats").unwrap();
            assert!(new.field("bfs_nodes_visited").unwrap().as_i64().unwrap() > 0);
        }
        // round-trips through the hand-rolled parser
        let text = doc.to_string_pretty();
        assert_eq!(expfinder_graph::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn warm_bench_doc_shape_and_invariants() {
        let doc = run_warm_bench(&MatchBenchOptions { quick: true });
        assert_eq!(
            doc.field("bench").unwrap().as_str().unwrap(),
            "match_warm_index"
        );
        let wl = doc.field("workloads").unwrap().as_array().unwrap();
        assert_eq!(wl.len(), 3);
        for w in wl {
            assert!(w.field("results_identical").unwrap().as_bool().unwrap());
            assert!(w.field("warm_speedup").unwrap().as_f64().unwrap() > 0.0);
            let pr4 = w.field("pr4").unwrap().field("stats").unwrap();
            let warm = w.field("warm").unwrap().field("stats").unwrap();
            assert!(
                warm.field("bfs_nodes_visited").unwrap().as_i64().unwrap()
                    < pr4.field("bfs_nodes_visited").unwrap().as_i64().unwrap(),
                "warm path traverses strictly less"
            );
            assert!(warm.field("index_hits").unwrap().as_i64().unwrap() > 0);
            let idx = w.field("index").unwrap();
            assert!(idx.field("entries").unwrap().as_i64().unwrap() > 0);
            assert!(idx.field("bytes").unwrap().as_i64().unwrap() > 0);
        }
        // the fully class-seeded star skips the BFS entirely on warm runs
        let star = &wl[0];
        assert_eq!(
            star.field("pattern").unwrap().as_str().unwrap(),
            "audience_star"
        );
        assert_eq!(
            star.field("warm")
                .unwrap()
                .field("stats")
                .unwrap()
                .field("bfs_nodes_visited")
                .unwrap()
                .as_i64()
                .unwrap(),
            0,
            "every constraint served from the index"
        );
        let text = doc.to_string_pretty();
        assert_eq!(expfinder_graph::json::parse(&text).unwrap(), doc);
    }
}
