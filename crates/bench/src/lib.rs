//! Shared workloads and measurement helpers for the experiment harness
//! and the criterion benches.
//!
//! Every workload is a deterministic function of a seed so the
//! experiments in EXPERIMENTS.md are reproducible bit-for-bit.

pub mod batchbench;
pub mod matchbench;
pub mod planbench;
pub mod servebench;

use expfinder_graph::generate::{
    collaboration, erdos_renyi, hierarchy, preferential_attachment, twitter_like, CollabConfig,
    HierarchyConfig, NodeSpec, TwitterConfig,
};
use expfinder_graph::DiGraph;
use expfinder_pattern::{Bound, Pattern, PatternBuilder, Predicate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Default seed for all workloads.
pub const SEED: u64 = 20130408; // ICDE 2013, Brisbane, April 8

/// A collaboration network with roughly `people` nodes.
pub fn collab_graph(people: usize, seed: u64) -> DiGraph {
    let team_size = 8;
    let cfg = CollabConfig {
        teams: (people / team_size).max(1),
        team_size,
        ..CollabConfig::default()
    };
    collaboration(&mut StdRng::seed_from_u64(seed), &cfg)
}

/// A Twitter-like follower graph with `n` accounts.
pub fn twitter_graph(n: usize, seed: u64) -> DiGraph {
    let cfg = TwitterConfig {
        n,
        avg_out: 4,
        hub_fraction: 0.005,
        buckets: 4,
    };
    twitter_like(&mut StdRng::seed_from_u64(seed), &cfg)
}

/// An Erdős–Rényi graph with `n` nodes and average degree `deg` over the
/// expert-field alphabet.
pub fn er_graph(n: usize, deg: usize, seed: u64) -> DiGraph {
    erdos_renyi(
        &mut StdRng::seed_from_u64(seed),
        n,
        n * deg,
        &NodeSpec::expert_fields(),
    )
}

/// An organizational hierarchy with roughly `n` nodes.
pub fn hierarchy_graph(n: usize, seed: u64) -> DiGraph {
    // branching 4: depth chosen so 4^depth ≈ n
    let mut depth = 2usize;
    while 4usize.pow(depth as u32) < n && depth < 10 {
        depth += 1;
    }
    hierarchy(
        &mut StdRng::seed_from_u64(seed),
        &HierarchyConfig {
            depth,
            branching: 4,
            buckets: 2,
        },
    )
}

/// A preferential-attachment graph with `n` nodes.
pub fn pa_graph(n: usize, seed: u64) -> DiGraph {
    preferential_attachment(
        &mut StdRng::seed_from_u64(seed),
        n,
        3,
        &NodeSpec::expert_fields(),
    )
}

/// The paper's Fig. 1 team-hiring pattern (bounded).
pub fn team_pattern() -> Pattern {
    expfinder_pattern::fixtures::fig1_pattern()
}

/// A 4-node bounded pattern tuned for the collaboration generator: leads
/// within reach of developers, testers and QA.
pub fn collab_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output(
            "sa",
            Predicate::label("SA").and(Predicate::attr_ge("experience", 3)),
        )
        .node("sd", Predicate::label("SD"))
        .node("st", Predicate::label("ST"))
        .node("qa", Predicate::label("QA"))
        .edge("sa", "sd", Bound::hops(2))
        .edge("sa", "st", Bound::hops(3))
        .edge("sd", "qa", Bound::hops(2))
        .build()
        .expect("valid")
}

/// The 1-hop (plain simulation) version of [`collab_pattern`].
pub fn collab_pattern_sim() -> Pattern {
    collab_pattern().as_simulation()
}

/// A pattern for the Twitter-like generator.
pub fn twitter_pattern() -> Pattern {
    PatternBuilder::new()
        .node_output("media", Predicate::label("media"))
        .node(
            "fan",
            Predicate::label("user").and(Predicate::attr_ge("experience", 2)),
        )
        .node("celebrity", Predicate::label("celebrity"))
        .edge("fan", "media", Bound::hops(2))
        .edge("fan", "celebrity", Bound::hops(2))
        .build()
        .expect("valid")
}

/// Build a JSON object from `(key, value)` pairs — the one helper every
/// benchmark-document writer in this crate shares.
pub fn json_obj(fields: Vec<(&str, expfinder_graph::json::Value)>) -> expfinder_graph::json::Value {
    expfinder_graph::json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<std::collections::BTreeMap<_, _>>(),
    )
}

/// Wall-clock one call.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Median wall-clock over `n` runs (n ≥ 1).
pub fn median_of<R>(n: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut times: Vec<Duration> = (0..n.max(1)).map(|_| time(&mut f).1).collect();
    times.sort();
    times[times.len() / 2]
}

/// Format a duration in adaptive units for table output.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_core::bounded_simulation;
    use expfinder_graph::GraphView;

    #[test]
    fn workloads_are_deterministic() {
        let a = collab_graph(400, 1);
        let b = collab_graph(400, 1);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn patterns_match_on_their_generators() {
        let g = collab_graph(800, SEED);
        let m = bounded_simulation(&g, &collab_pattern()).unwrap();
        assert!(!m.is_empty(), "collab pattern finds teams");

        let t = twitter_graph(2000, SEED);
        let m = bounded_simulation(&t, &twitter_pattern()).unwrap();
        assert!(!m.is_empty(), "twitter pattern finds influencers");
    }

    #[test]
    fn fmt_dur_units() {
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_dur(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_dur(Duration::from_millis(3200)), "3.20s");
    }

    #[test]
    fn median_is_stable() {
        let d = median_of(3, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(40));
    }
}
