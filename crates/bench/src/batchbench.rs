//! Sequential-vs-parallel benchmark for the batch execution subsystem.
//!
//! Measures, on the deterministic generated workloads of this crate:
//!
//! * **single-query latency** — one query through `Route::Direct`, on a
//!   sequential engine (`ExecConfig::sequential()`, live adjacency) vs a
//!   parallel one (CSR snapshot + `threads`-way refinement);
//! * **batch throughput** — a batch of *distinct* pattern variants (no
//!   intra-batch cache hits) drained by [`ExpFinder::query_batch`] with
//!   `batch_parallelism = 1` vs `= threads`.
//!
//! Results are printed as a table and returned as a machine-readable
//! [`Value`] document; the experiment harness and the `bench_batch` bin
//! write it to `BENCH_<pr>.json`, the perf baseline CI archives per run
//! (the `bench-smoke` job) so future PRs can be gated on regressions.
//! Sequential and parallel answers are cross-checked for equality while
//! measuring — a speedup that changed the results would be a bug, not a
//! win.

use crate::{collab_graph, fmt_dur, json_obj as obj, median_of, time, twitter_graph, SEED};
use expfinder_engine::{EngineConfig, ExecConfig, ExpFinder, QuerySpec, Route};
use expfinder_graph::json::Value;
use expfinder_graph::{DiGraph, GraphView};
use expfinder_pattern::{Bound, Pattern, PatternBuilder, Predicate};
use std::time::Duration;

/// Knobs for one benchmark run.
#[derive(Clone, Debug)]
pub struct BatchBenchOptions {
    /// Smaller graphs and fewer repetitions.
    pub quick: bool,
    /// Worker threads for the parallel engine (refinement and batch
    /// fan-out alike).
    pub threads: usize,
    /// Queries per batch.
    pub batch_size: usize,
}

impl Default for BatchBenchOptions {
    fn default() -> Self {
        BatchBenchOptions {
            quick: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            batch_size: 64,
        }
    }
}

impl BatchBenchOptions {
    /// The quick profile used by `experiments -- --quick` and CI smoke.
    pub fn quick() -> Self {
        BatchBenchOptions {
            quick: true,
            batch_size: 16,
            ..BatchBenchOptions::default()
        }
    }
}

/// Distinct collaboration-pattern variants. Structure cycles (experience
/// threshold × hop bound), but every `i` gets a unique — vacuously true —
/// upper bound on `experience`, so fingerprints are distinct for *all*
/// slots and a batch of them can never be served by intra-batch cache
/// hits, whatever route it takes.
pub fn collab_variant(i: usize) -> Pattern {
    let exp = 1 + (i % 5) as i64;
    let hop = 2 + (i / 5 % 2) as u32;
    PatternBuilder::new()
        .node_output(
            "sa",
            Predicate::label("SA")
                .and(Predicate::attr_ge("experience", exp))
                .and(Predicate::attr_le("experience", 1_000 + i as i64)),
        )
        .node("sd", Predicate::label("SD"))
        .node("st", Predicate::label("ST"))
        .edge("sa", "sd", Bound::hops(hop))
        .edge("sa", "st", Bound::hops(3))
        .edge("sd", "st", Bound::hops(2))
        .build()
        .expect("valid variant")
}

/// Distinct influencer-pattern variants for the Twitter-like generator
/// (same per-slot uniqueness trick as [`collab_variant`]).
pub fn twitter_variant(i: usize) -> Pattern {
    let exp = (i % 4) as i64;
    let hop = 2 + (i / 4 % 2) as u32;
    PatternBuilder::new()
        .node_output(
            "media",
            Predicate::label("media").and(Predicate::attr_le("experience", 1_000 + i as i64)),
        )
        .node(
            "fan",
            Predicate::label("user").and(Predicate::attr_ge("experience", exp)),
        )
        .node("celebrity", Predicate::label("celebrity"))
        .edge("fan", "media", Bound::hops(hop))
        .edge("fan", "celebrity", Bound::hops(2))
        .build()
        .expect("valid variant")
}

fn ms(d: Duration) -> Value {
    Value::Float(d.as_secs_f64() * 1e3)
}

fn speedup(seq: Duration, par: Duration) -> f64 {
    seq.as_secs_f64() / par.as_secs_f64().max(1e-12)
}

/// A family of distinct pattern variants, indexed by batch slot.
type VariantFn = fn(usize) -> Pattern;

/// One workload's measurements.
fn bench_workload(
    name: &str,
    graph: &DiGraph,
    variant: VariantFn,
    opts: &BatchBenchOptions,
) -> Value {
    let reps = if opts.quick { 3 } else { 5 };
    let engine = |exec: ExecConfig| {
        let e = ExpFinder::new(EngineConfig {
            exec,
            ..EngineConfig::default()
        });
        let h = e.add_graph("bench", graph.clone()).unwrap();
        (e, h)
    };
    let par_exec = ExecConfig {
        threads: opts.threads,
        batch_parallelism: opts.threads,
    };

    // --- single-query latency (Route::Direct defeats the cache) ---
    let q0 = variant(0);
    let (seq_e, seq_h) = engine(ExecConfig::sequential());
    let (par_e, par_h) = engine(par_exec);
    let single_seq = median_of(reps, || {
        seq_e
            .query(&seq_h)
            .pattern(q0.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap()
    });
    let single_par = median_of(reps, || {
        par_e
            .query(&par_h)
            .pattern(q0.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap()
    });

    // --- batch throughput (fresh engines: cold caches on both sides) ---
    let specs: Vec<QuerySpec> = (0..opts.batch_size)
        .map(|i| {
            QuerySpec::pattern(variant(i))
                .prefer(Route::Direct)
                .top_k(5)
        })
        .collect();
    let (seq_e, seq_h) = engine(ExecConfig {
        threads: 1,
        batch_parallelism: 1,
    });
    let (par_e, par_h) = engine(par_exec);
    let (seq_results, batch_seq) = time(|| seq_e.query_batch(&seq_h, specs.clone()));
    let (par_results, batch_par) = time(|| par_e.query_batch(&par_h, specs.clone()));
    let identical = seq_results.len() == par_results.len()
        && seq_results.iter().zip(&par_results).all(|(a, b)| {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            *a.matches == *b.matches
                && a.experts.iter().map(|x| x.node).collect::<Vec<_>>()
                    == b.experts.iter().map(|x| x.node).collect::<Vec<_>>()
        });
    assert!(
        identical,
        "parallel batch diverged from sequential baseline"
    );

    let qps = |d: Duration| opts.batch_size as f64 / d.as_secs_f64().max(1e-12);
    println!(
        "{:>10} {:>9} {:>9} | {:>11} {:>11} {:>7.2}x | {:>11} {:>11} {:>7.2}x",
        name,
        graph.node_count(),
        graph.edge_count(),
        fmt_dur(single_seq),
        fmt_dur(single_par),
        speedup(single_seq, single_par),
        format!("{:.1}/s", qps(batch_seq)),
        format!("{:.1}/s", qps(batch_par)),
        speedup(batch_seq, batch_par),
    );

    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("nodes", Value::Int(graph.node_count() as i64)),
        ("edges", Value::Int(graph.edge_count() as i64)),
        (
            "single_query",
            obj(vec![
                ("sequential_ms", ms(single_seq)),
                ("parallel_ms", ms(single_par)),
                ("speedup", Value::Float(speedup(single_seq, single_par))),
            ]),
        ),
        (
            "batch",
            obj(vec![
                ("size", Value::Int(opts.batch_size as i64)),
                ("sequential_ms", ms(batch_seq)),
                ("parallel_ms", ms(batch_par)),
                ("sequential_qps", Value::Float(qps(batch_seq))),
                ("parallel_qps", Value::Float(qps(batch_par))),
                ("speedup", Value::Float(speedup(batch_seq, batch_par))),
                ("results_identical", Value::Bool(identical)),
            ]),
        ),
    ])
}

/// Run the whole benchmark; prints a table and returns the JSON document.
pub fn run_batch_bench(opts: &BatchBenchOptions) -> Value {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "batch benchmark: {} threads requested, {} cores available, batch size {}",
        opts.threads, cores, opts.batch_size
    );
    println!(
        "{:>10} {:>9} {:>9} | {:>11} {:>11} {:>8} | {:>11} {:>11} {:>8}",
        "workload",
        "|V|",
        "|E|",
        "1q seq",
        "1q par",
        "speedup",
        "batch seq",
        "batch par",
        "speedup"
    );
    let scale = if opts.quick { 4 } else { 1 };
    let workloads: Vec<(&str, DiGraph, VariantFn)> = vec![
        ("collab", collab_graph(6000 / scale, SEED), collab_variant),
        (
            "twitter",
            twitter_graph(20_000 / scale, SEED),
            twitter_variant,
        ),
    ];
    let results: Vec<Value> = workloads
        .iter()
        .map(|(name, g, variant)| bench_workload(name, g, *variant, opts))
        .collect();
    obj(vec![
        ("bench", Value::Str("batch_parallel".to_owned())),
        (
            "note",
            Value::Str(
                "speedups are bounded by available_parallelism; a run with \
                 threads > cores measures scheduling overhead, not scaling"
                    .to_owned(),
            ),
        ),
        ("seed", Value::Int(SEED as i64)),
        ("quick", Value::Bool(opts.quick)),
        ("threads", Value::Int(opts.threads as i64)),
        ("available_parallelism", Value::Int(cores as i64)),
        ("batch_size", Value::Int(opts.batch_size as i64)),
        ("workloads", Value::Array(results)),
    ])
}

/// Write a benchmark document where CI (and the repo baseline) expect it.
pub fn write_bench_json(path: &str, doc: &Value) -> std::io::Result<()> {
    let mut text = doc.to_string_pretty();
    text.push('\n');
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinct_and_matchable() {
        // distinct across a full default batch, not just one cycle of the
        // structural parameters
        let fps: std::collections::BTreeSet<String> =
            (0..64).map(|i| collab_variant(i).fingerprint()).collect();
        assert_eq!(fps.len(), 64, "64 distinct collab fingerprints");
        let fps: std::collections::BTreeSet<String> =
            (0..64).map(|i| twitter_variant(i).fingerprint()).collect();
        assert_eq!(fps.len(), 64, "64 distinct twitter fingerprints");

        let g = collab_graph(800, SEED);
        let m = expfinder_core::bounded_simulation(&g, &collab_variant(0)).unwrap();
        assert!(!m.is_empty(), "variant 0 matches its generator");
        // the uniqueness conjunct is vacuous: variants differing only in
        // slot index have identical match sets
        let a = expfinder_core::bounded_simulation(&g, &collab_variant(3)).unwrap();
        let b = expfinder_core::bounded_simulation(&g, &collab_variant(13)).unwrap();
        assert_eq!(a, b, "slot index never changes semantics");
    }

    #[test]
    fn bench_doc_shape() {
        // tiny smoke run: the JSON document has the fields CI consumes
        let opts = BatchBenchOptions {
            quick: true,
            threads: 2,
            batch_size: 4,
        };
        let doc = run_batch_bench(&opts);
        assert_eq!(
            doc.field("bench").unwrap().as_str().unwrap(),
            "batch_parallel"
        );
        let wl = doc.field("workloads").unwrap().as_array().unwrap();
        assert_eq!(wl.len(), 2);
        for w in wl {
            let batch = w.field("batch").unwrap();
            assert!(batch.field("results_identical").unwrap().as_bool().unwrap());
            assert!(batch.field("speedup").unwrap().as_f64().unwrap() > 0.0);
        }
        // round-trips through the hand-rolled parser
        let text = doc.to_string_pretty();
        assert_eq!(expfinder_graph::json::parse(&text).unwrap(), doc);
    }
}
