//! Server throughput benchmark: N concurrent client threads hammering
//! `/query` and `/batch` over real TCP against an in-process
//! `expfinder-server`.
//!
//! Measures end-to-end requests/second and latency percentiles per
//! endpoint — engine time *plus* the serving layer (framing, JSON,
//! socket round-trips) — the number the ROADMAP's "heavy traffic" goal
//! is about. Query slots rotate through the distinct pattern variants of
//! [`crate::batchbench`] with `route: direct`, so every request does
//! real matching work instead of hitting the result cache.
//!
//! The document is written to `BENCH_3.json` (checked-in baseline; the
//! `bench-smoke` CI job archives its own quick-profile run), and
//! `--min-rps` turns the `bench_serve` bin into an advisory throughput
//! gate.

use crate::{collab_graph, json_obj as obj, SEED};
use expfinder_engine::ExpFinder;
use expfinder_graph::json::Value;
use expfinder_graph::GraphView;
use expfinder_pattern::Pattern;
use expfinder_server::client::{query_body, Client};
use expfinder_server::{Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one load-generation run.
#[derive(Clone, Debug)]
pub struct ServeBenchOptions {
    /// Smaller graph and fewer requests.
    pub quick: bool,
    /// Concurrent client threads.
    pub clients: usize,
    /// `/query` requests issued per client.
    pub requests_per_client: usize,
    /// Queries per `/batch` request.
    pub batch_size: usize,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServeBenchOptions {
            quick: false,
            clients: cores.clamp(2, 8),
            requests_per_client: 200,
            batch_size: 16,
            workers: cores.clamp(2, 16),
        }
    }
}

impl ServeBenchOptions {
    /// The quick profile used by CI smoke runs.
    pub fn quick() -> Self {
        ServeBenchOptions {
            quick: true,
            requests_per_client: 40,
            batch_size: 8,
            ..ServeBenchOptions::default()
        }
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One endpoint's merged measurements.
struct EndpointStats {
    requests: usize,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl EndpointStats {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    fn to_json(&self, extra: Vec<(&str, Value)>) -> Value {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let ms = |d: Duration| Value::Float(d.as_secs_f64() * 1e3);
        let mut fields = vec![
            ("requests", Value::Int(self.requests as i64)),
            ("wall_ms", ms(self.wall)),
            ("rps", Value::Float(self.rps())),
            (
                "latency_ms",
                obj(vec![
                    ("p50", ms(percentile(&sorted, 0.50))),
                    ("p95", ms(percentile(&sorted, 0.95))),
                    ("p99", ms(percentile(&sorted, 0.99))),
                    ("max", ms(sorted.last().copied().unwrap_or_default())),
                ]),
            ),
        ];
        fields.extend(extra);
        obj(fields)
    }
}

/// Run `clients` threads, each issuing `per_client` requests built by
/// `make_body`, and merge the per-request latencies.
fn hammer(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    path_graph: &str,
    make_body: impl Fn(usize, usize) -> Value + Sync,
) -> EndpointStats {
    let started = Instant::now();
    let all: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let make_body = &make_body;
                s.spawn(move || {
                    let mut client = Client::new(addr);
                    client.set_timeout(Duration::from_secs(60));
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let body = make_body(c, i);
                        let t = Instant::now();
                        client
                            .query(path_graph, &body)
                            .expect("bench request failed");
                        lats.push(t.elapsed());
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    let latencies: Vec<Duration> = all.into_iter().flatten().collect();
    EndpointStats {
        requests: latencies.len(),
        wall,
        latencies,
    }
}

/// `/batch` counterpart of [`hammer`] (one request = `batch_size` queries).
fn hammer_batch(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    batch_size: usize,
    variant_dsl: &(impl Fn(usize) -> String + Sync),
) -> EndpointStats {
    let started = Instant::now();
    let all: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::new(addr);
                    client.set_timeout(Duration::from_secs(60));
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let queries: Vec<Value> = (0..batch_size)
                            .map(|j| {
                                query_body(
                                    &variant_dsl(c * per_client * batch_size + i * batch_size + j),
                                    Some(5),
                                    "direct",
                                    false,
                                )
                            })
                            .collect();
                        let t = Instant::now();
                        client.batch("bench", queries).expect("bench batch failed");
                        lats.push(t.elapsed());
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    let latencies: Vec<Duration> = all.into_iter().flatten().collect();
    EndpointStats {
        requests: latencies.len(),
        wall,
        latencies,
    }
}

/// [`crate::batchbench::collab_variant`] in wire (DSL) form: same
/// structure, same vacuously-true per-slot uniqueness conjunct,
/// property-tested equivalent below.
fn variant_dsl(i: usize) -> String {
    let exp = 1 + (i % 5) as i64;
    let hop = 2 + (i / 5 % 2) as u32;
    let uniq = 1_000 + i as i64;
    format!(
        "node sa* where label = \"SA\" and experience >= {exp} and experience <= {uniq}; \
         node sd where label = \"SD\"; node st where label = \"ST\"; \
         edge sa -> sd within {hop}; edge sa -> st within 3; edge sd -> st within 2;"
    )
}

/// Run the whole load generation; prints a table and returns the
/// machine-readable document.
pub fn run_serve_bench(opts: &ServeBenchOptions) -> Value {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let graph = collab_graph(if opts.quick { 1_500 } else { 6_000 }, SEED);
    println!(
        "serve benchmark: {} clients, {} server workers, {} cores, graph |V|={} |E|={}",
        opts.clients,
        opts.workers,
        cores,
        graph.node_count(),
        graph.edge_count()
    );

    // sanity: the DSL variants must parse and stay distinct per slot
    let p0: Pattern = expfinder_pattern::parser::parse(&variant_dsl(0)).expect("variant dsl");
    assert!(p0.node_count() == 3);

    let engine = Arc::new(ExpFinder::default());
    engine.add_graph("bench", graph).unwrap();
    let handle = Server::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: opts.workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // warm-up (snapshot builds, allocator, listener)
    let mut warm = Client::new(addr);
    warm.query(
        "bench",
        &query_body(&variant_dsl(0), Some(5), "direct", false),
    )
    .expect("warm-up");

    let query_stats = hammer(
        addr,
        opts.clients,
        opts.requests_per_client,
        "bench",
        |c, i| {
            query_body(
                &variant_dsl(c * opts.requests_per_client + i),
                Some(5),
                "direct",
                false,
            )
        },
    );
    let batch_per_client = (opts.requests_per_client / 4).max(2);
    let batch_stats = hammer_batch(
        addr,
        opts.clients,
        batch_per_client,
        opts.batch_size,
        &variant_dsl,
    );
    let served = handle.shutdown();

    let qps = batch_stats.rps() * opts.batch_size as f64;
    println!(
        "{:>8} {:>9} {:>11} | {:>8} {:>9} {:>11} {:>11}",
        "endpoint", "requests", "req/s", "", "requests", "req/s", "queries/s"
    );
    println!(
        "{:>8} {:>9} {:>11.1} | {:>8} {:>9} {:>11.1} {:>11.1}",
        "/query",
        query_stats.requests,
        query_stats.rps(),
        "/batch",
        batch_stats.requests,
        batch_stats.rps(),
        qps
    );

    obj(vec![
        ("bench", Value::Str("serve_throughput".to_owned())),
        (
            "note",
            Value::Str(
                "end-to-end over real TCP (engine + framing + JSON); req/s is \
                 bounded by available_parallelism — single-core hosts measure \
                 the serving overhead, not scaling"
                    .to_owned(),
            ),
        ),
        ("seed", Value::Int(SEED as i64)),
        ("quick", Value::Bool(opts.quick)),
        ("clients", Value::Int(opts.clients as i64)),
        ("server_workers", Value::Int(opts.workers as i64)),
        ("available_parallelism", Value::Int(cores as i64)),
        ("requests_served", Value::Int(served as i64)),
        (
            "endpoints",
            obj(vec![
                ("query", query_stats.to_json(vec![])),
                (
                    "batch",
                    batch_stats.to_json(vec![
                        ("queries_per_request", Value::Int(opts.batch_size as i64)),
                        ("qps", Value::Float(qps)),
                    ]),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batchbench::collab_variant;

    #[test]
    fn variant_dsl_matches_builder_variant() {
        // the DSL form and the builder form of a slot agree on semantics
        let g = collab_graph(800, SEED);
        for i in [0, 3, 7] {
            let from_dsl = expfinder_pattern::parser::parse(&variant_dsl(i)).unwrap();
            let a = expfinder_core::bounded_simulation(&g, &from_dsl).unwrap();
            let b = expfinder_core::bounded_simulation(&g, &collab_variant(i)).unwrap();
            assert_eq!(a, b, "slot {i}");
        }
    }

    #[test]
    fn serve_bench_doc_shape() {
        let opts = ServeBenchOptions {
            quick: true,
            clients: 2,
            requests_per_client: 4,
            batch_size: 2,
            workers: 2,
        };
        let doc = run_serve_bench(&opts);
        assert_eq!(
            doc.field("bench").unwrap().as_str().unwrap(),
            "serve_throughput"
        );
        let eps = doc.field("endpoints").unwrap();
        let q = eps.field("query").unwrap();
        assert_eq!(q.field("requests").unwrap().as_i64().unwrap(), 8);
        assert!(q.field("rps").unwrap().as_f64().unwrap() > 0.0);
        assert!(q.field("latency_ms").unwrap().field("p99").is_ok());
        let b = eps.field("batch").unwrap();
        assert_eq!(b.field("queries_per_request").unwrap().as_i64().unwrap(), 2);
        // round-trips through the hand-rolled parser
        let text = doc.to_string_pretty();
        assert_eq!(expfinder_graph::json::parse(&text).unwrap(), doc);
    }
}
