//! Experiment harness: regenerates every quantitative claim of the paper
//! (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! Usage:
//!   cargo run --release --bin experiments            # all experiments
//!   cargo run --release --bin experiments -- e8      # one experiment
//!   cargo run --release --bin experiments -- --quick # smaller workloads
//!   cargo run --release --bin experiments -- --quick --out FRESH.json
//!       # write E13's benchmark document to FRESH.json instead of the
//!       # profile default, leaving the checked-in baseline untouched
//!       # (what the CI regression compare uses)

use expfinder_bench::batchbench::{run_batch_bench, write_bench_json, BatchBenchOptions};
use expfinder_bench::*;
use expfinder_compress::maintain::MaintainedCompression;
use expfinder_compress::{compress_graph, CompressionMethod};
use expfinder_core::{
    bounded_simulation, bounded_simulation_with, graph_simulation, rank_matches,
    subgraph_isomorphism, BuildOptions, EvalOptions, IsoOptions, PlanMode, ResultGraph,
};
use expfinder_graph::fixtures::collaboration_fig1;
use expfinder_graph::generate::random_updates;
use expfinder_graph::{DiGraph, GraphView};
use expfinder_incremental::{IncrementalBoundedSim, IncrementalSim, Maintainer};
use expfinder_pattern::fixtures::{demo_queries, fig1_pattern, fig1_pattern_simulation};
use expfinder_pattern::{Pattern, Predicate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

struct Opts {
    quick: bool,
    out: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        quick: false,
        out: None,
    };
    let mut selected: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                i += 1;
                opts.out = Some(
                    args.get(i)
                        .unwrap_or_else(|| {
                            eprintln!("missing value after --out");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
            name => selected.push(name),
        }
        i += 1;
    }
    let all = selected.is_empty() || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    println!("ExpFinder experiment harness (quick = {})", opts.quick);
    println!("reproducing: Fan, Wang, Wu — ICDE 2013, \"ExpFinder\"\n");

    if want("e1") {
        e1_example1();
    }
    if want("e2") {
        e2_example2();
    }
    if want("e3") {
        e3_example3();
    }
    if want("e4") {
        e4_demo_queries(&opts);
    }
    if want("e5") {
        e5_engine_scaling(&opts);
    }
    if want("e6") {
        e6_topk(&opts);
    }
    if want("e7") {
        e7_unit_updates(&opts);
    }
    if want("e8") {
        e8_batch_crossover(&opts);
    }
    if want("e9") {
        e9_compression_ratio(&opts);
    }
    if want("e10") {
        e10_compressed_query(&opts);
    }
    if want("e11") {
        e11_compression_maintenance(&opts);
    }
    if want("e12") {
        e12_ablations(&opts);
    }
    if want("e13") {
        e13_batch_parallel(&opts);
    }
    println!("\nharness complete.");
}

fn banner(id: &str, title: &str, claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("----------------------------------------------------------------");
}

fn verdict(ok: bool, what: &str) {
    println!("[{}] {what}\n", if ok { "PASS" } else { "FAIL" });
}

// ---------------------------------------------------------------- E1 --

fn e1_example1() {
    banner(
        "E1",
        "Example 1 / Fig. 1 — the match set of the hiring query",
        "M(Q,G) = {(SA,Bob),(SA,Walt),(BA,Jean),(SD,Mat),(SD,Dan),(SD,Pat),(ST,Eva)}; \
         plain simulation and subgraph isomorphism both fail",
    );
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let m = bounded_simulation(&f.graph, &q).unwrap();
    let mut rows: Vec<String> = m
        .pairs()
        .map(|(u, v)| format!("({}, {})", q.node(u).name.to_uppercase(), f.name_of(v)))
        .collect();
    rows.sort();
    println!("bounded simulation: {}", rows.join(" "));
    let expected = {
        let mut e = vec![
            ("sa", f.bob),
            ("sa", f.walt),
            ("ba", f.jean),
            ("sd", f.mat),
            ("sd", f.dan),
            ("sd", f.pat),
            ("st", f.eva),
        ];
        e.sort();
        e
    };
    let ok_pairs = m.total_pairs() == 7
        && expected
            .iter()
            .all(|&(n, v)| m.contains(q.node_id(n).unwrap(), v));

    let sim = graph_simulation(&f.graph, &fig1_pattern_simulation()).unwrap();
    println!("plain simulation:   {} pairs", sim.total_pairs());
    let iso = subgraph_isomorphism(&f.graph, &q, IsoOptions::default());
    println!("subgraph iso:       {} embeddings", iso.embeddings.len());
    verdict(
        ok_pairs && sim.is_empty() && iso.embeddings.is_empty(),
        "exact match set; simulation and isomorphism both miss the team",
    );
}

// ---------------------------------------------------------------- E2 --

fn e2_example2() {
    banner(
        "E2",
        "Example 2 — ranking by social impact",
        "f(SA,Bob) = 9/5, f(SA,Walt) = 7/3; Bob is the top-1 expert",
    );
    let f = collaboration_fig1();
    let q = fig1_pattern();
    let m = bounded_simulation(&f.graph, &q).unwrap();
    let rg = ResultGraph::build(&f.graph, &q, &m);
    let ranked = rank_matches(&rg, &q, &m).unwrap();
    for r in &ranked {
        println!("f(SA, {}) = {:.6}", f.name_of(r.node), r.rank);
    }
    let ok = ranked.len() == 2
        && ranked[0].node == f.bob
        && (ranked[0].rank - 9.0 / 5.0).abs() < 1e-12
        && (ranked[1].rank - 7.0 / 3.0).abs() < 1e-12;
    verdict(ok, "both rank values exact; top-1 = Bob");
}

// ---------------------------------------------------------------- E3 --

fn e3_example3() {
    banner(
        "E3",
        "Example 3 — incremental maintenance under e1",
        "inserting e1 yields ΔM = {(SD, Fred)} without recomputing M(Q,G)",
    );
    let mut f = collaboration_fig1();
    let q = fig1_pattern();
    let mut inc = IncrementalBoundedSim::new(&f.graph, &q);
    f.graph.add_edge(f.e1.0, f.e1.1);
    let delta = inc.on_update(
        &f.graph,
        expfinder_graph::EdgeUpdate::Insert(f.e1.0, f.e1.1),
    );
    for d in &delta {
        println!(
            "ΔM: {} ({}, {})",
            if d.added { "+" } else { "−" },
            q.node(d.pattern_node).name.to_uppercase(),
            f.name_of(d.data_node)
        );
    }
    let stats = inc.stats();
    println!(
        "affected nodes examined: {} of {}",
        stats.affected_nodes,
        f.graph.node_count()
    );
    let fresh = bounded_simulation(&f.graph, &q).unwrap();
    let ok = delta.len() == 1
        && delta[0].added
        && delta[0].data_node == f.fred
        && inc.current() == fresh;
    verdict(ok, "ΔM = {(SD, Fred)}; maintained state equals recompute");
}

// ---------------------------------------------------------------- E4 --

fn e4_demo_queries(opts: &Opts) {
    banner(
        "E4",
        "Figs. 4–5 analogue — demo queries Q1–Q3 with top-1 experts",
        "three pattern queries with different conditions and topology; \
         the GUI shows each query's result graph and best expert",
    );
    let people = if opts.quick { 800 } else { 4000 };
    let g = collab_graph(people, SEED);
    println!(
        "collaboration network: {} people, {} edges",
        g.node_count(),
        g.edge_count()
    );
    let mut all_ok = true;
    for (name, q) in demo_queries() {
        let m = bounded_simulation(&g, &q).unwrap();
        if m.is_empty() {
            println!("{name}: no match");
            all_ok = false;
            continue;
        }
        let rg = ResultGraph::build(&g, &q, &m);
        let ranked = rank_matches(&rg, &q, &m).unwrap();
        let top = &ranked[0];
        println!(
            "{name}: {} pairs, result graph {} nodes / {} edges, top-1 = node {} (rank {:.3})",
            m.total_pairs(),
            rg.node_count(),
            rg.edges().len(),
            top.node,
            top.rank
        );
    }
    verdict(all_ok, "all three demo queries return ranked experts");
}

// ---------------------------------------------------------------- E5 --

fn e5_engine_scaling(opts: &Opts) {
    banner(
        "E5",
        "query-engine scalability",
        "simulation evaluates in quadratic time, bounded simulation in cubic \
         time; both remain practical on large graphs while isomorphism explodes",
    );
    let sizes: &[usize] = if opts.quick {
        &[1000, 2000, 4000]
    } else {
        &[2000, 4000, 8000, 16000, 32000]
    };
    let reps = if opts.quick { 1 } else { 3 };
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "|V|", "|E|", "simulation", "bounded"
    );
    let mut times = Vec::new();
    for &n in sizes {
        let g = collab_graph(n, SEED);
        let qs = collab_pattern_sim();
        let qb = collab_pattern();
        let t_sim = median_of(reps, || graph_simulation(&g, &qs).unwrap());
        let t_b = median_of(reps, || bounded_simulation(&g, &qb).unwrap());
        println!(
            "{:>8} {:>10} {:>12} {:>12}",
            g.node_count(),
            g.edge_count(),
            fmt_dur(t_sim),
            fmt_dur(t_b)
        );
        times.push((g.size(), t_sim, t_b));
    }
    // isomorphism blow-up demonstration (step-capped)
    let iso_sizes: &[usize] = if opts.quick {
        &[200, 400]
    } else {
        &[500, 1000, 2000]
    };
    println!("\nsubgraph isomorphism (baseline, step cap 2e6):");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "|V|", "steps", "time", "capped"
    );
    for &n in iso_sizes {
        let g = collab_graph(n, SEED);
        let q = collab_pattern();
        let (r, t) = time(|| {
            subgraph_isomorphism(
                &g,
                &q,
                IsoOptions {
                    limit: 0,
                    max_steps: 2_000_000,
                },
            )
        });
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            g.node_count(),
            r.steps,
            fmt_dur(t),
            r.truncated
        );
    }
    // shape check: runtime grows no worse than ~quadratically with |G|
    let (s0, t0s, t0b) = times[0];
    let (s1, t1s, t1b) = *times.last().unwrap();
    let growth = (s1 as f64 / s0 as f64).powi(2) * 4.0;
    let ok = t1s.as_secs_f64() / t0s.as_secs_f64().max(1e-9) < growth
        && t1b.as_secs_f64() / t0b.as_secs_f64().max(1e-9) < growth;
    verdict(
        ok,
        "matching runtimes grow polynomially (well under x^2 envelope)",
    );
}

// ---------------------------------------------------------------- E6 --

fn e6_topk(opts: &Opts) {
    banner(
        "E6",
        "top-K selection",
        "top-K matches are selected by the ranking function on the result \
         graph; cost is dominated by result-graph construction, not K",
    );
    let people = if opts.quick { 1000 } else { 8000 };
    let g = collab_graph(people, SEED);
    let q = collab_pattern();
    let m = bounded_simulation(&g, &q).unwrap();
    let (rg, t_rg) = time(|| ResultGraph::build(&g, &q, &m));
    println!(
        "matches: {} pairs; result graph: {} nodes / {} edges (built in {})",
        m.total_pairs(),
        rg.node_count(),
        rg.edges().len(),
        fmt_dur(t_rg)
    );
    println!("{:>6} {:>12} {:>14}", "K", "rank time", "top-K returned");
    let mut times: Vec<Duration> = Vec::new();
    for &k in &[1usize, 5, 10, 50, 200] {
        let (ranked, t) = time(|| {
            let mut r = rank_matches(&rg, &q, &m).unwrap();
            r.truncate(k);
            r
        });
        println!("{:>6} {:>12} {:>14}", k, fmt_dur(t), ranked.len());
        times.push(t);
    }
    let max = times.iter().max().unwrap().as_secs_f64();
    let min = times.iter().min().unwrap().as_secs_f64().max(1e-9);
    verdict(
        max / min < 3.0,
        "ranking cost is insensitive to K (one pass ranks all matches)",
    );
}

// ---------------------------------------------------------------- E7 --

fn e7_unit_updates(opts: &Opts) {
    banner(
        "E7",
        "incremental vs batch — unit updates",
        "for single edge insertions/deletions incremental evaluation beats \
         recomputation, and the gap grows with |G|",
    );
    let sizes: &[usize] = if opts.quick {
        &[1000, 2000]
    } else {
        &[2000, 4000, 8000, 16000]
    };
    let updates_per_size = if opts.quick { 10 } else { 30 };
    println!(
        "{:>8} {:>14} {:>14} {:>9}  {:>14} {:>14} {:>9}",
        "|V|", "inc(sim)", "batch(sim)", "speedup", "inc(bsim)", "batch(bsim)", "speedup"
    );
    let mut ok = true;
    for &n in sizes {
        let g0 = collab_graph(n, SEED);
        let qs = collab_pattern_sim();
        let qb = collab_pattern();

        // simulation
        let mut g = g0.clone();
        let mut inc = IncrementalSim::new(&g, &qs).unwrap();
        let ups = random_updates(
            &mut StdRng::seed_from_u64(SEED ^ 1),
            &g,
            updates_per_size,
            0.5,
        );
        let mut t_inc_sim = Duration::ZERO;
        let mut t_batch_sim = Duration::ZERO;
        for &up in &ups {
            g.apply(up);
            t_inc_sim += time(|| inc.on_update(&g, up)).1;
            t_batch_sim += time(|| graph_simulation(&g, &qs).unwrap()).1;
        }

        // bounded simulation
        let mut g = g0.clone();
        let mut incb = IncrementalBoundedSim::new(&g, &qb);
        let ups = random_updates(
            &mut StdRng::seed_from_u64(SEED ^ 2),
            &g,
            updates_per_size,
            0.5,
        );
        let mut t_inc_b = Duration::ZERO;
        let mut t_batch_b = Duration::ZERO;
        for &up in &ups {
            g.apply(up);
            t_inc_b += time(|| incb.on_update(&g, up)).1;
            t_batch_b += time(|| bounded_simulation(&g, &qb).unwrap()).1;
        }

        let sp_s = t_batch_sim.as_secs_f64() / t_inc_sim.as_secs_f64().max(1e-12);
        let sp_b = t_batch_b.as_secs_f64() / t_inc_b.as_secs_f64().max(1e-12);
        println!(
            "{:>8} {:>14} {:>14} {:>8.1}x  {:>14} {:>14} {:>8.1}x",
            n,
            fmt_dur(t_inc_sim),
            fmt_dur(t_batch_sim),
            sp_s,
            fmt_dur(t_inc_b),
            fmt_dur(t_batch_b),
            sp_b
        );
        ok &= sp_s > 1.0 && sp_b > 1.0;
    }
    verdict(ok, "incremental beats batch on unit updates at every size");
}

// ---------------------------------------------------------------- E8 --

fn e8_batch_crossover(opts: &Opts) {
    banner(
        "E8",
        "incremental vs batch — batch updates (the crossover)",
        "incremental outperforms batch recomputation for ΔG up to ~30% of |G| \
         for simulation and ~10% for bounded simulation (crossover ordering: \
         bounded crosses earlier than simulation)",
    );
    let people = if opts.quick { 1500 } else { 6000 };
    let fractions: &[f64] = if opts.quick {
        &[0.01, 0.05, 0.10, 0.30]
    } else {
        &[0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50]
    };
    let g0 = collab_graph(people, SEED);
    let edge_count = g0.edge_count();
    println!("graph: {} nodes, {} edges\n", g0.node_count(), edge_count);

    let mut crossover_sim: Option<f64> = None;
    let mut crossover_bsim: Option<f64> = None;

    for (label, is_sim) in [("simulation", true), ("bounded simulation", false)] {
        println!("--- {label} ---");
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>9}",
            "ΔG/|E|", "updates", "incremental", "batch", "inc wins"
        );
        for &frac in fractions {
            let count = ((edge_count as f64 * frac) as usize).max(1);
            let ups = random_updates(&mut StdRng::seed_from_u64(SEED ^ 77), &g0, count, 0.5);

            // incremental: process the whole ΔG through the maintainer
            let mut g = g0.clone();
            let t_inc = if is_sim {
                let q = collab_pattern_sim();
                let mut inc = IncrementalSim::new(&g, &q).unwrap();
                time(|| {
                    for &up in &ups {
                        g.apply(up);
                        inc.on_update(&g, up);
                    }
                })
                .1
            } else {
                let q = collab_pattern();
                let mut inc = IncrementalBoundedSim::new(&g, &q);
                time(|| {
                    for &up in &ups {
                        g.apply(up);
                        inc.on_update(&g, up);
                    }
                })
                .1
            };

            // batch: apply ΔG, recompute once from scratch
            let mut g = g0.clone();
            for &up in &ups {
                g.apply(up);
            }
            let t_batch = if is_sim {
                let q = collab_pattern_sim();
                time(|| graph_simulation(&g, &q).unwrap()).1
            } else {
                let q = collab_pattern();
                time(|| bounded_simulation(&g, &q).unwrap()).1
            };

            let wins = t_inc < t_batch;
            println!(
                "{:>7.0}% {:>10} {:>14} {:>14} {:>9}",
                frac * 100.0,
                ups.len(),
                fmt_dur(t_inc),
                fmt_dur(t_batch),
                wins
            );
            let slot = if is_sim {
                &mut crossover_sim
            } else {
                &mut crossover_bsim
            };
            if !wins && slot.is_none() {
                *slot = Some(frac);
            }
        }
        println!();
    }
    let cs = crossover_sim.map_or(">50%".into(), |f| format!("{:.0}%", f * 100.0));
    let cb = crossover_bsim.map_or(">50%".into(), |f| format!("{:.0}%", f * 100.0));
    println!("measured crossover: simulation at {cs}, bounded simulation at {cb}");
    let ok = match (crossover_sim, crossover_bsim) {
        (None, _) => true, // sim never crossed within range: strictly better
        (Some(s), Some(b)) => b <= s,
        (Some(_), None) => false,
    };
    verdict(
        ok,
        "shape holds: bounded simulation crosses over no later than simulation",
    );
}

// ---------------------------------------------------------------- E9 --

fn e9_compression_ratio(opts: &Opts) {
    banner(
        "E9",
        "compression ratio",
        "graphs are reduced by 57% on average",
    );
    let scale = if opts.quick { 4 } else { 1 };
    // the paper's datasets are real social graphs; the "social suite"
    // below has their structure (hubs, equivalent leaves, repeated
    // hierarchy). Uniform-random graphs are reported as adversarial
    // baselines — bisimulation has nothing to merge there, by design.
    let social: Vec<(&str, DiGraph)> = vec![
        ("twitter-like", twitter_graph(40_000 / scale, SEED)),
        ("twitter-dense", twitter_graph(20_000 / scale, SEED ^ 5)),
        ("hierarchy", hierarchy_graph(20_000 / scale, SEED)),
        ("collaboration", collab_graph(8_000 / scale, SEED)),
    ];
    let adversarial: Vec<(&str, DiGraph)> = vec![
        ("scale-free (pa)", pa_graph(8_000 / scale, SEED)),
        ("erdos-renyi", er_graph(8_000 / scale, 4, SEED)),
    ];
    println!(
        "{:>16} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "graph", "|V|", "|E|", "|Vc|", "|Ec|", "reduction"
    );
    let report = |name: &str, g: &DiGraph| -> f64 {
        let c = compress_graph(g, CompressionMethod::Bisimulation).unwrap();
        let s = c.stats();
        println!(
            "{:>16} {:>9} {:>9} {:>9} {:>9} {:>9.1}%",
            name,
            s.original_nodes,
            s.original_edges,
            s.compressed_nodes,
            s.compressed_edges,
            s.size_reduction() * 100.0
        );
        s.size_reduction()
    };
    let mut reductions = Vec::new();
    for (name, g) in &social {
        reductions.push(report(name, g));
    }
    println!(
        "{:>16} --- adversarial baselines (uniform randomness) ---",
        ""
    );
    for (name, g) in &adversarial {
        report(name, g);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!(
        "average size reduction over the social suite: {:.1}% (paper: 57%)",
        avg * 100.0
    );
    verdict(
        avg > 0.40,
        "social-shaped graphs compress in the paper's ballpark",
    );
}

// --------------------------------------------------------------- E10 --

fn e10_compressed_query(opts: &Opts) {
    banner(
        "E10",
        "querying compressed graphs",
        "evaluating on G_c instead of G reduces query time by ~70%",
    );
    let n = if opts.quick { 10_000 } else { 40_000 };
    let g = twitter_graph(n, SEED);
    let c = compress_graph(&g, CompressionMethod::Bisimulation).unwrap();
    let s = c.stats();
    println!(
        "graph {} nodes / {} edges → compressed {} / {} ({:.1}% smaller)",
        s.original_nodes,
        s.original_edges,
        s.compressed_nodes,
        s.compressed_edges,
        s.size_reduction() * 100.0
    );
    let reps = if opts.quick { 1 } else { 3 };
    let patterns: Vec<(&str, Pattern)> = vec![
        ("influencer (bounded)", twitter_pattern()),
        ("influencer (simulation)", twitter_pattern().as_simulation()),
    ];
    println!(
        "\n{:>26} {:>12} {:>16} {:>10}",
        "query", "on G", "on Gc (+expand)", "saved"
    );
    let mut savings = Vec::new();
    let mut exact = true;
    for (name, q) in &patterns {
        let run_direct = || {
            if q.is_simulation() {
                graph_simulation(&g, q).unwrap()
            } else {
                bounded_simulation(&g, q).unwrap()
            }
        };
        let run_compressed = || {
            let on_c = if q.is_simulation() {
                graph_simulation(&c, q).unwrap()
            } else {
                bounded_simulation(&c, q).unwrap()
            };
            c.expand(&on_c)
        };
        let t_g = median_of(reps, run_direct);
        let t_c = median_of(reps, run_compressed);
        exact &= run_direct() == run_compressed();
        let saved = 1.0 - t_c.as_secs_f64() / t_g.as_secs_f64().max(1e-12);
        println!(
            "{:>26} {:>12} {:>16} {:>9.1}%",
            name,
            fmt_dur(t_g),
            fmt_dur(t_c),
            saved * 100.0
        );
        savings.push(saved);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "average query-time saving: {:.1}% (paper: ~70%)",
        avg * 100.0
    );
    verdict(
        exact && avg > 0.30,
        "results identical; substantial query-time saving on G_c",
    );
}

// --------------------------------------------------------------- E11 --

fn e11_compression_maintenance(opts: &Opts) {
    banner(
        "E11",
        "maintaining compressed graphs",
        "incremental maintenance outperforms recompressing from scratch, \
         even for large batches",
    );
    let n = if opts.quick { 5_000 } else { 20_000 };
    let g0 = twitter_graph(n, SEED);
    let batches: &[usize] = if opts.quick {
        &[10, 100]
    } else {
        &[10, 50, 100, 500, 1000, 4000]
    };
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>8} {:>8}",
        "|ΔG|", "maintain", "recompress", "wins", "drift", "splits"
    );
    let mut ok = true;
    for &count in batches {
        let ups = random_updates(&mut StdRng::seed_from_u64(SEED ^ 9), &g0, count, 0.5);
        // maintain: per-update partition upkeep + ONE quotient refresh
        let mut g = g0.clone();
        let mut mc = MaintainedCompression::new(&g, CompressionMethod::Bisimulation).unwrap();
        let t_maint = time(|| {
            for &up in &ups {
                g.apply(up);
                mc.on_update(&g, up);
            }
            mc.refresh(&g);
        })
        .1;
        // recompress: full compression of the updated graph from scratch
        let t_rec = time(|| compress_graph(&g, CompressionMethod::Bisimulation).unwrap()).1;
        let wins = t_maint < t_rec;
        println!(
            "{:>8} {:>14} {:>14} {:>9} {:>8.2} {:>8}",
            count,
            fmt_dur(t_maint),
            fmt_dur(t_rec),
            wins,
            mc.drift(),
            mc.stats().splits
        );
        // the paper claims wins "even when large batch updates are
        // incurred"; require wins through the 1000-update batch
        if count <= 1000 {
            ok &= wins;
        }
    }
    verdict(
        ok,
        "maintaining G_c beats recompression through 1000-update batches",
    );
}

// --------------------------------------------------------------- E12 --

fn e12_ablations(opts: &Opts) {
    banner(
        "E12",
        "ablations — design choices called out in DESIGN.md",
        "query-plan edge ordering, parallel result-graph construction, and \
         the compression equivalence all matter",
    );
    let people = if opts.quick { 2000 } else { 8000 };
    let g = collab_graph(people, SEED);
    let q = collab_pattern();
    let reps = if opts.quick { 1 } else { 3 };

    // (a) plan ordering
    let t_sel = median_of(reps, || {
        bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::Selective))
    });
    let (r, _stats) = bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::Selective));
    let t_dec = median_of(reps, || {
        bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::DeclarationOrder))
    });
    let (r2, _stats2) =
        bounded_simulation_with(&g, &q, EvalOptions::with_plan(PlanMode::DeclarationOrder));
    println!(
        "plan ordering:   selective {} vs declaration {}",
        fmt_dur(t_sel),
        fmt_dur(t_dec)
    );
    let same = r == r2;

    // (b) parallel result graph — needs a workload with real per-edge
    //     BFS volume to amortize thread startup
    let big = twitter_graph(if opts.quick { 10_000 } else { 60_000 }, SEED);
    let qt = twitter_pattern();
    let m = bounded_simulation(&big, &qt).unwrap();
    let t1 = median_of(reps, || {
        ResultGraph::build_with(&big, &qt, &m, BuildOptions { threads: 1 })
    });
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let t4 = median_of(reps, || {
        ResultGraph::build_with(&big, &qt, &m, BuildOptions { threads: cores })
    });
    println!(
        "result graph:    1 thread {} vs {} threads {} ({} cores available)",
        fmt_dur(t1),
        cores,
        fmt_dur(t4),
        cores
    );

    // (c) compression equivalence
    let small = collab_graph(if opts.quick { 1000 } else { 3000 }, SEED);
    let (bi, t_bi) = time(|| compress_graph(&small, CompressionMethod::Bisimulation).unwrap());
    let (se, t_se) =
        time(|| compress_graph(&small, CompressionMethod::SimulationEquivalence).unwrap());
    println!(
        "compression:     bisim {} blocks in {} vs simeq {} blocks in {}",
        bi.stats().compressed_nodes,
        fmt_dur(t_bi),
        se.stats().compressed_nodes,
        fmt_dur(t_se)
    );

    // (d) dual simulation: the stronger semantics (extension) — how many
    //     matches do parent constraints prune, at what cost?
    let m_plain = bounded_simulation(&g, &q).unwrap();
    let (m_dual, t_dual) = time(|| expfinder_core::dual_simulation(&g, &q));
    println!(
        "dual simulation: {} of {} pairs survive parent constraints (extension, {})",
        m_dual.total_pairs(),
        m_plain.total_pairs(),
        fmt_dur(t_dual)
    );

    // (e) selectivity prefilter effect: a query with no experience
    //     condition has larger candidate sets
    let q_loose = expfinder_pattern::PatternBuilder::new()
        .node_output("sa", Predicate::label("SA"))
        .node("sd", Predicate::label("SD"))
        .edge("sa", "sd", expfinder_pattern::Bound::hops(2))
        .build()
        .unwrap();
    let t_loose = median_of(reps, || bounded_simulation(&g, &q_loose).unwrap());
    println!(
        "selectivity:     loose pattern {} vs full pattern {}",
        fmt_dur(t_loose),
        fmt_dur(t_sel)
    );

    verdict(
        same && se.stats().compressed_nodes <= bi.stats().compressed_nodes,
        "plans agree on results; simeq compresses at least as much as bisim",
    );
}

// --------------------------------------------------------------- E13 --

fn e13_batch_parallel(opts: &Opts) {
    banner(
        "E13",
        "batch query execution — sequential vs parallel (extension)",
        "a batch of queries drained across a scoped pool, each query using \
         the CSR fast path with parallel refinement, returns bit-identical \
         results to the sequential engine; BENCH_2.json records the baseline",
    );
    let bench_opts = if opts.quick {
        BatchBenchOptions::quick()
    } else {
        BatchBenchOptions::default()
    };
    // quick runs record to a scratch file so the checked-in full-profile
    // baseline (BENCH_2.json) is only ever rewritten by a full run;
    // --out redirects either profile (CI writes a fresh doc next to the
    // checked-in baseline and diffs the two)
    let out = opts.out.as_deref().unwrap_or(if opts.quick {
        "BENCH_smoke.json"
    } else {
        "BENCH_2.json"
    });
    // run_batch_bench asserts sequential/parallel result equality itself
    let doc = run_batch_bench(&bench_opts);
    let written = write_bench_json(out, &doc).is_ok();
    let identical = doc
        .field("workloads")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .all(|w| {
            w.field("batch")
                .unwrap()
                .field("results_identical")
                .unwrap()
                .as_bool()
                .unwrap()
        });
    verdict(
        written && identical,
        "parallel results identical to sequential; baseline recorded",
    );
}
