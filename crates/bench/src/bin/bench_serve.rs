//! Standalone server throughput benchmark.
//!
//! Usage:
//!   cargo run --release -p expfinder-bench --bin bench_serve
//!   cargo run --release -p expfinder-bench --bin bench_serve -- --quick
//!   cargo run --release -p expfinder-bench --bin bench_serve -- \
//!       --clients 8 --requests 200 --out BENCH_3.json --min-rps 100
//!
//! Boots an in-process `expfinder-server`, hammers `/query` and `/batch`
//! from N concurrent client threads over real TCP, and writes the
//! machine-readable document (default `BENCH_3.json`). With `--min-rps X`
//! the process exits non-zero when the `/query` endpoint's requests per
//! second fall below `X` — the hook the `bench-smoke` CI job attaches to
//! as an advisory gate (promote to blocking on beefier runners).

use expfinder_bench::batchbench::write_bench_json;
use expfinder_bench::servebench::{run_serve_bench, ServeBenchOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut out = "BENCH_3.json".to_owned();
    let mut min_rps: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--clients" => clients = Some(take(&mut i).parse().expect("bad --clients")),
            "--requests" => requests = Some(take(&mut i).parse().expect("bad --requests")),
            "--workers" => workers = Some(take(&mut i).parse().expect("bad --workers")),
            "--batch" => batch = Some(take(&mut i).parse().expect("bad --batch")),
            "--out" => out = take(&mut i),
            "--min-rps" => min_rps = Some(take(&mut i).parse().expect("bad --min-rps")),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // explicit flags win over the profile, whatever the argument order
    let mut opts = if quick {
        ServeBenchOptions::quick()
    } else {
        ServeBenchOptions::default()
    };
    if let Some(c) = clients {
        opts.clients = c;
    }
    if let Some(r) = requests {
        opts.requests_per_client = r;
    }
    if let Some(w) = workers {
        opts.workers = w;
    }
    if let Some(b) = batch {
        opts.batch_size = b;
    }

    let doc = run_serve_bench(&opts);
    write_bench_json(&out, &doc).expect("writing bench json");

    if let Some(min) = min_rps {
        let rps = doc
            .field("endpoints")
            .unwrap()
            .field("query")
            .unwrap()
            .field("rps")
            .unwrap()
            .as_f64()
            .unwrap();
        if rps < min {
            eprintln!("GATE FAIL: /query throughput {rps:.1} req/s < required {min:.1} req/s");
            std::process::exit(1);
        }
        println!("gate passed: /query throughput {rps:.1} req/s >= {min:.1} req/s");
    }
}
