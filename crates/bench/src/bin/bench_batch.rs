//! Standalone batch/parallel benchmark.
//!
//! Usage:
//!   cargo run --release -p expfinder-bench --bin bench_batch
//!   cargo run --release -p expfinder-bench --bin bench_batch -- --quick
//!   cargo run --release -p expfinder-bench --bin bench_batch -- \
//!       --threads 8 --batch 64 --out BENCH_2.json --min-batch-speedup 3.0
//!
//! Runs the sequential-vs-parallel measurement of
//! [`expfinder_bench::batchbench`] and writes the machine-readable
//! document (default `BENCH_2.json`). With `--min-batch-speedup X` the
//! process exits non-zero when any workload's batch speedup falls below
//! `X` — the hook a perf-gating CI job attaches to on multi-core runners.

use expfinder_bench::batchbench::{run_batch_bench, write_bench_json, BatchBenchOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut out = "BENCH_2.json".to_owned();
    let mut min_speedup: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--threads" => threads = Some(take(&mut i).parse().expect("bad --threads")),
            "--batch" => batch = Some(take(&mut i).parse().expect("bad --batch")),
            "--out" => out = take(&mut i),
            "--min-batch-speedup" => {
                min_speedup = Some(take(&mut i).parse().expect("bad --min-batch-speedup"))
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // explicit flags win over the profile, whatever the argument order
    let mut opts = if quick {
        BatchBenchOptions::quick()
    } else {
        BatchBenchOptions::default()
    };
    if let Some(t) = threads {
        opts.threads = t;
    }
    if let Some(b) = batch {
        opts.batch_size = b;
    }

    let doc = run_batch_bench(&opts);
    write_bench_json(&out, &doc).expect("writing bench json");

    if let Some(min) = min_speedup {
        let workloads = doc.field("workloads").unwrap().as_array().unwrap();
        let mut ok = true;
        for w in workloads {
            let name = w.field("name").unwrap().as_str().unwrap();
            let sp = w
                .field("batch")
                .unwrap()
                .field("speedup")
                .unwrap()
                .as_f64()
                .unwrap();
            if sp < min {
                eprintln!("GATE FAIL: {name} batch speedup {sp:.2}x < required {min:.2}x");
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("gate passed: all batch speedups >= {min:.2}x");
    }
}
