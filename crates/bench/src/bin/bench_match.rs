//! Standalone matching-engine benchmark (old queue path vs new frontier
//! path).
//!
//! Usage:
//!   cargo run --release -p expfinder-bench --bin bench_match
//!   cargo run --release -p expfinder-bench --bin bench_match -- --quick
//!   cargo run --release -p expfinder-bench --bin bench_match -- \
//!       --out BENCH_4.json --min-speedup 1.5
//!
//! Runs the sequential old-vs-new measurement of
//! [`expfinder_bench::matchbench`] and writes the machine-readable
//! document (default `BENCH_4.json`). With `--min-speedup X` the process
//! exits non-zero when any workload's single-query speedup falls below
//! `X` — the advisory perf gate the `bench-smoke` CI job attaches to.

use expfinder_bench::batchbench::write_bench_json;
use expfinder_bench::matchbench::{run_match_bench, MatchBenchOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_4.json".to_owned();
    let mut min_speedup: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => out = take(&mut i),
            "--min-speedup" => min_speedup = Some(take(&mut i).parse().expect("bad --min-speedup")),
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let doc = run_match_bench(&MatchBenchOptions { quick });
    write_bench_json(&out, &doc).expect("writing bench json");

    if let Some(min) = min_speedup {
        let workloads = doc.field("workloads").unwrap().as_array().unwrap();
        let mut ok = true;
        for w in workloads {
            let name = w.field("name").unwrap().as_str().unwrap();
            let sp = w.field("speedup").unwrap().as_f64().unwrap();
            if sp < min {
                eprintln!("GATE FAIL: {name} single-query speedup {sp:.2}x < required {min:.2}x");
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("gate passed: all single-query speedups >= {min:.2}x");
    }
}
