//! Standalone matching-engine benchmark: the queue-vs-frontier engine
//! comparison of PR 4 plus the cold-vs-warm reach-index comparison of
//! PR 5.
//!
//! Usage:
//!   cargo run --release -p expfinder-bench --bin bench_match
//!   cargo run --release -p expfinder-bench --bin bench_match -- --quick
//!   cargo run --release -p expfinder-bench --bin bench_match -- \
//!       --out BENCH_4.json --min-speedup 1.5 \
//!       --warm-out BENCH_5.json --min-warm-speedup 1.3 \
//!       --max-cancel-overhead 0.02
//!   cargo run --release -p expfinder-bench --bin bench_match -- \
//!       --plan-out plans.json
//!
//! `--plan-out FILE` is an exclusive mode: instead of the timing
//! benchmarks it writes the deterministic planner-decision snapshot of
//! [`expfinder_bench::planbench::run_plan_bench`] and exits — CI diffs
//! that output against the checked-in `PLANS.json` (`just plan-check`).
//!
//! Two documents are written: the sequential old-vs-new measurement of
//! [`expfinder_bench::matchbench::run_match_bench`] (default
//! `BENCH_4.json`) and the cold-vs-warm multi-query measurement of
//! [`expfinder_bench::matchbench::run_warm_bench`] (default
//! `BENCH_5.json`). With `--min-speedup X` the process exits non-zero
//! when any PR-4 workload's single-query speedup falls below `X`; with
//! `--min-warm-speedup Y` it exits non-zero when any *gated* warm
//! workload's second-query-on-version speedup over the PR-4 frontier
//! path falls below `Y`; with `--max-cancel-overhead F` it exits
//! non-zero when carrying a *disarmed* `CancelToken` through the
//! chain workload costs more than fraction `F` over the token-free
//! path (0.02 holds the cancellation plumbing to within 2%) — the perf
//! gates the `bench-smoke` CI job attaches to.

use expfinder_bench::batchbench::write_bench_json;
use expfinder_bench::matchbench::{run_match_bench, run_warm_bench, MatchBenchOptions};
use expfinder_bench::planbench::run_plan_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_4.json".to_owned();
    let mut warm_out = "BENCH_5.json".to_owned();
    let mut plan_out: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut min_warm_speedup: Option<f64> = None;
    let mut max_cancel_overhead: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => out = take(&mut i),
            "--warm-out" => warm_out = take(&mut i),
            "--plan-out" => plan_out = Some(take(&mut i)),
            "--min-speedup" => min_speedup = Some(take(&mut i).parse().expect("bad --min-speedup")),
            "--min-warm-speedup" => {
                min_warm_speedup = Some(take(&mut i).parse().expect("bad --min-warm-speedup"))
            }
            "--max-cancel-overhead" => {
                max_cancel_overhead = Some(take(&mut i).parse().expect("bad --max-cancel-overhead"))
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = plan_out {
        let doc = run_plan_bench();
        write_bench_json(&path, &doc).expect("writing plan snapshot");
        println!("planner-decision snapshot written to {path}");
        return;
    }

    let opts = MatchBenchOptions { quick };
    let doc = run_match_bench(&opts);
    write_bench_json(&out, &doc).expect("writing bench json");
    let warm_doc = run_warm_bench(&opts);
    write_bench_json(&warm_out, &warm_doc).expect("writing warm bench json");

    let mut ok = true;
    if let Some(min) = min_speedup {
        let workloads = doc.field("workloads").unwrap().as_array().unwrap();
        for w in workloads {
            let name = w.field("name").unwrap().as_str().unwrap();
            let sp = w.field("speedup").unwrap().as_f64().unwrap();
            if sp < min {
                eprintln!("GATE FAIL: {name} single-query speedup {sp:.2}x < required {min:.2}x");
                ok = false;
            }
        }
        if ok {
            println!("gate passed: all single-query speedups >= {min:.2}x");
        }
    }
    if let Some(max) = max_cancel_overhead {
        let workloads = doc.field("workloads").unwrap().as_array().unwrap();
        let mut cancel_ok = true;
        for w in workloads {
            let name = w.field("name").unwrap().as_str().unwrap();
            let ov = w.field("cancel_check_overhead").unwrap().as_f64().unwrap();
            if ov > max {
                eprintln!(
                    "GATE FAIL: {name} disarmed cancel-check overhead {:.2}% > allowed {:.2}%",
                    ov * 100.0,
                    max * 100.0
                );
                cancel_ok = false;
            }
        }
        if cancel_ok {
            println!(
                "cancel gate passed: disarmed token overhead <= {:.2}% on every workload",
                max * 100.0
            );
        }
        ok &= cancel_ok;
    }
    if let Some(min) = min_warm_speedup {
        let workloads = warm_doc.field("workloads").unwrap().as_array().unwrap();
        let mut warm_ok = true;
        for w in workloads {
            if !w.field("gated").unwrap().as_bool().unwrap() {
                continue;
            }
            let name = w.field("name").unwrap().as_str().unwrap();
            let pat = w.field("pattern").unwrap().as_str().unwrap();
            let sp = w.field("warm_speedup").unwrap().as_f64().unwrap();
            if sp < min {
                eprintln!(
                    "GATE FAIL: {name}/{pat} warm-query speedup {sp:.2}x < required {min:.2}x"
                );
                warm_ok = false;
            }
        }
        if warm_ok {
            println!("warm gate passed: all gated warm speedups >= {min:.2}x");
        }
        ok &= warm_ok;
    }
    if !ok {
        std::process::exit(1);
    }
}
