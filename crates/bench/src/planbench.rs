//! Deterministic planner-decision snapshot (PR 6).
//!
//! Replays a fixed set of query scenarios against seeded workload graphs
//! and records every [`PlanDecision`] the cost-based planner makes — the
//! chosen route, the planned route before any preference override, and
//! each candidate's estimated cost. The planner is deterministic in its
//! inputs (graph sizes and read/hit counters; wall-clock never decides),
//! so the resulting document is bit-identical across runs and machines
//! and can be diffed against the checked-in `PLANS.json` in CI: a diff
//! means a planner behavior change that must be reviewed and the
//! snapshot regenerated (`just plan-snapshot`), not a flaky failure.
//!
//! Costs are rounded to integer work units before encoding, and an
//! unamortizable candidate (`+∞`, e.g. a CSR build on a version's first
//! read) is encoded as the string `"inf"` — the same convention the wire
//! protocol uses for `timings.plan`.

use crate::matchbench::{collab_team_star_pattern, twitter_audience_pattern};
use crate::{collab_graph, collab_pattern, json_obj as obj, twitter_graph, SEED};
use expfinder_engine::{
    EngineConfig, ExecConfig, ExpFinder, GraphHandle, PlanDecision, QueryResponse, Route,
};
use expfinder_graph::json::Value;
use expfinder_graph::{EdgeUpdate, NodeId};
use expfinder_pattern::Pattern;

fn prefer_str(prefer: Route) -> &'static str {
    match prefer {
        Route::Auto => "auto",
        Route::Compressed => "compressed",
        Route::Direct => "direct",
    }
}

/// Integer work units, or `"inf"` for an unamortizable candidate.
fn cost_value(cost: f64) -> Value {
    if cost.is_finite() {
        Value::Int(cost.round() as i64)
    } else {
        Value::Str("inf".into())
    }
}

fn plan_doc(plan: &PlanDecision) -> Value {
    let candidates: Vec<Value> = plan
        .candidates
        .iter()
        .map(|c| {
            obj(vec![
                ("route", Value::Str(c.route.as_str().to_owned())),
                ("cost", cost_value(c.cost)),
            ])
        })
        .collect();
    obj(vec![
        ("chosen", Value::Str(plan.chosen.as_str().to_owned())),
        ("planned", Value::Str(plan.planned.as_str().to_owned())),
        ("overridden", Value::Bool(plan.overridden)),
        ("candidates", Value::Array(candidates)),
    ])
}

/// Run one query and record its decision.
fn step(
    engine: &ExpFinder,
    h: &GraphHandle,
    pattern: &Pattern,
    prefer: Route,
    index: usize,
) -> (Value, QueryResponse) {
    let resp = engine
        .query(h)
        .pattern(pattern.clone())
        .prefer(prefer)
        .run()
        .expect("plan scenario query");
    let doc = obj(vec![
        ("step", Value::Int(index as i64)),
        ("prefer", Value::Str(prefer_str(prefer).to_owned())),
        ("plan", plan_doc(&resp.plan)),
    ]);
    (doc, resp)
}

/// One scenario: a fresh engine, one seeded graph, a scripted sequence
/// of queries (each `(pattern, prefer)`), with optional update batches
/// and compression between steps driven by the closure.
fn scenario(
    name: &str,
    exec: ExecConfig,
    graph: expfinder_graph::DiGraph,
    script: impl FnOnce(&ExpFinder, &GraphHandle, &mut Vec<Value>),
) -> Value {
    let engine = ExpFinder::new(EngineConfig {
        exec,
        ..EngineConfig::default()
    });
    let nodes = expfinder_graph::GraphView::node_count(&graph);
    let edges = expfinder_graph::GraphView::edge_count(&graph);
    let h = engine.add_graph(name, graph).expect("add scenario graph");
    let mut steps = Vec::new();
    script(&engine, &h, &mut steps);
    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("nodes", Value::Int(nodes as i64)),
        ("edges", Value::Int(edges as i64)),
        ("threads", Value::Int(exec.threads as i64)),
        ("steps", Value::Array(steps)),
    ])
}

/// Build the full plan-decision document. Purely deterministic: seeded
/// graphs, scripted query sequences, counter-driven cost estimates.
pub fn run_plan_bench() -> Value {
    let mut scenarios = Vec::new();

    // A version's first read never pays a CSR build: live wins, and the
    // snapshot candidate is reported as unamortizable.
    scenarios.push(scenario(
        "collab_cold_first_read",
        ExecConfig::sequential(),
        collab_graph(1500, SEED),
        |engine, h, steps| {
            steps.push(step(engine, h, &collab_pattern(), Route::Direct, 0).0);
        },
    ));

    // Repeated class-seeded reads on one version warm into the
    // reach-indexed snapshot route (`prefer=direct` bypasses the cache
    // so every step is a planned decision).
    scenarios.push(scenario(
        "collab_warm_class_seeded",
        ExecConfig::sequential(),
        collab_graph(1500, SEED),
        |engine, h, steps| {
            let q = collab_team_star_pattern();
            for i in 0..3 {
                steps.push(step(engine, h, &q, Route::Direct, i).0);
            }
        },
    ));

    // An update batch rolls the version: reads-per-version reset and the
    // planner drops back to live adjacency.
    scenarios.push(scenario(
        "collab_update_heavy",
        ExecConfig::sequential(),
        collab_graph(1500, SEED),
        |engine, h, steps| {
            let q = collab_team_star_pattern();
            steps.push(step(engine, h, &q, Route::Direct, 0).0);
            steps.push(step(engine, h, &q, Route::Direct, 1).0);
            // insert-then-delete of one pair applies at least one change
            // whether or not the generator emitted that edge, so the
            // version always rolls
            engine
                .apply_updates(
                    h,
                    &[
                        EdgeUpdate::Insert(NodeId(0), NodeId(1)),
                        EdgeUpdate::Delete(NodeId(0), NodeId(1)),
                    ],
                )
                .expect("update batch");
            steps.push(step(engine, h, &q, Route::Direct, 2).0);
        },
    ));

    // With a thread budget the parallel snapshot route can amortize its
    // build inside a single large query.
    scenarios.push(scenario(
        "twitter_parallel",
        ExecConfig {
            threads: 4,
            batch_parallelism: 1,
        },
        twitter_graph(5000, SEED),
        |engine, h, steps| {
            let q = twitter_audience_pattern();
            steps.push(step(engine, h, &q, Route::Direct, 0).0);
            steps.push(step(engine, h, &q, Route::Direct, 1).0);
        },
    ));

    // A compression-safe pattern on a compressed graph routes to the
    // quotient; `prefer=compressed` on a later step records an override.
    scenarios.push(scenario(
        "collab_compressed",
        ExecConfig::sequential(),
        collab_graph(1500, SEED),
        |engine, h, steps| {
            engine.compress(h).expect("compress scenario graph");
            let q = collab_team_star_pattern();
            steps.push(step(engine, h, &q, Route::Auto, 0).0);
            steps.push(step(engine, h, &q, Route::Compressed, 1).0);
        },
    ));

    // Exact routes short-circuit the planner: the second identical auto
    // query is a cache hit with no costed candidates.
    scenarios.push(scenario(
        "collab_cache_hit",
        ExecConfig::sequential(),
        collab_graph(1500, SEED),
        |engine, h, steps| {
            let q = collab_pattern();
            steps.push(step(engine, h, &q, Route::Auto, 0).0);
            steps.push(step(engine, h, &q, Route::Auto, 1).0);
        },
    ));

    obj(vec![
        ("bench", Value::Str("plan_decisions".to_owned())),
        (
            "note",
            Value::Str(
                "planner decisions on scripted scenarios; deterministic in graph sizes \
                 and read/hit counters, so any diff against the checked-in snapshot is \
                 a planner behavior change"
                    .to_owned(),
            ),
        ),
        ("seed", Value::Int(SEED as i64)),
        ("scenarios", Value::Array(scenarios)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario_by_name<'a>(doc: &'a Value, name: &str) -> &'a Value {
        doc.field("scenarios")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|s| s.field("name").unwrap().as_str().unwrap() == name)
            .unwrap_or_else(|| panic!("scenario {name}"))
    }

    fn chosen(scenario: &Value, step: usize) -> String {
        scenario.field("steps").unwrap().as_array().unwrap()[step]
            .field("plan")
            .unwrap()
            .field("chosen")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    }

    #[test]
    fn plan_bench_is_deterministic() {
        let a = run_plan_bench();
        let b = run_plan_bench();
        assert_eq!(a, b, "decisions must not depend on wall-clock");
        // and survives the hand-rolled JSON round trip
        let text = a.to_string_pretty();
        assert_eq!(expfinder_graph::json::parse(&text).unwrap(), a);
    }

    #[test]
    fn scenarios_pin_the_acceptance_routes() {
        let doc = run_plan_bench();

        let cold = scenario_by_name(&doc, "collab_cold_first_read");
        assert_eq!(chosen(cold, 0), "live", "first read never pays a build");

        let warm = scenario_by_name(&doc, "collab_warm_class_seeded");
        assert_eq!(chosen(warm, 0), "live");
        assert_eq!(chosen(warm, 1), "snapshot", "second read amortizes");
        assert_eq!(chosen(warm, 2), "snapshot");

        let updates = scenario_by_name(&doc, "collab_update_heavy");
        assert_eq!(
            chosen(updates, 2),
            "live",
            "version roll resets the amortization"
        );

        let compressed = scenario_by_name(&doc, "collab_compressed");
        assert_eq!(chosen(compressed, 0), "compressed");

        let cache = scenario_by_name(&doc, "collab_cache_hit");
        assert_eq!(chosen(cache, 1), "cache");
        let exact = cache.field("steps").unwrap().as_array().unwrap()[1]
            .field("plan")
            .unwrap();
        assert!(exact
            .field("candidates")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }
}
