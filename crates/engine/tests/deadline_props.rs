//! Property tests for cooperative cancellation: a deadline firing at an
//! *arbitrary* cancellation point must leave the engine unpoisoned.
//!
//! The fuse token ([`CancelToken::after_checks`]) fires at an exact
//! armed check instead of racing a timer, so every refinement round of
//! every route is reachable deterministically. Whatever round the
//! evaluation was abandoned at, the very next un-deadlined query on the
//! same engine — cold, then through the now-warm cache — must be
//! bit-identical to the independent oracle's fresh evaluation, on both
//! the sequential and the parallel backend.

use expfinder_core::bounded_simulation;
use expfinder_engine::{
    CancelToken, EngineConfig, ExecConfig, ExpFinder, ExpFinderError, QuerySpec,
};
use expfinder_graph::{AttrValue, DiGraph, NodeId};
use expfinder_pattern::{Bound, PNodeId, Pattern, PatternEdge, PatternNode, Predicate};
use proptest::prelude::*;
use std::time::Duration;

/// A compact description of a random graph: labels per node + edge pairs.
#[derive(Clone, Debug)]
struct RawGraph {
    labels: Vec<u8>,
    exps: Vec<u8>,
    edges: Vec<(u8, u8)>,
}

fn raw_graph(max_nodes: usize) -> impl Strategy<Value = RawGraph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let exps = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..n * 3);
        (labels, exps, edges).prop_map(|(labels, exps, edges)| RawGraph {
            labels,
            exps,
            edges,
        })
    })
}

fn build_graph(raw: &RawGraph) -> DiGraph {
    let mut g = DiGraph::new();
    for (l, e) in raw.labels.iter().zip(&raw.exps) {
        g.add_node(
            &format!("L{l}"),
            [("experience", AttrValue::Int(*e as i64))],
        );
    }
    for &(a, b) in &raw.edges {
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// A compact description of a random pattern.
#[derive(Clone, Debug)]
struct RawPattern {
    labels: Vec<u8>,
    thresholds: Vec<u8>,
    edges: Vec<(u8, u8, u8)>, // from, to, bound (0 ⇒ unbounded)
}

fn raw_pattern() -> impl Strategy<Value = RawPattern> {
    (2usize..=4).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..3, n);
        let thresholds = proptest::collection::vec(0u8..3, n);
        let edges = proptest::collection::vec((0u8..n as u8, 0u8..n as u8, 0u8..4), 1..n * 2);
        (labels, thresholds, edges).prop_map(|(labels, thresholds, edges)| RawPattern {
            labels,
            thresholds,
            edges,
        })
    })
}

fn build_pattern(raw: &RawPattern) -> Pattern {
    let nodes: Vec<PatternNode> = raw
        .labels
        .iter()
        .zip(&raw.thresholds)
        .enumerate()
        .map(|(i, (l, t))| PatternNode {
            name: format!("v{i}"),
            predicate: Predicate::label(format!("L{l}"))
                .and(Predicate::attr_ge("experience", *t as i64)),
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for &(f, t, b) in &raw.edges {
        if f == t || !seen.insert((f, t)) {
            continue;
        }
        let bound = if b == 0 {
            Bound::Unbounded
        } else {
            Bound::hops(b as u32)
        };
        edges.push(PatternEdge {
            from: PNodeId(f as u32),
            to: PNodeId(t as u32),
            bound,
        });
    }
    Pattern::from_parts(nodes, edges, Some(PNodeId(0))).expect("valid pattern")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancel at the `fuse`-th cancellation point, then re-query: the
    /// abandoned evaluation must not have leaked partial state into the
    /// cache, the scratch pool, the cost profile or the CSR snapshot.
    #[test]
    fn deadline_at_any_round_leaves_engine_unpoisoned(
        rg in raw_graph(12),
        rp in raw_pattern(),
        fuse in 1u64..48,
        parallel in proptest::bool::ANY,
    ) {
        let g = build_graph(&rg);
        let q = build_pattern(&rp);
        let oracle = bounded_simulation(&g, &q).unwrap();

        let exec = if parallel {
            ExecConfig { threads: 3, batch_parallelism: 2 }
        } else {
            ExecConfig::sequential()
        };
        let engine = ExpFinder::new(EngineConfig { exec, ..EngineConfig::default() });
        let h = engine.add_graph("g", g).unwrap();

        // fire at an arbitrary cancellation point; a fuse longer than
        // the whole evaluation means the query completes — and then it
        // must already agree with the oracle
        let token = CancelToken::after_checks(fuse);
        match engine.query(&h).pattern(q.clone()).cancel_token(token).run() {
            Err(ExpFinderError::DeadlineExceeded(_)) => {}
            Ok(resp) => prop_assert_eq!(&*resp.matches, &oracle),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }

        // the next un-deadlined query is bit-identical to a fresh
        // evaluation — nothing partial was cached or left in scratch
        let after = engine.query(&h).pattern(q.clone()).top_k(3).run().unwrap();
        prop_assert_eq!(&*after.matches, &oracle);

        // and so is the cache hit that follows it
        let cached = engine.query(&h).pattern(q.clone()).run().unwrap();
        prop_assert_eq!(&*cached.matches, &oracle);

        // a zero batch budget deadlines every slot without poisoning
        // the batch scratch pool either
        let slots = engine.query_batch_deadline(
            &h,
            vec![QuerySpec::pattern(q.clone()), QuerySpec::pattern(q.clone())],
            Some(Duration::ZERO),
        );
        for slot in slots {
            match slot {
                Err(ExpFinderError::DeadlineExceeded(_)) => {}
                other => prop_assert!(false, "expected DeadlineExceeded, got {other:?}"),
            }
        }
        let final_run = engine.query(&h).pattern(q).run().unwrap();
        prop_assert_eq!(&*final_run.matches, &oracle);
    }
}
