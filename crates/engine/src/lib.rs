//! The ExpFinder query engine — the system of Fig. 2 of the paper,
//! redesigned as a **shareable, handle-based service**.
//!
//! [`ExpFinder`] is internally synchronized: the catalog (name → graph)
//! sits behind one `RwLock`, and every managed graph sits behind its own
//! `RwLock<StoredGraph>`. All query-side operations — [`ExpFinder::evaluate`],
//! [`ExpFinder::find_experts`], the fluent [`ExpFinder::query`] builder —
//! take `&self`, so an `Arc<ExpFinder>` can serve many threads at once:
//! reads on *different* graphs run fully in parallel, reads on the *same*
//! graph share its read lock, and [`ExpFinder::apply_updates`] briefly
//! takes that one graph's write lock without stalling traffic elsewhere.
//!
//! Graphs are addressed by cheap [`GraphHandle`]s returned from
//! [`ExpFinder::add_graph`] (or looked up with [`ExpFinder::handle`]).
//! A handle stays valid until its graph is removed; using it afterwards
//! yields [`ExpFinderError::StaleHandle`].
//!
//! Query routing follows paper §II: (1) the version-keyed result cache,
//! (2) registered incrementally-maintained queries, and otherwise (3)
//! the cost-based [`planner`], which estimates the work of every
//! applicable physical route — the live adjacency, the reach-indexed
//! CSR snapshot (sequential or parallel), the compressed quotient when
//! one exists and the query is compression-safe — from the graph's
//! [`CostProfile`] and picks the cheapest (quadratic simulation for
//! 1-bounded patterns, cubic bounded simulation for the rest, on
//! whichever substrate won). Every [`QueryResponse`] carries the full
//! [`PlanDecision`]. Updates flow through [`ExpFinder::apply_updates`],
//! which maintains the graph, its compressed counterpart and every
//! registered query in one pass.
//!
//! Execution is parallel by default ([`ExecConfig`]): direct evaluation
//! runs the parallel refinement of `expfinder-core` over an immutable
//! [`CsrGraph`] snapshot that the engine
//! builds lazily once per graph version and caches next to the
//! compression state (stale snapshots are detected by version and
//! rebuilt on the next parallel read), and whole batches of queries are
//! drained across a scoped worker pool by [`ExpFinder::query_batch`].
//! Parallelism never changes answers — the refinement computes the same
//! greatest fixpoint — and `ExecConfig::sequential()` restores the fully
//! deterministic single-threaded schedule.
//!
//! ```
//! use expfinder_engine::{ExpFinder, Route};
//! use expfinder_graph::fixtures::collaboration_fig1;
//! use expfinder_pattern::fixtures::fig1_pattern;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(ExpFinder::default());
//! let h = engine.add_graph("fig1", collaboration_fig1().graph).unwrap();
//! let resp = engine
//!     .query(&h)
//!     .pattern(fig1_pattern())
//!     .top_k(2)
//!     .prefer(Route::Auto)
//!     .run()
//!     .unwrap();
//! assert_eq!(resp.matches.total_pairs(), 7);
//! assert_eq!(resp.experts.len(), 2);
//! ```

pub mod cache;
pub mod planner;
pub mod report;
pub mod shell;
pub mod storage;

pub use planner::{
    CandidateCost, CostInputs, CostProfile, PlanContext, PlanDecision, PlanRoute, PlannerTotals,
};

use cache::QueryCache;
use expfinder_compress::maintain::MaintainedCompression;
use expfinder_compress::{CompressError, CompressStats, CompressionMethod};
pub use expfinder_core::CancelToken;
use expfinder_core::{
    bounded_simulation_cancellable, graph_simulation_cancellable,
    parallel_bounded_simulation_cancellable, parallel_simulation_cancellable, rank_matches_top_k,
    Cancelled, EvalOptions, EvalScratch, EvalStats, MatchError, MatchRelation, RankedMatch,
    ResultGraph, ScratchPool,
};
use expfinder_graph::io::GraphIoError;
use expfinder_graph::{CsrGraph, DiGraph, EdgeUpdate, GraphView, ReachIndex};
use expfinder_incremental::{IncrementalBoundedSim, IncrementalSim, Maintainer};
use expfinder_pattern::parser::ParseError;
use expfinder_pattern::{Pattern, PatternError};
use parking_lot::{Mutex, RwLock};
use planner::PlannerCounters;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use thiserror::Error;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Cached query results kept per engine (LRU).
    pub cache_capacity: usize,
    /// Route compression-safe queries through `G_c` automatically.
    pub auto_use_compressed: bool,
    /// Equivalence used when compressing.
    pub compression_method: CompressionMethod,
    /// Recompress when maintenance drift exceeds this factor.
    pub recompress_drift: f64,
    /// Parallel execution knobs (per-query threads + batch fan-out).
    pub exec: ExecConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 64,
            auto_use_compressed: true,
            compression_method: CompressionMethod::Bisimulation,
            recompress_drift: 2.0,
            exec: ExecConfig::default(),
        }
    }
}

/// Parallel execution configuration.
///
/// Both knobs default to [`std::thread::available_parallelism`]. Set
/// `threads: 1` for fully sequential, deterministic-schedule execution
/// (the escape hatch tests use); results are bit-identical either way —
/// the parallel refinement computes the same greatest fixpoint.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads *inside* one query: parallel sim/dualsim/bsim
    /// refinement over the CSR snapshot, and result-graph construction.
    /// `1` disables the parallel path; large graphs still evaluate over
    /// the CSR snapshot (sequential frontier engine, label-indexed
    /// seeding), while graphs too small to amortize a snapshot stay on
    /// the live adjacency whatever the budget.
    pub threads: usize,
    /// Queries evaluated concurrently by [`ExpFinder::query_batch`].
    pub batch_parallelism: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecConfig {
            threads: cores,
            batch_parallelism: cores,
        }
    }
}

impl ExecConfig {
    /// Fully sequential execution: one thread everywhere.
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            batch_parallelism: 1,
        }
    }
}

/// The single error hierarchy of the public API: every layer's failure
/// (matching, compression, pattern assembly, the DSL parser, IO) is
/// collapsed into this enum via `#[from]` conversions.
#[derive(Debug, Error)]
pub enum ExpFinderError {
    #[error("no graph named {0:?}")]
    UnknownGraph(String),
    #[error("graph {0:?} already exists")]
    DuplicateGraph(String),
    #[error("graph handle {0:?} is stale (the graph was removed)")]
    StaleHandle(String),
    #[error("graph handle {0:?} belongs to a different ExpFinder instance")]
    ForeignHandle(String),
    #[error("invalid graph name {0:?} (must be non-empty, without path separators or \"..\")")]
    InvalidGraphName(String),
    #[error("no registered query named {0:?}")]
    UnknownQuery(String),
    #[error("query {0:?} already registered")]
    DuplicateQuery(String),
    #[error("query builder needs a pattern before run()")]
    MissingPattern,
    #[error("match error: {0}")]
    Match(#[from] MatchError),
    #[error("compression error: {0}")]
    Compress(#[from] CompressError),
    #[error("pattern error: {0}")]
    Pattern(#[from] PatternError),
    #[error("pattern parse error: {0}")]
    Parse(#[from] ParseError),
    #[error("graph io error: {0}")]
    GraphIo(#[from] GraphIoError),
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),
    #[error("storage error: {0}")]
    Storage(String),
    #[error("query deadline exceeded during evaluation")]
    DeadlineExceeded(EvalStats),
}

/// A fired [`CancelToken`] surfaces from the matching core as
/// [`Cancelled`]; at the engine boundary it becomes the typed
/// [`ExpFinderError::DeadlineExceeded`], carrying the partial work
/// counters of the abandoned evaluation.
impl From<Cancelled> for ExpFinderError {
    fn from(c: Cancelled) -> Self {
        ExpFinderError::DeadlineExceeded(c.stats)
    }
}

impl ExpFinderError {
    /// The HTTP status code this error maps to on the wire.
    ///
    /// This is the **single** error→status mapping of the system: the
    /// `expfinder-server` crate uses it for every endpoint's error
    /// responses, and the shell's `batch` command reuses it when
    /// reporting per-slot failures, so a query that fails locally and
    /// one that fails over HTTP read the same way.
    pub fn http_status(&self) -> u16 {
        use ExpFinderError::*;
        match self {
            // the named resource does not exist (anymore)
            UnknownGraph(_) | UnknownQuery(_) | StaleHandle(_) => 404,
            // the named resource already exists
            DuplicateGraph(_) | DuplicateQuery(_) => 409,
            // the request itself is malformed
            InvalidGraphName(_) | MissingPattern | Pattern(_) | Parse(_) | GraphIo(_) => 400,
            // well-formed but unprocessable against this graph
            Match(_) | Compress(_) => 422,
            // the query's deadline fired mid-evaluation
            DeadlineExceeded(_) => 408,
            // server-side faults: cross-engine handles never come off the
            // wire, and IO/storage failures are not the client's doing
            ForeignHandle(_) | Io(_) | Storage(_) => 500,
        }
    }

    /// Partial work counters carried by a deadline abort, if this error
    /// is one — what the server surfaces under `timings` in 408 bodies.
    pub fn partial_stats(&self) -> Option<EvalStats> {
        match self {
            ExpFinderError::DeadlineExceeded(stats) => Some(*stats),
            _ => None,
        }
    }
}

/// Routing preference for one query (input to the engine).
///
/// Distinct from [`EvalRoute`], which reports the route actually taken.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Route {
    /// Paper §II order: cache → registered → compressed → direct.
    #[default]
    Auto,
    /// Evaluate on the compressed graph when possible (skipping the
    /// cache and registered queries); falls back to direct evaluation if
    /// the graph is not compressed or the pattern is not
    /// compression-safe.
    Compressed,
    /// Force direct evaluation, bypassing cache, registered queries and
    /// the compressed graph.
    Direct,
}

/// How a query was answered — surfaced so the demo (and the tests) can
/// verify the routing described in §II.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EvalRoute {
    /// Served from the result cache.
    Cache,
    /// Served from a registered query's incrementally-maintained state.
    Registered,
    /// Evaluated on the compressed graph, then expanded.
    Compressed,
    /// Evaluated directly with the quadratic simulation algorithm.
    DirectSimulation,
    /// Evaluated directly with the cubic bounded-simulation algorithm.
    DirectBounded,
}

/// Result of [`ExpFinder::evaluate`].
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    pub matches: Arc<MatchRelation>,
    pub route: EvalRoute,
    /// The graph version the matches correspond to (for consistency
    /// checks under concurrent updates).
    pub graph_version: u64,
}

/// Result of [`ExpFinder::find_experts`].
#[derive(Clone, Debug)]
pub struct ExpertReport {
    pub outcome: QueryOutcome,
    /// Best-K matches of the output node, ascending rank.
    pub experts: Vec<RankedMatch>,
}

/// Wall-clock breakdown of one [`QueryBuilder::run`].
#[derive(Copy, Clone, Debug, Default)]
pub struct QueryTimings {
    /// Evaluating the match relation (including cache/registered hits).
    pub evaluate: Duration,
    /// Building the result graph and ranking (zero if no `top_k`).
    pub rank: Duration,
    /// End-to-end time inside the engine.
    pub total: Duration,
}

/// Everything one fluent query returns.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Best-K matches of the output node (empty unless `top_k` was set).
    pub experts: Vec<RankedMatch>,
    /// The full match relation `M(Q,G)`.
    pub matches: Arc<MatchRelation>,
    /// The route that produced the relation.
    pub route: EvalRoute,
    /// The graph version the response corresponds to.
    pub graph_version: u64,
    /// Wall-clock breakdown.
    pub timings: QueryTimings,
    /// The planner's verdict: chosen route, the route it would have
    /// picked without a preference, and every costed candidate — the
    /// `timings.plan` object on the wire.
    pub plan: PlanDecision,
}

/// A registered query with its incremental maintainer.
struct RegisteredQuery {
    pattern: Pattern,
    maintainer: Box<dyn Maintainer + Send + Sync>,
}

/// One managed graph with everything the engine maintains alongside it.
struct StoredGraph {
    graph: DiGraph,
    compressed: Option<MaintainedCompression>,
    registered: HashMap<String, RegisteredQuery>,
    /// Read-optimized CSR snapshot, built lazily once per graph version
    /// (checked via [`CsrGraph::version`]) and shared by every parallel
    /// query at that version. Lives behind its own `Mutex` so it can be
    /// (re)built under the graph's *read* lock.
    csr: Mutex<Option<Arc<CsrGraph>>>,
    /// Per-version label-reachability index over the CSR snapshot
    /// ([`ReachIndex`]), shared via `Arc` by fluent queries, batch
    /// workers and HTTP workers at that version. Keyed by
    /// [`ReachIndex::version`], so an update invalidates it the same way
    /// it invalidates the snapshot: the next read allocates a fresh
    /// (empty, lazily filled) index.
    reach: Mutex<Option<Arc<ReachIndex>>>,
    /// The same per-version index for the *compressed* counterpart.
    /// Additionally cleared whenever the compression is (re)built at an
    /// unchanged graph version ([`ExpFinder::compress`]), since the
    /// quotient graph can change without a version bump.
    reach_c: Mutex<Option<Arc<ReachIndex>>>,
    /// Per-graph workload statistics the cost-based [`planner`] runs on:
    /// reads per version, reach-index hit rates, update and CSR-build
    /// counters.
    profile: CostProfile,
}

impl StoredGraph {
    fn new(graph: DiGraph) -> StoredGraph {
        StoredGraph {
            graph,
            compressed: None,
            registered: HashMap::new(),
            csr: Mutex::new(None),
            reach: Mutex::new(None),
            reach_c: Mutex::new(None),
            profile: CostProfile::default(),
        }
    }

    /// The reach index in `slot` for `version`, allocating a fresh one
    /// when the cached index belongs to an older version (the
    /// invalidation rule: one index per graph version, dropped when the
    /// version moves on). Entries fill lazily on first use.
    fn reach_index(slot: &Mutex<Option<Arc<ReachIndex>>>, version: u64) -> Arc<ReachIndex> {
        let mut s = slot.lock();
        match &*s {
            Some(r) if r.version() == version => Arc::clone(r),
            _ => {
                let r = Arc::new(ReachIndex::new(version));
                *s = Some(Arc::clone(&r));
                r
            }
        }
    }

    /// The CSR snapshot for the current graph version, building (and
    /// caching) it if the version moved since the last build. Builds are
    /// timed into the graph's [`CostProfile`] (observability only — the
    /// planner's estimates stay deterministic).
    fn csr(&self) -> Arc<CsrGraph> {
        let mut slot = self.csr.lock();
        match &*slot {
            Some(c) if c.version() == self.graph.version() => Arc::clone(c),
            _ => {
                let started = Instant::now();
                let c = Arc::new(CsrGraph::snapshot(&self.graph));
                self.profile
                    .note_csr_build(started.elapsed().as_nanos() as u64);
                *slot = Some(Arc::clone(&c));
                c
            }
        }
    }

    /// The CSR snapshot if it is already fresh for the current version —
    /// never triggers a build.
    fn csr_if_fresh(&self) -> Option<Arc<CsrGraph>> {
        let slot = self.csr.lock();
        slot.as_ref()
            .filter(|c| c.version() == self.graph.version())
            .map(Arc::clone)
    }
}

/// Point-in-time summary of one managed graph, from
/// [`ExpFinder::graph_infos`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    pub name: String,
    pub nodes: usize,
    pub edges: usize,
    pub version: u64,
    /// Queries under incremental maintenance on this graph.
    pub registered_queries: usize,
    pub compressed: bool,
}

/// Maintained-result size of one registered query before and after an
/// update batch — the ΔM a serving client sees from `POST /updates`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisteredDelta {
    pub query: String,
    pub before_pairs: usize,
    pub after_pairs: usize,
}

impl RegisteredDelta {
    /// Signed match-pair delta (`after - before`).
    pub fn delta(&self) -> i64 {
        self.after_pairs as i64 - self.before_pairs as i64
    }
}

/// Observer of committed update batches, installed with
/// [`ExpFinder::set_update_hook`]. Called once per batch with the graph
/// name and the full traced [`UpdateReport`], *while the graph's write
/// lock is still held* — so hook invocations for one graph are totally
/// ordered and carry consecutive `graph_version`s. Implementations must
/// not block (the server's subscription fan-out uses non-blocking
/// queue sends) and must not call back into the engine.
pub type UpdateHook = Arc<dyn Fn(&str, &UpdateReport) + Send + Sync>;

/// Result of [`ExpFinder::apply_updates_traced`].
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Updates that actually changed the graph (no-ops skipped).
    pub applied: usize,
    /// Updates submitted.
    pub attempted: usize,
    /// Graph version after the batch.
    pub graph_version: u64,
    /// Per-registered-query maintained sizes, sorted by query name.
    pub registered: Vec<RegisteredDelta>,
}

/// A catalog slot: stable id plus the shared, lock-guarded graph state.
struct CatalogEntry {
    id: u64,
    slot: Arc<RwLock<StoredGraph>>,
}

/// A cheap, clonable reference to one graph managed by an [`ExpFinder`].
///
/// Handles are obtained from [`ExpFinder::add_graph`] /
/// [`ExpFinder::handle`] and stay valid until the graph is removed;
/// afterwards every operation through them fails with
/// [`ExpFinderError::StaleHandle`]. Internally a handle holds a weak
/// reference to the graph slot, so the query path never touches the
/// catalog lock.
#[derive(Clone, Debug)]
pub struct GraphHandle {
    engine_id: u64,
    id: u64,
    name: Arc<str>,
    slot: Weak<RwLock<StoredGraph>>,
}

impl GraphHandle {
    /// The name the graph was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine-unique catalog id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True if the graph is still present in its engine.
    pub fn is_live(&self) -> bool {
        self.slot.strong_count() > 0
    }

    fn upgrade(&self) -> Result<Arc<RwLock<StoredGraph>>, ExpFinderError> {
        self.slot
            .upgrade()
            .ok_or_else(|| ExpFinderError::StaleHandle(self.name.to_string()))
    }

    fn owned_by(&self, engine_id: u64) -> Result<(), ExpFinderError> {
        if self.engine_id == engine_id {
            Ok(())
        } else {
            Err(ExpFinderError::ForeignHandle(self.name.to_string()))
        }
    }
}

impl PartialEq for GraphHandle {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for GraphHandle {}

impl std::hash::Hash for GraphHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl std::fmt::Display for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.name, self.id)
    }
}

/// The ExpFinder system facade. See the [crate docs](crate) for the
/// locking design; in short: `Arc<ExpFinder>` + `&self` everywhere.
pub struct ExpFinder {
    config: EngineConfig,
    /// Process-unique id of this engine instance; handles carry it so a
    /// handle from one engine cannot address another.
    engine_id: u64,
    catalog: RwLock<HashMap<String, CatalogEntry>>,
    cache: Mutex<QueryCache>,
    /// Pooled [`EvalScratch`]es: every evaluation path (fluent queries,
    /// batch workers, HTTP workers) checks one out, so steady-state
    /// serving reuses BFS frontiers, reach caches and counter buffers
    /// instead of allocating per request.
    scratch_pool: ScratchPool,
    /// Cumulative [`EvalStats`] across every direct/compressed
    /// evaluation, exported on `GET /metrics`.
    eval_totals: EvalTotals,
    /// Cumulative planner counters (decisions, overrides, mispredicts)
    /// — the `engine.planner` block of `GET /metrics`.
    planner: PlannerCounters,
    /// Cumulative cancellation counters (armed checks polled, deadline
    /// fires) — the `engine.cancel` block of `GET /metrics`.
    cancel_totals: CancelCounters,
    /// Observer of committed update batches (ΔM push fan-out).
    update_hook: RwLock<Option<UpdateHook>>,
    next_id: AtomicU64,
}

/// Lock-free accumulator behind [`ExpFinder::eval_totals`].
#[derive(Default)]
struct EvalTotals {
    refreshes: AtomicU64,
    removals: AtomicU64,
    refreshes_skipped: AtomicU64,
    bfs_nodes_visited: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
}

impl EvalTotals {
    fn add(&self, s: EvalStats) {
        self.refreshes
            .fetch_add(s.refreshes as u64, Ordering::Relaxed);
        self.removals
            .fetch_add(s.removals as u64, Ordering::Relaxed);
        self.refreshes_skipped
            .fetch_add(s.refreshes_skipped as u64, Ordering::Relaxed);
        self.bfs_nodes_visited
            .fetch_add(s.bfs_nodes_visited as u64, Ordering::Relaxed);
        self.index_hits
            .fetch_add(s.index_hits as u64, Ordering::Relaxed);
        self.index_misses
            .fetch_add(s.index_misses as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EvalStats {
        EvalStats {
            refreshes: self.refreshes.load(Ordering::Relaxed) as usize,
            removals: self.removals.load(Ordering::Relaxed) as usize,
            refreshes_skipped: self.refreshes_skipped.load(Ordering::Relaxed) as usize,
            bfs_nodes_visited: self.bfs_nodes_visited.load(Ordering::Relaxed) as usize,
            index_hits: self.index_hits.load(Ordering::Relaxed) as usize,
            index_misses: self.index_misses.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Lock-free accumulator behind [`ExpFinder::cancel_totals`]: every
/// deadline-carrying query drains its token's counters here when it
/// finishes (successfully or by abort).
#[derive(Default)]
struct CancelCounters {
    checked: AtomicU64,
    fired: AtomicU64,
}

impl CancelCounters {
    fn drain(&self, token: &CancelToken) {
        self.checked.fetch_add(token.checks(), Ordering::Relaxed);
        self.fired.fetch_add(token.fired(), Ordering::Relaxed);
    }
}

/// Cumulative cancellation totals, from [`ExpFinder::cancel_totals`] —
/// the `engine.cancel` block of `GET /metrics`. Disarmed checks are not
/// counted (they are a single relaxed load by design); `checked` counts
/// armed polls, `fired` counts deadline/cancel transitions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CancelTotals {
    /// Armed cancellation polls performed inside evaluations.
    pub checked: u64,
    /// Tokens that fired (one per deadline-aborted evaluation).
    pub fired: u64,
}

/// Point-in-time reach-index totals across every managed graph, from
/// [`ExpFinder::index_totals`] — the `engine.index` block of
/// `GET /metrics`. `hits`/`misses` are cumulative across the engine's
/// lifetime (they survive per-version invalidation); `entries`/`bytes`
/// are live gauges over the currently held indexes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexTotals {
    /// Class-seeded first refreshes served from an index entry.
    pub hits: u64,
    /// First refreshes that consulted a provider but ran the BFS.
    pub misses: u64,
    /// Memoized entries currently held across all graphs.
    pub entries: usize,
    /// Bytes retained by those entries.
    pub bytes: usize,
}

/// Source of process-unique engine ids.
static ENGINE_IDS: AtomicU64 = AtomicU64::new(1);

// The whole point of the handle-based design: one engine, many threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExpFinder>();
    assert_send_sync::<GraphHandle>();
};

impl Default for ExpFinder {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl ExpFinder {
    pub fn new(config: EngineConfig) -> ExpFinder {
        let cache = Mutex::new(QueryCache::new(config.cache_capacity));
        ExpFinder {
            config,
            engine_id: ENGINE_IDS.fetch_add(1, Ordering::Relaxed),
            catalog: RwLock::new(HashMap::new()),
            cache,
            scratch_pool: ScratchPool::new(),
            eval_totals: EvalTotals::default(),
            planner: PlannerCounters::default(),
            cancel_totals: CancelCounters::default(),
            update_hook: RwLock::new(None),
            next_id: AtomicU64::new(1),
        }
    }

    /// Install (or, with `None`, remove) the [`UpdateHook`] observing
    /// every committed update batch. While a hook is installed, update
    /// batches are always traced — the hook sees the full ΔM report even
    /// when the caller used the untraced [`ExpFinder::apply_updates`].
    pub fn set_update_hook(&self, hook: Option<UpdateHook>) {
        *self.update_hook.write() = hook;
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Resolve a handle to its graph slot, rejecting handles from other
    /// engines (their ids would alias this engine's cache keys) and
    /// handles whose graph was removed.
    fn slot(&self, handle: &GraphHandle) -> Result<Arc<RwLock<StoredGraph>>, ExpFinderError> {
        handle.owned_by(self.engine_id)?;
        handle.upgrade()
    }

    // ------------------------------ catalog ------------------------------

    /// Register a data graph under a name, returning its handle. Names
    /// double as catalog file stems, so path-like names are rejected.
    pub fn add_graph(&self, name: &str, graph: DiGraph) -> Result<GraphHandle, ExpFinderError> {
        validate_graph_name(name)?;
        let mut catalog = self.catalog.write();
        if catalog.contains_key(name) {
            return Err(ExpFinderError::DuplicateGraph(name.to_owned()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(RwLock::new(StoredGraph::new(graph)));
        let handle = GraphHandle {
            engine_id: self.engine_id,
            id,
            name: Arc::from(name),
            slot: Arc::downgrade(&slot),
        };
        catalog.insert(name.to_owned(), CatalogEntry { id, slot });
        Ok(handle)
    }

    /// Look up the handle of a graph by name.
    pub fn handle(&self, name: &str) -> Result<GraphHandle, ExpFinderError> {
        let catalog = self.catalog.read();
        let entry = catalog
            .get(name)
            .ok_or_else(|| ExpFinderError::UnknownGraph(name.to_owned()))?;
        Ok(GraphHandle {
            engine_id: self.engine_id,
            id: entry.id,
            name: Arc::from(name),
            slot: Arc::downgrade(&entry.slot),
        })
    }

    /// Remove a graph (and its compression and registered queries).
    /// Outstanding handles to it become stale.
    pub fn remove_graph(&self, handle: &GraphHandle) -> Result<(), ExpFinderError> {
        handle.owned_by(self.engine_id)?;
        let mut catalog = self.catalog.write();
        match catalog.get(handle.name()) {
            Some(entry) if entry.id == handle.id => {
                catalog.remove(handle.name());
                Ok(())
            }
            _ => Err(ExpFinderError::StaleHandle(handle.name.to_string())),
        }
    }

    /// Names of all managed graphs (sorted).
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A summary of every managed graph (sorted by name) — the catalog
    /// view the serving layer exposes on `GET /graphs` and `/metrics`.
    /// Each slot's read lock is taken briefly, one graph at a time.
    pub fn graph_infos(&self) -> Vec<GraphInfo> {
        let catalog = self.catalog.read();
        let mut infos: Vec<GraphInfo> = catalog
            .iter()
            .map(|(name, entry)| {
                let stored = entry.slot.read();
                GraphInfo {
                    name: name.clone(),
                    nodes: stored.graph.node_count(),
                    edges: stored.graph.edge_count(),
                    version: stored.graph.version(),
                    registered_queries: stored.registered.len(),
                    compressed: stored.compressed.is_some(),
                }
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Run `f` with shared access to the graph. This is how callers read
    /// graph data without copying it out of the lock.
    pub fn read_graph<R>(
        &self,
        handle: &GraphHandle,
        f: impl FnOnce(&DiGraph) -> R,
    ) -> Result<R, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        Ok(f(&stored.graph))
    }

    /// A full copy of the graph (for persistence and tests).
    pub fn snapshot(&self, handle: &GraphHandle) -> Result<DiGraph, ExpFinderError> {
        self.read_graph(handle, |g| g.clone())
    }

    // ---------------------------- compression ----------------------------

    /// Build (or rebuild) the compressed counterpart of a graph.
    pub fn compress(&self, handle: &GraphHandle) -> Result<CompressStats, ExpFinderError> {
        let method = self.config.compression_method;
        let slot = self.slot(handle)?;
        let mut stored = slot.write();
        let mc = MaintainedCompression::new(&stored.graph, method)?;
        let stats = mc.compressed().stats();
        stored.compressed = Some(mc);
        // the quotient changed without a graph-version bump, so the
        // version-keyed invalidation cannot catch this — clear explicitly
        *stored.reach_c.lock() = None;
        Ok(stats)
    }

    /// Drop the compressed counterpart.
    pub fn drop_compression(&self, handle: &GraphHandle) -> Result<(), ExpFinderError> {
        let slot = self.slot(handle)?;
        let mut stored = slot.write();
        stored.compressed = None;
        *stored.reach_c.lock() = None;
        Ok(())
    }

    /// Compression statistics, if the graph is compressed.
    pub fn compression_stats(
        &self,
        handle: &GraphHandle,
    ) -> Result<Option<CompressStats>, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        Ok(stored.compressed.as_ref().map(|mc| mc.compressed().stats()))
    }

    // ------------------------- registered queries ------------------------

    /// Register a frequently-issued query for incremental maintenance
    /// (paper §II: "maintains the query results of a set of frequently
    /// issued queries (decided by the users)").
    pub fn register_query(
        &self,
        handle: &GraphHandle,
        query_name: &str,
        pattern: Pattern,
    ) -> Result<(), ExpFinderError> {
        let slot = self.slot(handle)?;
        let mut stored = slot.write();
        if stored.registered.contains_key(query_name) {
            return Err(ExpFinderError::DuplicateQuery(query_name.to_owned()));
        }
        let maintainer: Box<dyn Maintainer + Send + Sync> = if pattern.is_simulation() {
            Box::new(IncrementalSim::new(&stored.graph, &pattern)?)
        } else {
            Box::new(IncrementalBoundedSim::new(&stored.graph, &pattern))
        };
        stored.registered.insert(
            query_name.to_owned(),
            RegisteredQuery {
                pattern,
                maintainer,
            },
        );
        Ok(())
    }

    /// Drop a registered query.
    pub fn unregister_query(
        &self,
        handle: &GraphHandle,
        query_name: &str,
    ) -> Result<(), ExpFinderError> {
        self.slot(handle)?
            .write()
            .registered
            .remove(query_name)
            .map(|_| ())
            .ok_or_else(|| ExpFinderError::UnknownQuery(query_name.to_owned()))
    }

    /// Names of queries registered on a graph (sorted).
    pub fn registered_queries(&self, handle: &GraphHandle) -> Result<Vec<String>, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        let mut names: Vec<String> = stored.registered.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    /// The incrementally-maintained result of a registered query.
    pub fn registered_result(
        &self,
        handle: &GraphHandle,
        query_name: &str,
    ) -> Result<MatchRelation, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        let rq = stored
            .registered
            .get(query_name)
            .ok_or_else(|| ExpFinderError::UnknownQuery(query_name.to_owned()))?;
        Ok(rq.maintainer.current())
    }

    // ------------------------------ updates ------------------------------

    /// Apply edge updates to a graph, maintaining its compression and its
    /// registered queries along the way, all under that one graph's write
    /// lock (readers of other graphs are unaffected). Returns how many
    /// updates actually changed the graph (duplicates/no-ops are skipped).
    pub fn apply_updates(
        &self,
        handle: &GraphHandle,
        updates: &[EdgeUpdate],
    ) -> Result<usize, ExpFinderError> {
        Ok(self.apply_updates_inner(handle, updates, false)?.applied)
    }

    /// Like [`ExpFinder::apply_updates`], but also reports the graph
    /// version after the batch and the maintained-result size of every
    /// registered query before and after, all measured under the same
    /// write lock — the ΔM report `POST /graphs/{name}/updates` returns.
    pub fn apply_updates_traced(
        &self,
        handle: &GraphHandle,
        updates: &[EdgeUpdate],
    ) -> Result<UpdateReport, ExpFinderError> {
        self.apply_updates_inner(handle, updates, true)
    }

    /// Shared update path; `trace` additionally sizes every registered
    /// query's maintained result before and after (a per-query relation
    /// clone, so the hot non-traced path skips it).
    fn apply_updates_inner(
        &self,
        handle: &GraphHandle,
        updates: &[EdgeUpdate],
        trace: bool,
    ) -> Result<UpdateReport, ExpFinderError> {
        let drift = self.config.recompress_drift;
        // an installed hook forces tracing so its frames always carry ΔM
        let hook = self.update_hook.read().clone();
        let trace = trace || hook.is_some();
        let slot = self.slot(handle)?;
        let mut stored = slot.write();
        let stored = &mut *stored;
        let mut registered: Vec<RegisteredDelta> = if trace {
            stored
                .registered
                .iter()
                .map(|(name, rq)| RegisteredDelta {
                    query: name.clone(),
                    before_pairs: rq.maintainer.current().total_pairs(),
                    after_pairs: 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut applied = 0usize;
        for &up in updates {
            if !stored.graph.apply(up) {
                continue;
            }
            applied += 1;
            if let Some(mc) = stored.compressed.as_mut() {
                mc.on_update(&stored.graph, up);
            }
            for rq in stored.registered.values_mut() {
                rq.maintainer.on_update(&stored.graph, up);
            }
        }
        if applied > 0 {
            stored.profile.note_update_batch();
        }
        if let Some(mc) = stored.compressed.as_mut() {
            mc.refresh(&stored.graph);
            mc.maybe_recompress(&stored.graph, drift)?;
        }
        for d in &mut registered {
            d.after_pairs = stored.registered[&d.query]
                .maintainer
                .current()
                .total_pairs();
        }
        registered.sort_by(|a, b| a.query.cmp(&b.query));
        let report = UpdateReport {
            applied,
            attempted: updates.len(),
            graph_version: stored.graph.version(),
            registered,
        };
        if let Some(hook) = &hook {
            // still under the graph's write lock: per-graph hook calls
            // are totally ordered by graph_version
            hook(handle.name(), &report);
        }
        Ok(report)
    }

    // ----------------------------- evaluation ----------------------------

    /// Start a fluent query against one graph:
    ///
    /// ```ignore
    /// let resp = engine.query(&h).pattern(p).top_k(10).run()?;
    /// ```
    pub fn query(&self, handle: &GraphHandle) -> QueryBuilder<'_> {
        QueryBuilder {
            engine: self,
            handle: handle.clone(),
            pattern: None,
            top_k: None,
            prefer: Route::Auto,
            deadline: None,
            token: None,
        }
    }

    /// Evaluate a pattern on a graph, routing per paper §II.
    pub fn evaluate(
        &self,
        handle: &GraphHandle,
        pattern: &Pattern,
    ) -> Result<QueryOutcome, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        let (matches, route, _plan) = self.scratch_pool.with(|scratch| {
            self.route_and_eval(
                handle,
                &stored,
                pattern,
                Route::Auto,
                self.config.exec.threads.max(1),
                scratch,
                None,
            )
        })?;
        Ok(QueryOutcome {
            matches,
            route,
            graph_version: stored.graph.version(),
        })
    }

    /// The paper's headline operation: evaluate, rank by social impact,
    /// return the top-K experts for the pattern's output node.
    pub fn find_experts(
        &self,
        handle: &GraphHandle,
        pattern: &Pattern,
        k: usize,
    ) -> Result<ExpertReport, ExpFinderError> {
        let resp = self.query(handle).pattern(pattern.clone()).top_k(k).run()?;
        Ok(ExpertReport {
            outcome: QueryOutcome {
                matches: resp.matches,
                route: resp.route,
                graph_version: resp.graph_version,
            },
            experts: resp.experts,
        })
    }

    /// Build the result graph for a previously evaluated outcome.
    pub fn result_graph(
        &self,
        handle: &GraphHandle,
        pattern: &Pattern,
        outcome: &QueryOutcome,
    ) -> Result<ResultGraph, ExpFinderError> {
        self.read_graph(handle, |g| ResultGraph::build(g, pattern, &outcome.matches))
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> cache::CacheStats {
        self.cache.lock().stats()
    }

    /// Entries currently held by the query cache.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Cumulative evaluation-work counters (refreshes, skipped refreshes,
    /// BFS nodes visited, candidate removals, reach-index hits/misses)
    /// across every direct and compressed evaluation this engine has run
    /// — the serving-path observability hook behind `GET /metrics`.
    pub fn eval_totals(&self) -> EvalStats {
        self.eval_totals.snapshot()
    }

    /// Cumulative planner counters — how many route decisions were made,
    /// how many were forced by a caller preference, and how many the
    /// evaluation then contradicted ([`PlanDecision::mispredicted`]) —
    /// the `engine.planner` block of `GET /metrics`.
    pub fn planner_totals(&self) -> PlannerTotals {
        self.planner.totals()
    }

    /// Cumulative cancellation counters — armed checks polled and tokens
    /// fired across every deadline-carrying evaluation — the
    /// `engine.cancel` block of `GET /metrics`.
    pub fn cancel_totals(&self) -> CancelTotals {
        CancelTotals {
            checked: self.cancel_totals.checked.load(Ordering::Relaxed),
            fired: self.cancel_totals.fired.load(Ordering::Relaxed),
        }
    }

    /// Estimate the planner cost (abstract work units) of evaluating
    /// `pattern` on `handle` right now, without evaluating anything —
    /// the admission-control hook the server uses to reject queries that
    /// cannot fit their deadline budget (429) before they consume a
    /// worker. Runs the same deterministic cost model as
    /// [`route_and_eval`](ExpFinder::query) and returns the cheapest
    /// candidate's cost. Deliberately does **not** consult the cache or
    /// registered results (peeking would skew their hit/miss counters),
    /// so the estimate is conservative: an exact-route hit costs less
    /// than reported here.
    pub fn estimate_cost(
        &self,
        handle: &GraphHandle,
        pattern: &Pattern,
    ) -> Result<f64, ExpFinderError> {
        let slot = self.slot(handle)?;
        let stored = slot.read();
        let compression_ratio = if self.config.auto_use_compressed {
            stored.compressed.as_ref().and_then(|mc| {
                let gc = mc.compressed();
                if gc.validate_pattern(pattern).is_ok() {
                    let cs = gc.stats();
                    let original = (cs.original_nodes + cs.original_edges).max(1);
                    let quotient = (cs.compressed_nodes + cs.compressed_edges).max(1);
                    Some(quotient as f64 / original as f64)
                } else {
                    None
                }
            })
        } else {
            None
        };
        let inputs = stored.profile.inputs(
            stored.graph.version(),
            stored.graph.size(),
            stored.csr_if_fresh().is_some(),
        );
        let ctx = PlanContext {
            threads: self.config.exec.threads.max(1),
            pattern_edges: pattern.edge_count(),
            compression_ratio,
        };
        let plan = planner::plan(&inputs, &ctx);
        Ok(plan
            .candidates
            .iter()
            .find(|c| c.route == plan.planned)
            .map_or(f64::INFINITY, |c| c.cost))
    }

    /// Reach-index totals: cumulative hits/misses plus live entry/byte
    /// gauges summed over every managed graph's per-version indexes
    /// (direct and compressed) — the `engine.index` block of
    /// `GET /metrics`. Each slot's read lock is taken briefly, one graph
    /// at a time.
    pub fn index_totals(&self) -> IndexTotals {
        let mut totals = IndexTotals {
            hits: self.eval_totals.index_hits.load(Ordering::Relaxed),
            misses: self.eval_totals.index_misses.load(Ordering::Relaxed),
            entries: 0,
            bytes: 0,
        };
        let catalog = self.catalog.read();
        for entry in catalog.values() {
            let stored = entry.slot.read();
            for slot in [&stored.reach, &stored.reach_c] {
                if let Some(ri) = &*slot.lock() {
                    totals.entries += ri.len();
                    totals.bytes += ri.bytes();
                }
            }
        }
        totals
    }

    /// Execute a whole batch of queries against one graph, draining them
    /// across a scoped worker pool of `exec.batch_parallelism` threads —
    /// the workload shape of a production service (and of expert-finding
    /// benchmarks, which evaluate over *sets* of queries).
    ///
    /// Results come back in spec order, one `Result` per spec, so a single
    /// malformed DSL string fails its own slot without sinking the batch.
    /// Each query runs under its own read lock and reports the
    /// `graph_version` it observed; every response individually equals a
    /// sequential [`QueryBuilder::run`] at that version (property-tested),
    /// but a batch racing a writer may span versions.
    ///
    /// The thread budget is split, not multiplied: with `w` batch workers
    /// active, each query refines with `exec.threads / w` (min 1) inner
    /// threads, so a batch never runs more than `threads + w` threads
    /// total — batch-level parallelism is the better lever when there are
    /// many queries, per-query parallelism when there is one.
    ///
    /// ```
    /// use expfinder_engine::{ExpFinder, QuerySpec};
    /// use expfinder_graph::fixtures::collaboration_fig1;
    /// use expfinder_pattern::fixtures::fig1_pattern;
    ///
    /// let engine = ExpFinder::default();
    /// let h = engine.add_graph("fig1", collaboration_fig1().graph).unwrap();
    /// let specs = vec![
    ///     QuerySpec::pattern(fig1_pattern()).top_k(2),
    ///     QuerySpec::dsl("node sa* where label = \"SA\";"),
    /// ];
    /// let responses = engine.query_batch(&h, specs);
    /// assert_eq!(responses.len(), 2);
    /// assert_eq!(responses[0].as_ref().unwrap().experts.len(), 2);
    /// assert_eq!(responses[1].as_ref().unwrap().matches.total_pairs(), 2);
    /// ```
    pub fn query_batch(
        &self,
        handle: &GraphHandle,
        specs: Vec<QuerySpec>,
    ) -> Vec<Result<QueryResponse, ExpFinderError>> {
        self.query_batch_deadline(handle, specs, None)
    }

    /// [`ExpFinder::query_batch`] under one shared deadline: a single
    /// [`CancelToken`] armed with `deadline` is polled by every worker,
    /// so slots still running when the budget runs out come back as
    /// [`ExpFinderError::DeadlineExceeded`] while already-finished slots
    /// keep their results. A per-spec [`QuerySpec::deadline`] further
    /// tightens (never extends) the batch budget for its own slot.
    pub fn query_batch_deadline(
        &self,
        handle: &GraphHandle,
        specs: Vec<QuerySpec>,
        deadline: Option<Duration>,
    ) -> Vec<Result<QueryResponse, ExpFinderError>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let batch_token = deadline.map(CancelToken::with_deadline);
        let batch_cancel = batch_token.as_deref();
        let workers = self.config.exec.batch_parallelism.clamp(1, specs.len());
        let inner_threads = (self.config.exec.threads / workers).max(1);
        let indices: Vec<usize> = (0..specs.len()).collect();
        // one pooled EvalScratch per batch worker, reused across its slots
        let pairs = expfinder_core::parallel::run_items(
            workers,
            &indices,
            || self.scratch_pool.take(),
            |scratch, &i| {
                (
                    i,
                    self.run_spec(handle, &specs[i], inner_threads, scratch, batch_cancel),
                )
            },
        );
        let out = match pairs {
            Some(mut pairs) => {
                pairs.sort_by_key(|(i, _)| *i);
                pairs.into_iter().map(|(_, r)| r).collect()
            }
            None => {
                let threads = self.config.exec.threads.max(1);
                let mut scratch = self.scratch_pool.take();
                specs
                    .iter()
                    .map(|sp| self.run_spec(handle, sp, threads, &mut scratch, batch_cancel))
                    .collect()
            }
        };
        if let Some(t) = &batch_token {
            self.cancel_totals.drain(t);
        }
        out
    }

    /// Resolve one [`QuerySpec`] (parsing its DSL if needed) and run it
    /// with the given inner-thread budget. A per-spec deadline becomes
    /// its own token, clipped to whatever remains of the batch budget;
    /// otherwise the shared batch token (if any) is polled directly.
    fn run_spec(
        &self,
        handle: &GraphHandle,
        spec: &QuerySpec,
        threads: usize,
        scratch: &mut EvalScratch,
        batch_cancel: Option<&CancelToken>,
    ) -> Result<QueryResponse, ExpFinderError> {
        let pattern = match &spec.source {
            SpecSource::Pattern(p) => p.clone(),
            SpecSource::Dsl(s) => expfinder_pattern::parser::parse(s)?,
        };
        let own = spec.deadline.map(|d| {
            let budget = batch_cancel
                .and_then(CancelToken::remaining)
                .map_or(d, |left| left.min(d));
            CancelToken::with_deadline(budget)
        });
        let cancel = own.as_deref().or(batch_cancel);
        let out = self.execute(
            handle,
            &pattern,
            spec.top_k,
            spec.prefer,
            threads,
            scratch,
            cancel,
        );
        if let Some(t) = &own {
            self.cancel_totals.drain(t);
        }
        out
    }

    /// The single-query execution path shared by [`QueryBuilder::run`] and
    /// [`ExpFinder::query_batch`]: routing, evaluation, result-graph
    /// construction and ranking under one read lock of the target graph,
    /// with `threads` workers for the parallel stages and `scratch` for
    /// the sequential ones.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        handle: &GraphHandle,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
        threads: usize,
        scratch: &mut EvalScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryResponse, ExpFinderError> {
        let threads = threads.max(1);
        let started = Instant::now();
        let slot = self.slot(handle)?;
        let stored = slot.read();
        let (matches, route, plan) =
            self.route_and_eval(handle, &stored, pattern, prefer, threads, scratch, cancel)?;
        let evaluate_time = started.elapsed();

        let rank_started = Instant::now();
        let experts = match top_k {
            None => Vec::new(),
            Some(k) => {
                let opts = expfinder_core::BuildOptions { threads };
                // reuse the CSR snapshot only when direct evaluation just
                // built (or fetched) it; a cache/registered/compressed hit
                // never touched it, and building one merely to rank would
                // cost more than it saves
                let direct = matches!(
                    route,
                    EvalRoute::DirectSimulation | EvalRoute::DirectBounded
                );
                let csr = if direct { stored.csr_if_fresh() } else { None };
                if let Some(csr) = csr {
                    let rg = ResultGraph::build_with(&*csr, pattern, &matches, opts);
                    rank_matches_top_k(&rg, pattern, &matches, k)?
                } else {
                    let rg = ResultGraph::build_with(&stored.graph, pattern, &matches, opts);
                    rank_matches_top_k(&rg, pattern, &matches, k)?
                }
            }
        };
        let rank_time = rank_started.elapsed();

        Ok(QueryResponse {
            experts,
            matches,
            route,
            graph_version: stored.graph.version(),
            timings: QueryTimings {
                evaluate: evaluate_time,
                rank: rank_time,
                total: started.elapsed(),
            },
            plan,
        })
    }

    /// Route and evaluate under an already-held read guard, so a whole
    /// query (evaluate + rank) sees one consistent graph state. `threads`
    /// is the budget for direct evaluation's parallel refinement;
    /// `scratch` carries the reusable buffers of the sequential paths.
    ///
    /// The exact-result short circuits (cache, registered) still run
    /// first, in paper §II order; everything after them is decided by the
    /// cost-based [`planner`] from the graph's [`CostProfile`]. A
    /// non-`Auto` `prefer` no longer takes a separate code path — the
    /// planner still produces its decision and records the override.
    #[allow(clippy::too_many_arguments)]
    fn route_and_eval(
        &self,
        handle: &GraphHandle,
        stored: &StoredGraph,
        pattern: &Pattern,
        prefer: Route,
        threads: usize,
        scratch: &mut EvalScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<MatchRelation>, EvalRoute, PlanDecision), ExpFinderError> {
        // a token that fired before evaluation even started (deadline
        // consumed upstream, or admission-level cancel) aborts here, with
        // zero work to report
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return Err(ExpFinderError::DeadlineExceeded(EvalStats::default()));
        }
        let fingerprint = pattern.fingerprint();
        let version = stored.graph.version();
        let key = QueryCache::key_for(handle.id, version, &fingerprint);

        if prefer == Route::Auto {
            // 1. cache (the fingerprint guards against key-hash collisions)
            if let Some(hit) = self.cache.lock().get(&key, &fingerprint) {
                let plan = PlanDecision::exact(PlanRoute::Cache);
                self.planner.on_decision(&plan);
                return Ok((hit, EvalRoute::Cache, plan));
            }

            // 2. registered incremental state
            for rq in stored.registered.values() {
                if rq.pattern.fingerprint() == fingerprint {
                    let matches = Arc::new(rq.maintainer.current());
                    self.cache
                        .lock()
                        .put(key, &fingerprint, Arc::clone(&matches));
                    let plan = PlanDecision::exact(PlanRoute::Registered);
                    self.planner.on_decision(&plan);
                    return Ok((matches, EvalRoute::Registered, plan));
                }
            }
        }

        // 3. plan: cost every applicable physical route and take the
        // cheapest. The compressed quotient is a candidate only when one
        // exists, the pattern is compression-safe, and the preference
        // (or `auto_use_compressed`) allows it.
        let try_compressed = match prefer {
            Route::Auto => self.config.auto_use_compressed,
            Route::Compressed => true,
            Route::Direct => false,
        };
        let compression_ratio = if try_compressed {
            stored.compressed.as_ref().and_then(|mc| {
                let gc = mc.compressed();
                if gc.validate_pattern(pattern).is_ok() {
                    let cs = gc.stats();
                    let original = (cs.original_nodes + cs.original_edges).max(1);
                    let quotient = (cs.compressed_nodes + cs.compressed_edges).max(1);
                    Some(quotient as f64 / original as f64)
                } else {
                    None
                }
            })
        } else {
            None
        };
        let inputs = stored.profile.inputs(
            version,
            stored.graph.size(),
            stored.csr_if_fresh().is_some(),
        );
        let ctx = PlanContext {
            threads,
            pattern_edges: pattern.edge_count(),
            compression_ratio,
        };
        let mut plan = planner::plan(&inputs, &ctx);
        plan.apply_preference(prefer);

        // 4. evaluate on the chosen substrate. The snapshot routes
        // consult the per-version [`ReachIndex`], so on a warm version
        // every class-seeded first refresh is one bitset copy. All
        // routes compute the same greatest fixpoint. A fired token
        // surfaces as the inner `Cancelled` before any torn state is
        // cached or applied (see `expfinder-core`), so an aborted
        // evaluation leaves scratch, cache and profile untouched.
        let evaluated: Result<(MatchRelation, EvalStats, EvalRoute), Cancelled> = match plan.chosen
        {
            PlanRoute::Compressed => {
                let mc = stored
                    .compressed
                    .as_ref()
                    .expect("compressed candidate implies a maintained quotient");
                let gc = mc.compressed();
                let on_c = if pattern.is_simulation() {
                    graph_simulation_cancellable(gc, pattern, scratch, cancel)?
                } else if gc.has_label_index() {
                    // the reach index is wired here, but only bound
                    // when the quotient can actually answer class
                    // lookups — an always-miss provider would pay the
                    // cache lock per query and poison the hit/miss
                    // ratio (today `CompressedGraph` has no label
                    // index; see ROADMAP)
                    let ri = StoredGraph::reach_index(&stored.reach_c, version);
                    let bound = ri.bind(gc);
                    bounded_simulation_cancellable(
                        gc,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        Some(&bound),
                        cancel,
                    )
                } else {
                    bounded_simulation_cancellable(
                        gc,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        None,
                        cancel,
                    )
                };
                on_c.map(|(m, stats)| (gc.expand(&m), stats, EvalRoute::Compressed))
            }
            PlanRoute::SnapshotParallel => {
                let csr = stored.csr();
                let ri = StoredGraph::reach_index(&stored.reach, csr.version());
                let bound = ri.bind(&*csr);
                if pattern.is_simulation() {
                    parallel_simulation_cancellable(&*csr, pattern, threads, Some(&bound), cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    parallel_bounded_simulation_cancellable(
                        &*csr,
                        pattern,
                        threads,
                        Some(&bound),
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
            PlanRoute::Snapshot => {
                let csr = stored.csr();
                if pattern.is_simulation() {
                    graph_simulation_cancellable(&*csr, pattern, scratch, cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    let ri = StoredGraph::reach_index(&stored.reach, csr.version());
                    let bound = ri.bind(&*csr);
                    bounded_simulation_cancellable(
                        &*csr,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        Some(&bound),
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
            // Live (Cache/Registered never reach this point)
            _ => {
                if pattern.is_simulation() {
                    graph_simulation_cancellable(&stored.graph, pattern, scratch, cancel)?
                        .map(|(m, stats)| (m, stats, EvalRoute::DirectSimulation))
                } else {
                    bounded_simulation_cancellable(
                        &stored.graph,
                        pattern,
                        EvalOptions::default(),
                        scratch,
                        None,
                        cancel,
                    )
                    .map(|(m, stats)| (m, stats, EvalRoute::DirectBounded))
                }
            }
        };
        let (m, stats, route) = match evaluated {
            Ok(t) => t,
            Err(c) => {
                // partial work still counts toward the engine totals, but
                // never into the graph's cost profile (it would skew the
                // planner's per-route estimates) and never into the cache
                self.planner.on_decision(&plan);
                self.eval_totals.add(c.stats);
                return Err(ExpFinderError::DeadlineExceeded(c.stats));
            }
        };
        stored.profile.note_eval(version, &stats);
        if plan.mispredicted(&stats) {
            self.planner.on_mispredict();
        }
        self.planner.on_decision(&plan);
        self.eval_totals.add(stats);
        let matches = Arc::new(m);
        self.cache
            .lock()
            .put(key, &fingerprint, Arc::clone(&matches));
        Ok((matches, route, plan))
    }
}

/// Graph names double as catalog file stems (`<name>.efg`, and the
/// runtime's `<name>.wal`), so names that could escape the catalog
/// directory are rejected up front. Exported for the shard runtime,
/// which reuses the same name-as-file-stem convention.
pub fn validate_graph_name(name: &str) -> Result<(), ExpFinderError> {
    let bad = name.is_empty()
        || name.contains(['/', '\\', '\0'])
        || name == "."
        || name == ".."
        || name.contains("..");
    if bad {
        Err(ExpFinderError::InvalidGraphName(name.to_owned()))
    } else {
        Ok(())
    }
}

/// Fluent request builder returned by [`ExpFinder::query`].
///
/// Chain [`pattern`](Self::pattern) (or [`dsl`](Self::dsl)), optionally
/// [`top_k`](Self::top_k) and [`prefer`](Self::prefer), then
/// [`run`](Self::run). The whole run — routing, evaluation, result-graph
/// construction and ranking — happens under a single read lock of the
/// target graph, so the response is one consistent snapshot even with
/// concurrent writers.
#[must_use = "QueryBuilder does nothing until .run()"]
pub struct QueryBuilder<'a> {
    engine: &'a ExpFinder,
    handle: GraphHandle,
    pattern: Option<Result<Pattern, ExpFinderError>>,
    top_k: Option<usize>,
    prefer: Route,
    deadline: Option<Duration>,
    token: Option<Arc<CancelToken>>,
}

impl QueryBuilder<'_> {
    /// The pattern to evaluate.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(Ok(pattern));
        self
    }

    /// The pattern to evaluate, written in the text DSL. Parse errors
    /// surface at [`run`](Self::run).
    pub fn dsl(mut self, dsl: &str) -> Self {
        self.pattern = Some(expfinder_pattern::parser::parse(dsl).map_err(ExpFinderError::from));
        self
    }

    /// Also rank the output node's matches and return the best `k`.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Routing preference (default [`Route::Auto`]).
    pub fn prefer(mut self, route: Route) -> Self {
        self.prefer = route;
        self
    }

    /// Evaluation budget, measured from [`run`](Self::run): once it has
    /// elapsed, the evaluation abandons work at its next cancellation
    /// point and returns [`ExpFinderError::DeadlineExceeded`] carrying
    /// the partial [`EvalStats`]. No deadline (the default) costs a
    /// single relaxed atomic load per cancellation point.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Poll a caller-supplied [`CancelToken`] at every cancellation
    /// point, so `cancel()` from another thread (a disconnected client,
    /// a supervisor, a deterministic test fuse) aborts the run with
    /// [`ExpFinderError::DeadlineExceeded`] carrying the partial stats.
    /// Composes with [`deadline`](Self::deadline), which arms its budget
    /// on this same token. The token's check/fire counts are folded into
    /// [`ExpFinder::cancel_totals`] when the run returns.
    pub fn cancel_token(mut self, token: Arc<CancelToken>) -> Self {
        self.token = Some(token);
        self
    }

    /// Execute the query.
    pub fn run(self) -> Result<QueryResponse, ExpFinderError> {
        let pattern = match self.pattern {
            None => return Err(ExpFinderError::MissingPattern),
            Some(Err(e)) => return Err(e),
            Some(Ok(p)) => p,
        };
        let threads = self.engine.config.exec.threads.max(1);
        let token = match (self.token, self.deadline) {
            (Some(t), Some(d)) => {
                t.arm_deadline(d);
                Some(t)
            }
            (Some(t), None) => Some(t),
            (None, d) => d.map(CancelToken::with_deadline),
        };
        let out = self.engine.scratch_pool.with(|scratch| {
            self.engine.execute(
                &self.handle,
                &pattern,
                self.top_k,
                self.prefer,
                threads,
                scratch,
                token.as_deref(),
            )
        });
        if let Some(t) = &token {
            self.engine.cancel_totals.drain(t);
        }
        out
    }
}

/// How one [`QuerySpec`] names its pattern.
#[derive(Clone, Debug)]
enum SpecSource {
    Pattern(Pattern),
    Dsl(String),
}

/// One query of a batch: a pattern (or DSL text parsed at execution
/// time), an optional `top_k`, and a routing preference — the owned
/// counterpart of [`QueryBuilder`] that [`ExpFinder::query_batch`] can
/// fan out across threads.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    source: SpecSource,
    top_k: Option<usize>,
    prefer: Route,
    deadline: Option<Duration>,
}

impl QuerySpec {
    /// A spec from an assembled pattern.
    pub fn pattern(pattern: Pattern) -> QuerySpec {
        QuerySpec {
            source: SpecSource::Pattern(pattern),
            top_k: None,
            prefer: Route::Auto,
            deadline: None,
        }
    }

    /// A spec from DSL text; parse errors surface in the batch slot.
    pub fn dsl(dsl: impl Into<String>) -> QuerySpec {
        QuerySpec {
            source: SpecSource::Dsl(dsl.into()),
            top_k: None,
            prefer: Route::Auto,
            deadline: None,
        }
    }

    /// Also rank the output node's matches and return the best `k`.
    pub fn top_k(mut self, k: usize) -> QuerySpec {
        self.top_k = Some(k);
        self
    }

    /// Routing preference (default [`Route::Auto`]).
    pub fn prefer(mut self, route: Route) -> QuerySpec {
        self.prefer = route;
        self
    }

    /// Evaluation budget for this slot, measured from the moment the
    /// batch worker picks it up. Combined with a batch-wide deadline the
    /// *tighter* of the two applies.
    pub fn deadline(mut self, budget: Duration) -> QuerySpec {
        self.deadline = Some(budget);
        self
    }

    /// The per-slot evaluation budget, if one was set — for executors
    /// outside this crate that share `QuerySpec` as the batch currency.
    pub fn deadline_budget(&self) -> Option<Duration> {
        self.deadline
    }

    /// Resolve to the executable parts — the pattern (parsing DSL text
    /// here, so parse errors surface per slot), `top_k` and the routing
    /// preference. For executors outside this crate that share
    /// `QuerySpec` as the batch currency (the shard runtime).
    pub fn resolve(&self) -> Result<(Pattern, Option<usize>, Route), ExpFinderError> {
        let pattern = match &self.source {
            SpecSource::Pattern(p) => p.clone(),
            SpecSource::Dsl(s) => expfinder_pattern::parser::parse(s)?,
        };
        Ok((pattern, self.top_k, self.prefer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_pattern::fixtures::fig1_pattern;

    /// Padding target for tests that want the planner's snapshot routes
    /// to win: large enough that an amortized (or thread-divided) CSR
    /// build beats the live adjacency.
    const PAD_SIZE: usize = 4096;

    fn engine_with_fig1() -> (ExpFinder, GraphHandle, expfinder_graph::fixtures::Fig1) {
        let f = collaboration_fig1();
        let e = ExpFinder::default();
        let h = e.add_graph("fig1", f.graph.clone()).unwrap();
        (e, h, f)
    }

    #[test]
    fn evaluate_routes_direct_then_cache() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        let first = e.evaluate(&h, &q).unwrap();
        assert_eq!(first.route, EvalRoute::DirectBounded);
        assert_eq!(first.matches.total_pairs(), 7);
        let second = e.evaluate(&h, &q).unwrap();
        assert_eq!(second.route, EvalRoute::Cache);
        assert_eq!(*second.matches, *first.matches);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn simulation_pattern_routes_to_quadratic() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern().as_simulation();
        let out = e.evaluate(&h, &q).unwrap();
        assert_eq!(out.route, EvalRoute::DirectSimulation);
        assert!(out.matches.is_empty(), "paper: simulation fails on Fig. 1");
    }

    #[test]
    fn updates_invalidate_cache_via_version() {
        let (e, h, f) = engine_with_fig1();
        let q = fig1_pattern();
        let before = e.evaluate(&h, &q).unwrap();
        assert_eq!(before.matches.total_pairs(), 7);
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let after = e.evaluate(&h, &q).unwrap();
        assert_ne!(after.route, EvalRoute::Cache, "version changed");
        assert_eq!(after.matches.total_pairs(), 8, "Fred joined");
        assert!(after.graph_version > before.graph_version);
    }

    #[test]
    fn compressed_route_preserves_results() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        let direct = e.evaluate(&h, &q).unwrap().matches;
        let stats = e.compress(&h).unwrap();
        assert!(stats.compressed_nodes <= stats.original_nodes);
        // the result is already cached for this version; ask for the
        // compressed route explicitly through the builder
        let out = e
            .query(&h)
            .pattern(q)
            .prefer(Route::Compressed)
            .run()
            .unwrap();
        assert_eq!(out.route, EvalRoute::Compressed);
        assert_eq!(*out.matches, *direct);
    }

    #[test]
    fn identity_attr_pattern_bypasses_compression() {
        let e = ExpFinder::default();
        let h = e.add_graph("fig1", collaboration_fig1().graph).unwrap();
        e.compress(&h).unwrap();
        let q = expfinder_pattern::PatternBuilder::new()
            .node("bob", expfinder_pattern::Predicate::attr_eq("name", "Bob"))
            .build()
            .unwrap();
        let out = e.evaluate(&h, &q).unwrap();
        assert_eq!(out.route, EvalRoute::DirectSimulation);
        assert_eq!(out.matches.total_pairs(), 1);
    }

    #[test]
    fn registered_query_is_maintained_and_preferred() {
        let (e, h, f) = engine_with_fig1();
        let q = fig1_pattern();
        e.register_query(&h, "team", q.clone()).unwrap();
        assert_eq!(e.registered_queries(&h).unwrap(), vec!["team"]);

        let out = e.evaluate(&h, &q).unwrap();
        assert_eq!(out.route, EvalRoute::Registered);
        assert_eq!(out.matches.total_pairs(), 7);

        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let maintained = e.registered_result(&h, "team").unwrap();
        assert_eq!(maintained.total_pairs(), 8);
        let out = e.evaluate(&h, &q).unwrap();
        assert_eq!(out.route, EvalRoute::Registered);
        assert_eq!(out.matches.total_pairs(), 8);
    }

    #[test]
    fn update_hook_sees_traced_reports_in_order() {
        let (e, h, f) = engine_with_fig1();
        e.register_query(&h, "team", fig1_pattern()).unwrap();
        type SeenReports = Vec<(String, u64, Vec<RegisteredDelta>)>;
        let seen: Arc<parking_lot::Mutex<SeenReports>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        e.set_update_hook(Some(Arc::new(move |graph: &str, report: &UpdateReport| {
            sink.lock().push((
                graph.to_owned(),
                report.graph_version,
                report.registered.clone(),
            ));
        })));

        // untraced entry point: the hook forces tracing anyway
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        e.apply_updates(&h, &[EdgeUpdate::Delete(f.e1.0, f.e1.1)])
            .unwrap();

        let frames = seen.lock().clone();
        assert_eq!(frames.len(), 2);
        assert!(frames.iter().all(|(g, _, _)| g == "fig1"));
        assert!(frames[0].1 < frames[1].1, "versions strictly ordered");
        assert_eq!(frames[0].2.len(), 1, "ΔM present despite untraced call");
        assert_eq!(frames[0].2[0].delta(), 1);
        assert_eq!(frames[1].2[0].delta(), -1);

        e.set_update_hook(None);
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        assert_eq!(seen.lock().len(), 2, "removed hook no longer fires");
    }

    #[test]
    fn find_experts_full_pipeline() {
        let (e, h, f) = engine_with_fig1();
        let report = e.find_experts(&h, &fig1_pattern(), 1).unwrap();
        assert_eq!(report.experts.len(), 1);
        assert_eq!(report.experts[0].node, f.bob);
        assert!((report.experts[0].rank - 1.8).abs() < 1e-12);
    }

    #[test]
    fn builder_full_response() {
        let (e, h, f) = engine_with_fig1();
        let resp = e.query(&h).pattern(fig1_pattern()).top_k(2).run().unwrap();
        assert_eq!(resp.matches.total_pairs(), 7);
        assert_eq!(resp.route, EvalRoute::DirectBounded);
        assert_eq!(resp.experts[0].node, f.bob);
        assert!(resp.timings.total >= resp.timings.rank);
    }

    #[test]
    fn builder_dsl_and_missing_pattern() {
        let (e, h, _) = engine_with_fig1();
        let resp = e
            .query(&h)
            .dsl("node sa* where label = \"SA\";")
            .run()
            .unwrap();
        assert_eq!(resp.matches.total_pairs(), 2, "Bob and Walt");
        assert!(resp.experts.is_empty(), "no top_k requested");

        assert!(matches!(
            e.query(&h).run(),
            Err(ExpFinderError::MissingPattern)
        ));
        assert!(matches!(
            e.query(&h).dsl("node oops").run(),
            Err(ExpFinderError::Parse(_))
        ));
    }

    #[test]
    fn builder_prefer_direct_skips_cache_and_registered() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        e.register_query(&h, "team", q.clone()).unwrap();
        let _ = e.evaluate(&h, &q).unwrap(); // warm the cache
        let out = e.query(&h).pattern(q).prefer(Route::Direct).run().unwrap();
        assert_eq!(out.route, EvalRoute::DirectBounded);
    }

    #[test]
    fn error_paths_and_stale_handles() {
        let e = ExpFinder::default();
        assert!(matches!(
            e.handle("ghost"),
            Err(ExpFinderError::UnknownGraph(_))
        ));
        let h = e.add_graph("g", DiGraph::new()).unwrap();
        assert!(matches!(
            e.add_graph("g", DiGraph::new()),
            Err(ExpFinderError::DuplicateGraph(_))
        ));
        assert!(matches!(
            e.registered_result(&h, "nope"),
            Err(ExpFinderError::UnknownQuery(_))
        ));
        assert!(h.is_live());
        e.remove_graph(&h).unwrap();
        assert!(!h.is_live());
        assert!(matches!(
            e.remove_graph(&h),
            Err(ExpFinderError::StaleHandle(_))
        ));
        assert!(matches!(
            e.evaluate(&h, &fig1_pattern()),
            Err(ExpFinderError::StaleHandle(_))
        ));
        // a new graph under the same name gets a fresh id; old handle
        // stays stale
        let h2 = e.add_graph("g", DiGraph::new()).unwrap();
        assert_ne!(h.id(), h2.id());
        assert!(matches!(
            e.evaluate(&h, &fig1_pattern()),
            Err(ExpFinderError::StaleHandle(_))
        ));
    }

    #[test]
    fn compression_maintained_under_updates() {
        let (e, h, f) = engine_with_fig1();
        e.compress(&h).unwrap();
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let q = fig1_pattern();
        let e2 = ExpFinder::default();
        let mut g2 = collaboration_fig1().graph;
        g2.add_edge(f.e1.0, f.e1.1);
        let h2 = e2.add_graph("fig1", g2).unwrap();
        let fresh = e2.evaluate(&h2, &q).unwrap();
        let maintained = e.evaluate(&h, &q).unwrap();
        assert_eq!(*maintained.matches, *fresh.matches);
        assert_eq!(maintained.route, EvalRoute::Compressed);
    }

    #[test]
    fn foreign_handles_are_rejected() {
        let (a, ha, _) = engine_with_fig1();
        let b = ExpFinder::default();
        let hb = b.add_graph("fig1", collaboration_fig1().graph).unwrap();
        // warm B's cache with its own graph so any id aliasing would hit
        let _ = b.evaluate(&hb, &fig1_pattern()).unwrap();

        assert!(matches!(
            b.evaluate(&ha, &fig1_pattern()),
            Err(ExpFinderError::ForeignHandle(_))
        ));
        assert!(matches!(
            b.remove_graph(&ha),
            Err(ExpFinderError::ForeignHandle(_))
        ));
        assert!(matches!(
            b.query(&ha).pattern(fig1_pattern()).run(),
            Err(ExpFinderError::ForeignHandle(_))
        ));
        // both engines still answer their own handles
        assert_eq!(
            a.evaluate(&ha, &fig1_pattern())
                .unwrap()
                .matches
                .total_pairs(),
            7
        );
        assert_eq!(
            b.evaluate(&hb, &fig1_pattern())
                .unwrap()
                .matches
                .total_pairs(),
            7
        );
    }

    #[test]
    fn path_like_graph_names_rejected() {
        let e = ExpFinder::default();
        for bad in ["", "..", "a/b", "a\\b", "../x", "x/..", "nul\0name"] {
            assert!(
                matches!(
                    e.add_graph(bad, DiGraph::new()),
                    Err(ExpFinderError::InvalidGraphName(_))
                ),
                "{bad:?} should be rejected"
            );
        }
        // ordinary names (including dots inside) are fine
        assert!(e.add_graph("fig.1-v2", DiGraph::new()).is_ok());
    }

    #[test]
    fn query_batch_matches_sequential_runs() {
        let (e, h, _) = engine_with_fig1();
        let specs = vec![
            QuerySpec::pattern(fig1_pattern()).top_k(2),
            QuerySpec::dsl("node sa* where label = \"SA\";"),
            QuerySpec::pattern(fig1_pattern()).prefer(Route::Direct),
        ];
        let batch = e.query_batch(&h, specs.clone());
        assert_eq!(batch.len(), 3);
        for (i, spec) in specs.into_iter().enumerate() {
            let single = e
                .scratch_pool
                .with(|s| e.run_spec(&h, &spec, 1, s, None))
                .unwrap();
            let b = batch[i].as_ref().unwrap();
            assert_eq!(*b.matches, *single.matches, "slot {i}");
            assert_eq!(
                b.experts.iter().map(|x| x.node).collect::<Vec<_>>(),
                single.experts.iter().map(|x| x.node).collect::<Vec<_>>()
            );
            assert_eq!(b.graph_version, single.graph_version);
        }
    }

    #[test]
    fn query_batch_isolates_per_slot_errors() {
        let (e, h, _) = engine_with_fig1();
        let specs = vec![
            QuerySpec::dsl("node oops"),
            QuerySpec::pattern(fig1_pattern()),
        ];
        let batch = e.query_batch(&h, specs);
        assert!(matches!(batch[0], Err(ExpFinderError::Parse(_))));
        assert_eq!(batch[1].as_ref().unwrap().matches.total_pairs(), 7);

        // stale handle fails every slot, not the call
        e.remove_graph(&h).unwrap();
        let batch = e.query_batch(&h, vec![QuerySpec::pattern(fig1_pattern())]);
        assert!(matches!(batch[0], Err(ExpFinderError::StaleHandle(_))));
        // and an empty batch is a no-op
        assert!(e.query_batch(&h, Vec::new()).is_empty());
    }

    #[test]
    fn parallel_exec_identical_to_sequential() {
        let f = collaboration_fig1();
        let seq = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let par = ExpFinder::new(EngineConfig {
            exec: ExecConfig {
                threads: 4,
                batch_parallelism: 4,
            },
            ..EngineConfig::default()
        });
        let hs = seq.add_graph("fig1", f.graph.clone()).unwrap();
        let hp = par.add_graph("fig1", f.graph.clone()).unwrap();
        let q = fig1_pattern();
        let rs = seq.query(&hs).pattern(q.clone()).top_k(3).run().unwrap();
        let rp = par.query(&hp).pattern(q.clone()).top_k(3).run().unwrap();
        assert_eq!(*rs.matches, *rp.matches);
        assert_eq!(rs.route, rp.route);
        assert_eq!(
            rs.experts
                .iter()
                .map(|x| (x.node, x.rank))
                .collect::<Vec<_>>(),
            rp.experts
                .iter()
                .map(|x| (x.node, x.rank))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn csr_snapshot_rebuilt_after_updates() {
        // fig1 plus inert padding so the graph crosses the parallel-path
        // size threshold (a bare fig1 stays on the sequential path)
        let f = collaboration_fig1();
        let mut g = f.graph.clone();
        while g.size() < PAD_SIZE {
            g.add_node("pad", []);
        }
        let e = ExpFinder::new(EngineConfig {
            exec: ExecConfig {
                threads: 2,
                batch_parallelism: 1,
            },
            ..EngineConfig::default()
        });
        let h = e.add_graph("fig1", g).unwrap();
        let q = fig1_pattern();
        let before = e
            .query(&h)
            .pattern(q.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap();
        assert_eq!(before.matches.total_pairs(), 7);
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        // the cached snapshot is stale by version; the next parallel query
        // must rebuild it and see Fred
        let after = e.query(&h).pattern(q).prefer(Route::Direct).run().unwrap();
        assert_eq!(after.matches.total_pairs(), 8, "snapshot was refreshed");
        assert!(after.graph_version > before.graph_version);
    }

    #[test]
    fn sequential_csr_path_correct_across_updates() {
        // big graph + fully sequential engine: the first read at a
        // version stays on the live adjacency, the second builds and
        // uses the snapshot (build-on-second-read) — answers must be
        // exact on every step of an alternating update/query stream
        let f = collaboration_fig1();
        let mut g = f.graph.clone();
        while g.size() < PAD_SIZE {
            g.add_node("pad", []);
        }
        let e = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let h = e.add_graph("fig1", g).unwrap();
        let q = fig1_pattern();
        let run = || {
            e.query(&h)
                .pattern(q.clone())
                .prefer(Route::Direct)
                .top_k(2)
                .run()
                .unwrap()
        };
        assert_eq!(run().matches.total_pairs(), 7, "first read (live)");
        assert_eq!(run().matches.total_pairs(), 7, "second read (snapshot)");
        assert_eq!(run().matches.total_pairs(), 7, "third read (snapshot)");
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        assert_eq!(run().matches.total_pairs(), 8, "post-update read (live)");
        assert_eq!(
            run().matches.total_pairs(),
            8,
            "post-update read (snapshot)"
        );
        e.apply_updates(&h, &[EdgeUpdate::Delete(f.e1.0, f.e1.1)])
            .unwrap();
        let resp = run();
        assert_eq!(resp.matches.total_pairs(), 7);
        assert_eq!(resp.experts[0].node, f.bob, "ranking agrees on every path");
    }

    #[test]
    fn reach_index_warms_and_invalidates_across_versions() {
        use expfinder_pattern::{Bound, PatternBuilder, Predicate};
        // fig1 plus inert padding so the CSR (and hence the index) path
        // engages on the sequential engine
        let f = collaboration_fig1();
        let mut g = f.graph.clone();
        while g.size() < PAD_SIZE {
            g.add_node("pad", []);
        }
        let e = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let h = e.add_graph("fig1", g).unwrap();
        // pure-label star: both constraints are class-seeded
        let q = PatternBuilder::new()
            .node("sa", Predicate::label("SA"))
            .node("sd", Predicate::label("SD"))
            .node("st", Predicate::label("ST"))
            .edge("sa", "sd", Bound::hops(2))
            .edge("sa", "st", Bound::hops(3))
            .build()
            .unwrap();
        let run = || {
            e.query(&h)
                .pattern(q.clone())
                .prefer(Route::Direct)
                .run()
                .unwrap()
        };

        let first = run(); // live adjacency: no snapshot, no index
        assert_eq!(e.index_totals().hits, 0, "live route never consults it");
        let second = run(); // second sequential read builds CSR + index
        assert_eq!(*second.matches, *first.matches);
        let t1 = e.index_totals();
        assert!(t1.hits >= 2, "class-seeded refreshes hit ({t1:?})");
        assert!(t1.entries >= 2 && t1.bytes > 0, "entries memoized ({t1:?})");

        let third = run(); // warm: same entries, more hits
        assert_eq!(*third.matches, *first.matches);
        let t2 = e.index_totals();
        assert!(t2.hits > t1.hits);
        assert_eq!(t2.entries, t1.entries, "no duplicate entries on reuse");

        // an update moves the version: the stale index must never serve
        // the new graph — answers match a from-scratch engine
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let after_live = run(); // first read of the new version (live)
        let after_warm = run(); // second read: fresh CSR + fresh index
        assert_eq!(*after_warm.matches, *after_live.matches);
        let fresh = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let hf = fresh.add_graph("fig1", e.snapshot(&h).unwrap()).unwrap();
        let expect = fresh
            .query(&hf)
            .pattern(q.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap();
        assert_eq!(*after_warm.matches, *expect.matches, "index invalidated");
        let t3 = e.index_totals();
        assert!(t3.hits > t2.hits);
        assert_eq!(
            t3.entries, t1.entries,
            "old version's entries were dropped, not accumulated"
        );
    }

    #[test]
    fn parallel_route_consults_the_index_with_identical_results() {
        let f = collaboration_fig1();
        let mut g = f.graph.clone();
        while g.size() < PAD_SIZE {
            g.add_node("pad", []);
        }
        let e = ExpFinder::new(EngineConfig {
            exec: ExecConfig {
                threads: 3,
                batch_parallelism: 1,
            },
            ..EngineConfig::default()
        });
        let h = e.add_graph("fig1", g.clone()).unwrap();
        let q = fig1_pattern();
        let r1 = e
            .query(&h)
            .pattern(q.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap();
        let r2 = e
            .query(&h)
            .pattern(q.clone())
            .prefer(Route::Direct)
            .run()
            .unwrap();
        assert_eq!(*r1.matches, *r2.matches);
        assert_eq!(r1.matches.total_pairs(), 7);
        let t = e.index_totals();
        // fig1_pattern seeds carry attr predicates, but at least the
        // provider was consulted on the parallel route
        assert!(t.hits + t.misses > 0, "parallel route is wired ({t:?})");
    }

    #[test]
    fn http_status_mapping_is_total_and_sane() {
        let cases: Vec<(ExpFinderError, u16)> = vec![
            (ExpFinderError::UnknownGraph("g".into()), 404),
            (ExpFinderError::UnknownQuery("q".into()), 404),
            (ExpFinderError::StaleHandle("g".into()), 404),
            (ExpFinderError::DuplicateGraph("g".into()), 409),
            (ExpFinderError::DuplicateQuery("q".into()), 409),
            (ExpFinderError::InvalidGraphName("a/b".into()), 400),
            (ExpFinderError::MissingPattern, 400),
            (ExpFinderError::ForeignHandle("g".into()), 500),
            (ExpFinderError::Storage("boom".into()), 500),
            (ExpFinderError::DeadlineExceeded(EvalStats::default()), 408),
        ];
        for (e, want) in cases {
            assert_eq!(e.http_status(), want, "{e}");
        }
        // #[from] variants keep their class
        let parse = expfinder_pattern::parser::parse("node oops").unwrap_err();
        assert_eq!(ExpFinderError::from(parse).http_status(), 400);
        let io = std::io::Error::other("x");
        assert_eq!(ExpFinderError::from(io).http_status(), 500);
    }

    #[test]
    fn zero_deadline_aborts_and_leaves_engine_unpoisoned() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        let err = e
            .query(&h)
            .pattern(q.clone())
            .deadline(Duration::ZERO)
            .run()
            .unwrap_err();
        match &err {
            ExpFinderError::DeadlineExceeded(_) => {}
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert_eq!(err.http_status(), 408);
        assert!(err.partial_stats().is_some());
        assert!(e.cancel_totals().fired >= 1, "fire transition drained");
        // nothing was cached by the abort, and the next un-deadlined
        // query on the same engine matches a fresh evaluation
        let after = e.query(&h).pattern(q.clone()).run().unwrap();
        assert_ne!(after.route, EvalRoute::Cache);
        let fresh = ExpFinder::default();
        let h2 = fresh.add_graph("fig1", collaboration_fig1().graph).unwrap();
        let expect = fresh.query(&h2).pattern(q).run().unwrap();
        assert_eq!(*after.matches, *expect.matches);
    }

    #[test]
    fn batch_deadline_zero_fails_every_slot_with_408() {
        let (e, h, _) = engine_with_fig1();
        let specs = vec![
            QuerySpec::pattern(fig1_pattern()),
            QuerySpec::dsl("node sa* where label = \"SA\";"),
        ];
        let out = e.query_batch_deadline(&h, specs, Some(Duration::ZERO));
        assert_eq!(out.len(), 2);
        for r in out {
            let err = r.unwrap_err();
            assert_eq!(err.http_status(), 408);
            assert!(err.partial_stats().is_some());
        }
        assert!(e.cancel_totals().fired >= 1);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        let with = e
            .query(&h)
            .pattern(q.clone())
            .deadline(Duration::from_secs(3600))
            .run()
            .unwrap();
        assert_eq!(with.matches.total_pairs(), 7);
        assert_eq!(e.cancel_totals().fired, 0);
        // a generous per-spec deadline in a batch is equally inert
        let out = e.query_batch(
            &h,
            vec![QuerySpec::pattern(q).deadline(Duration::from_secs(3600))],
        );
        assert_eq!(out[0].as_ref().unwrap().matches.total_pairs(), 7);
    }

    #[test]
    fn graph_infos_reflect_catalog_state() {
        let e = ExpFinder::default();
        assert!(e.graph_infos().is_empty());
        let h = e.add_graph("fig1", collaboration_fig1().graph).unwrap();
        e.add_graph("empty", DiGraph::new()).unwrap();
        e.register_query(&h, "team", fig1_pattern()).unwrap();
        e.compress(&h).unwrap();

        let infos = e.graph_infos();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "empty", "sorted by name");
        assert_eq!(infos[0].nodes, 0);
        assert!(!infos[0].compressed);
        let fig1 = &infos[1];
        assert_eq!(fig1.name, "fig1");
        assert_eq!(fig1.nodes, 9);
        assert_eq!(fig1.registered_queries, 1);
        assert!(fig1.compressed);
        let v0 = fig1.version;

        let f = collaboration_fig1();
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        assert!(e.graph_infos()[1].version > v0);
    }

    #[test]
    fn traced_updates_report_registered_deltas() {
        let (e, h, f) = engine_with_fig1();
        e.register_query(&h, "team", fig1_pattern()).unwrap();
        let report = e
            .apply_updates_traced(
                &h,
                &[
                    EdgeUpdate::Insert(f.e1.0, f.e1.1),
                    // duplicate: a no-op that must not count as applied
                    EdgeUpdate::Insert(f.e1.0, f.e1.1),
                ],
            )
            .unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.attempted, 2);
        assert_eq!(report.registered.len(), 1);
        let d = &report.registered[0];
        assert_eq!(d.query, "team");
        assert_eq!(d.before_pairs, 7);
        assert_eq!(d.after_pairs, 8, "Fred joined the maintained result");
        assert_eq!(d.delta(), 1);
        assert_eq!(
            report.graph_version,
            e.read_graph(&h, |g| g.version()).unwrap()
        );
        // the untraced path agrees on applied counts
        let n = e
            .apply_updates(&h, &[EdgeUpdate::Delete(f.e1.0, f.e1.1)])
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn handles_are_cheap_and_comparable() {
        let (e, h, _) = engine_with_fig1();
        let h2 = h.clone();
        let h3 = e.handle("fig1").unwrap();
        assert_eq!(h, h2);
        assert_eq!(h, h3);
        assert_eq!(h.name(), "fig1");
        assert_eq!(format!("{h}"), format!("fig1#{}", h.id()));
    }

    #[test]
    fn every_response_carries_a_plan_decision() {
        let (e, h, _) = engine_with_fig1();
        let q = fig1_pattern();
        // cost-modeled evaluation: candidates present, live wins on tiny
        let first = e.query(&h).pattern(q.clone()).run().unwrap();
        assert_eq!(first.plan.chosen, PlanRoute::Live);
        assert!(!first.plan.overridden);
        assert!(
            first.plan.candidates.len() >= 2,
            "live and snapshot were costed: {:?}",
            first.plan.candidates
        );
        // exact short circuit: the cache hit is recorded without costing
        let second = e.query(&h).pattern(q.clone()).run().unwrap();
        assert_eq!(second.plan.chosen, PlanRoute::Cache);
        assert!(second.plan.candidates.is_empty());
        // a preference is recorded as an override, not a silent branch
        let forced = e.query(&h).pattern(q).prefer(Route::Direct).run().unwrap();
        assert!(forced.plan.overridden);
        let t = e.planner_totals();
        assert_eq!(t.decisions, 3);
        assert_eq!(t.overrides, 1);
    }

    #[test]
    fn planner_warms_into_the_snapshot_route_and_resets_on_update() {
        // the acceptance workload: repeated reads of one version migrate
        // live → snapshot as the build amortizes; an update batch resets
        // the window and the next read drops back to the live adjacency
        let f = collaboration_fig1();
        let mut g = f.graph.clone();
        while g.size() < PAD_SIZE {
            g.add_node("pad", []);
        }
        let e = ExpFinder::new(EngineConfig {
            exec: ExecConfig::sequential(),
            ..EngineConfig::default()
        });
        let h = e.add_graph("fig1", g).unwrap();
        let q = fig1_pattern();
        let run = || {
            e.query(&h)
                .pattern(q.clone())
                .prefer(Route::Direct)
                .run()
                .unwrap()
        };
        assert_eq!(run().plan.chosen, PlanRoute::Live, "cold first read");
        assert_eq!(run().plan.chosen, PlanRoute::Snapshot, "amortized");
        assert_eq!(run().plan.chosen, PlanRoute::Snapshot, "sunk build");
        e.apply_updates(&h, &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let post = run();
        assert_eq!(post.plan.chosen, PlanRoute::Live, "window reset");
        let snap = post
            .plan
            .candidates
            .iter()
            .find(|c| c.route == PlanRoute::Snapshot)
            .unwrap();
        assert!(
            snap.cost.is_infinite(),
            "stale snapshot has no amortization horizon"
        );
    }
}
