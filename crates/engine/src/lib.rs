//! The ExpFinder query engine — the system of Fig. 2 of the paper.
//!
//! Coordinates the four modules exactly as §II describes: on a pattern
//! query the engine (1) returns the cached result if it is still valid,
//! (2) consults the registered incremental maintainers, (3) evaluates on
//! the compressed graph when one exists and the query is
//! compression-safe, and otherwise (4) evaluates directly — with the
//! quadratic simulation algorithm for 1-bounded patterns and the cubic
//! bounded-simulation algorithm for the rest. Updates flow through
//! [`ExpFinder::apply_updates`], which maintains the graph, its
//! compressed counterpart and every registered query in one pass.

pub mod cache;
pub mod report;
pub mod shell;
pub mod storage;

use cache::QueryCache;
use expfinder_compress::maintain::MaintainedCompression;
use expfinder_compress::{CompressError, CompressStats, CompressionMethod};
use expfinder_core::{
    bounded_simulation, graph_simulation, rank_matches, MatchError, MatchRelation, RankedMatch,
    ResultGraph,
};
use expfinder_graph::{DiGraph, EdgeUpdate};
use expfinder_incremental::{IncrementalBoundedSim, IncrementalSim, Maintainer};
use expfinder_pattern::Pattern;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Cached query results kept per engine (LRU).
    pub cache_capacity: usize,
    /// Route compression-safe queries through `G_c` automatically.
    pub auto_use_compressed: bool,
    /// Equivalence used when compressing.
    pub compression_method: CompressionMethod,
    /// Recompress when maintenance drift exceeds this factor.
    pub recompress_drift: f64,
    /// Threads for result-graph construction.
    pub result_graph_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 64,
            auto_use_compressed: true,
            compression_method: CompressionMethod::Bisimulation,
            recompress_drift: 2.0,
            result_graph_threads: 1,
        }
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    UnknownGraph(String),
    DuplicateGraph(String),
    UnknownQuery(String),
    DuplicateQuery(String),
    Match(MatchError),
    Compress(CompressError),
    Io(std::io::Error),
    Storage(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownGraph(n) => write!(f, "no graph named {n:?}"),
            EngineError::DuplicateGraph(n) => write!(f, "graph {n:?} already exists"),
            EngineError::UnknownQuery(n) => write!(f, "no registered query named {n:?}"),
            EngineError::DuplicateQuery(n) => write!(f, "query {n:?} already registered"),
            EngineError::Match(e) => write!(f, "match error: {e}"),
            EngineError::Compress(e) => write!(f, "compression error: {e}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MatchError> for EngineError {
    fn from(e: MatchError) -> Self {
        EngineError::Match(e)
    }
}

impl From<CompressError> for EngineError {
    fn from(e: CompressError) -> Self {
        EngineError::Compress(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// How a query was answered — surfaced so the demo (and the tests) can
/// verify the routing described in §II.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EvalRoute {
    /// Served from the result cache.
    Cache,
    /// Served from a registered query's incrementally-maintained state.
    Registered,
    /// Evaluated on the compressed graph, then expanded.
    Compressed,
    /// Evaluated directly with the quadratic simulation algorithm.
    DirectSimulation,
    /// Evaluated directly with the cubic bounded-simulation algorithm.
    DirectBounded,
}

/// Result of [`ExpFinder::evaluate`].
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    pub matches: Arc<MatchRelation>,
    pub route: EvalRoute,
}

/// Result of [`ExpFinder::find_experts`].
#[derive(Clone, Debug)]
pub struct ExpertReport {
    pub outcome: QueryOutcome,
    /// Best-K matches of the output node, ascending rank.
    pub experts: Vec<RankedMatch>,
}

/// A registered query with its incremental maintainer.
struct RegisteredQuery {
    pattern: Pattern,
    maintainer: Box<dyn Maintainer + Send + Sync>,
}

/// One managed graph.
struct StoredGraph {
    graph: DiGraph,
    compressed: Option<MaintainedCompression>,
    registered: HashMap<String, RegisteredQuery>,
}

/// The ExpFinder system facade.
pub struct ExpFinder {
    config: EngineConfig,
    graphs: HashMap<String, StoredGraph>,
    cache: Mutex<QueryCache>,
}

impl Default for ExpFinder {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl ExpFinder {
    pub fn new(config: EngineConfig) -> ExpFinder {
        let cache = Mutex::new(QueryCache::new(config.cache_capacity));
        ExpFinder {
            config,
            graphs: HashMap::new(),
            cache,
        }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    // ------------------------------ catalog ------------------------------

    /// Register a data graph under a name.
    pub fn add_graph(&mut self, name: &str, graph: DiGraph) -> Result<(), EngineError> {
        if self.graphs.contains_key(name) {
            return Err(EngineError::DuplicateGraph(name.to_owned()));
        }
        self.graphs.insert(
            name.to_owned(),
            StoredGraph {
                graph,
                compressed: None,
                registered: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Remove a graph (and its compression and registered queries).
    pub fn remove_graph(&mut self, name: &str) -> Result<(), EngineError> {
        self.graphs
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownGraph(name.to_owned()))
    }

    /// Access a managed graph.
    pub fn graph(&self, name: &str) -> Result<&DiGraph, EngineError> {
        self.stored(name).map(|s| &s.graph)
    }

    /// Names of all managed graphs (sorted).
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.keys().cloned().collect();
        names.sort();
        names
    }

    fn stored(&self, name: &str) -> Result<&StoredGraph, EngineError> {
        self.graphs
            .get(name)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_owned()))
    }

    fn stored_mut(&mut self, name: &str) -> Result<&mut StoredGraph, EngineError> {
        self.graphs
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_owned()))
    }

    // ---------------------------- compression ----------------------------

    /// Build (or rebuild) the compressed counterpart of a graph.
    pub fn compress(&mut self, name: &str) -> Result<CompressStats, EngineError> {
        let method = self.config.compression_method;
        let stored = self.stored_mut(name)?;
        let mc = MaintainedCompression::new(&stored.graph, method)?;
        let stats = mc.compressed().stats();
        stored.compressed = Some(mc);
        Ok(stats)
    }

    /// Drop the compressed counterpart.
    pub fn drop_compression(&mut self, name: &str) -> Result<(), EngineError> {
        self.stored_mut(name)?.compressed = None;
        Ok(())
    }

    /// Compression statistics, if the graph is compressed.
    pub fn compression_stats(&self, name: &str) -> Result<Option<CompressStats>, EngineError> {
        Ok(self
            .stored(name)?
            .compressed
            .as_ref()
            .map(|mc| mc.compressed().stats()))
    }

    // ------------------------- registered queries ------------------------

    /// Register a frequently-issued query for incremental maintenance
    /// (paper §II: "maintains the query results of a set of frequently
    /// issued queries (decided by the users)").
    pub fn register_query(
        &mut self,
        graph: &str,
        query_name: &str,
        pattern: Pattern,
    ) -> Result<(), EngineError> {
        let stored = self.stored_mut(graph)?;
        if stored.registered.contains_key(query_name) {
            return Err(EngineError::DuplicateQuery(query_name.to_owned()));
        }
        let maintainer: Box<dyn Maintainer + Send + Sync> = if pattern.is_simulation() {
            Box::new(IncrementalSim::new(&stored.graph, &pattern)?)
        } else {
            Box::new(IncrementalBoundedSim::new(&stored.graph, &pattern))
        };
        stored.registered.insert(
            query_name.to_owned(),
            RegisteredQuery {
                pattern,
                maintainer,
            },
        );
        Ok(())
    }

    /// Drop a registered query.
    pub fn unregister_query(&mut self, graph: &str, query_name: &str) -> Result<(), EngineError> {
        self.stored_mut(graph)?
            .registered
            .remove(query_name)
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownQuery(query_name.to_owned()))
    }

    /// Names of queries registered on a graph.
    pub fn registered_queries(&self, graph: &str) -> Result<Vec<String>, EngineError> {
        let mut names: Vec<String> = self.stored(graph)?.registered.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    /// The incrementally-maintained result of a registered query.
    pub fn registered_result(
        &self,
        graph: &str,
        query_name: &str,
    ) -> Result<MatchRelation, EngineError> {
        let stored = self.stored(graph)?;
        let rq = stored
            .registered
            .get(query_name)
            .ok_or_else(|| EngineError::UnknownQuery(query_name.to_owned()))?;
        Ok(rq.maintainer.current())
    }

    // ------------------------------ updates ------------------------------

    /// Apply edge updates to a graph, maintaining its compression and its
    /// registered queries along the way. Returns how many updates actually
    /// changed the graph (duplicates/no-ops are skipped).
    pub fn apply_updates(
        &mut self,
        name: &str,
        updates: &[EdgeUpdate],
    ) -> Result<usize, EngineError> {
        let drift = self.config.recompress_drift;
        let stored = self.stored_mut(name)?;
        let mut applied = 0usize;
        for &up in updates {
            if !stored.graph.apply(up) {
                continue;
            }
            applied += 1;
            if let Some(mc) = stored.compressed.as_mut() {
                mc.on_update(&stored.graph, up);
            }
            for rq in stored.registered.values_mut() {
                rq.maintainer.on_update(&stored.graph, up);
            }
        }
        if let Some(mc) = stored.compressed.as_mut() {
            mc.refresh(&stored.graph);
            mc.maybe_recompress(&stored.graph, drift)?;
        }
        Ok(applied)
    }

    // ----------------------------- evaluation ----------------------------

    /// Evaluate a pattern on a graph, routing per paper §II.
    pub fn evaluate(&self, name: &str, pattern: &Pattern) -> Result<QueryOutcome, EngineError> {
        let stored = self.stored(name)?;
        let key = QueryCache::key(name, stored.graph.version(), pattern);

        // 1. cache
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(QueryOutcome {
                matches: hit,
                route: EvalRoute::Cache,
            });
        }

        // 2. registered incremental state
        for rq in stored.registered.values() {
            if rq.pattern.fingerprint() == pattern.fingerprint() {
                let matches = Arc::new(rq.maintainer.current());
                self.cache.lock().put(key, Arc::clone(&matches));
                return Ok(QueryOutcome {
                    matches,
                    route: EvalRoute::Registered,
                });
            }
        }

        // 3. compressed graph, when safe
        if self.config.auto_use_compressed {
            if let Some(mc) = stored.compressed.as_ref() {
                let gc = mc.compressed();
                if gc.validate_pattern(pattern).is_ok() {
                    let on_c = if pattern.is_simulation() {
                        graph_simulation(gc, pattern)?
                    } else {
                        bounded_simulation(gc, pattern)?
                    };
                    let matches = Arc::new(gc.expand(&on_c));
                    self.cache.lock().put(key, Arc::clone(&matches));
                    return Ok(QueryOutcome {
                        matches,
                        route: EvalRoute::Compressed,
                    });
                }
            }
        }

        // 4. direct evaluation
        let (m, route) = if pattern.is_simulation() {
            (
                graph_simulation(&stored.graph, pattern)?,
                EvalRoute::DirectSimulation,
            )
        } else {
            (
                bounded_simulation(&stored.graph, pattern)?,
                EvalRoute::DirectBounded,
            )
        };
        let matches = Arc::new(m);
        self.cache.lock().put(key, Arc::clone(&matches));
        Ok(QueryOutcome {
            matches,
            route,
        })
    }

    /// The paper's headline operation: evaluate, rank by social impact,
    /// return the top-K experts for the pattern's output node.
    pub fn find_experts(
        &self,
        name: &str,
        pattern: &Pattern,
        k: usize,
    ) -> Result<ExpertReport, EngineError> {
        let outcome = self.evaluate(name, pattern)?;
        let stored = self.stored(name)?;
        let rg = ResultGraph::build_with(
            &stored.graph,
            pattern,
            &outcome.matches,
            expfinder_core::BuildOptions {
                threads: self.config.result_graph_threads.max(1),
            },
        );
        let mut experts = rank_matches(&rg, pattern, &outcome.matches)?;
        experts.truncate(k);
        Ok(ExpertReport { outcome, experts })
    }

    /// Build the result graph for a previously evaluated outcome.
    pub fn result_graph(
        &self,
        name: &str,
        pattern: &Pattern,
        outcome: &QueryOutcome,
    ) -> Result<ResultGraph, EngineError> {
        let stored = self.stored(name)?;
        Ok(ResultGraph::build(&stored.graph, pattern, &outcome.matches))
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> cache::CacheStats {
        self.cache.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_pattern::fixtures::fig1_pattern;

    fn engine_with_fig1() -> (ExpFinder, expfinder_graph::fixtures::Fig1) {
        let f = collaboration_fig1();
        let mut e = ExpFinder::default();
        e.add_graph("fig1", f.graph.clone()).unwrap();
        (e, f)
    }

    #[test]
    fn evaluate_routes_direct_then_cache() {
        let (e, _) = engine_with_fig1();
        let q = fig1_pattern();
        let first = e.evaluate("fig1", &q).unwrap();
        assert_eq!(first.route, EvalRoute::DirectBounded);
        assert_eq!(first.matches.total_pairs(), 7);
        let second = e.evaluate("fig1", &q).unwrap();
        assert_eq!(second.route, EvalRoute::Cache);
        assert_eq!(*second.matches, *first.matches);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn simulation_pattern_routes_to_quadratic() {
        let (e, _) = engine_with_fig1();
        let q = fig1_pattern().as_simulation();
        let out = e.evaluate("fig1", &q).unwrap();
        assert_eq!(out.route, EvalRoute::DirectSimulation);
        assert!(out.matches.is_empty(), "paper: simulation fails on Fig. 1");
    }

    #[test]
    fn updates_invalidate_cache_via_version() {
        let (mut e, f) = engine_with_fig1();
        let q = fig1_pattern();
        let before = e.evaluate("fig1", &q).unwrap();
        assert_eq!(before.matches.total_pairs(), 7);
        e.apply_updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let after = e.evaluate("fig1", &q).unwrap();
        assert_ne!(after.route, EvalRoute::Cache, "version changed");
        assert_eq!(after.matches.total_pairs(), 8, "Fred joined");
    }

    #[test]
    fn compressed_route_preserves_results() {
        let (mut e, _) = engine_with_fig1();
        let q = fig1_pattern();
        let direct = e.evaluate("fig1", &q).unwrap().matches;
        let stats = e.compress("fig1").unwrap();
        assert!(stats.compressed_nodes <= stats.original_nodes);
        // same version but the cache key still matches — flush by using a
        // fresh engine to force the compressed route
        let mut e2 = ExpFinder::default();
        e2.add_graph("fig1", collaboration_fig1().graph).unwrap();
        e2.compress("fig1").unwrap();
        let out = e2.evaluate("fig1", &q).unwrap();
        assert_eq!(out.route, EvalRoute::Compressed);
        assert_eq!(*out.matches, *direct);
    }

    #[test]
    fn identity_attr_pattern_bypasses_compression() {
        let mut e = ExpFinder::default();
        e.add_graph("fig1", collaboration_fig1().graph).unwrap();
        e.compress("fig1").unwrap();
        let q = expfinder_pattern::PatternBuilder::new()
            .node(
                "bob",
                expfinder_pattern::Predicate::attr_eq("name", "Bob"),
            )
            .build()
            .unwrap();
        let out = e.evaluate("fig1", &q).unwrap();
        assert_eq!(out.route, EvalRoute::DirectSimulation);
        assert_eq!(out.matches.total_pairs(), 1);
    }

    #[test]
    fn registered_query_is_maintained_and_preferred() {
        let (mut e, f) = engine_with_fig1();
        let q = fig1_pattern();
        e.register_query("fig1", "team", q.clone()).unwrap();
        assert_eq!(e.registered_queries("fig1").unwrap(), vec!["team"]);

        let out = e.evaluate("fig1", &q).unwrap();
        assert_eq!(out.route, EvalRoute::Registered);
        assert_eq!(out.matches.total_pairs(), 7);

        e.apply_updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let maintained = e.registered_result("fig1", "team").unwrap();
        assert_eq!(maintained.total_pairs(), 8);
        let out = e.evaluate("fig1", &q).unwrap();
        assert_eq!(out.route, EvalRoute::Registered);
        assert_eq!(out.matches.total_pairs(), 8);
    }

    #[test]
    fn find_experts_full_pipeline() {
        let (e, f) = engine_with_fig1();
        let report = e.find_experts("fig1", &fig1_pattern(), 1).unwrap();
        assert_eq!(report.experts.len(), 1);
        assert_eq!(report.experts[0].node, f.bob);
        assert!((report.experts[0].rank - 1.8).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        let mut e = ExpFinder::default();
        assert!(matches!(
            e.evaluate("ghost", &fig1_pattern()),
            Err(EngineError::UnknownGraph(_))
        ));
        e.add_graph("g", DiGraph::new()).unwrap();
        assert!(matches!(
            e.add_graph("g", DiGraph::new()),
            Err(EngineError::DuplicateGraph(_))
        ));
        assert!(matches!(
            e.registered_result("g", "nope"),
            Err(EngineError::UnknownQuery(_))
        ));
        e.remove_graph("g").unwrap();
        assert!(matches!(
            e.remove_graph("g"),
            Err(EngineError::UnknownGraph(_))
        ));
    }

    #[test]
    fn compression_maintained_under_updates() {
        let (mut e, f) = engine_with_fig1();
        e.compress("fig1").unwrap();
        e.apply_updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        let q = fig1_pattern();
        let mut e2 = ExpFinder::default();
        let mut g2 = collaboration_fig1().graph;
        g2.add_edge(f.e1.0, f.e1.1);
        e2.add_graph("fig1", g2).unwrap();
        let fresh = e2.evaluate("fig1", &q).unwrap();
        let maintained = e.evaluate("fig1", &q).unwrap();
        assert_eq!(*maintained.matches, *fresh.matches);
        assert_eq!(maintained.route, EvalRoute::Compressed);
    }
}
