//! The interactive shell — the line-oriented substitute for the paper's
//! GUI (Figs. 3–5; see DESIGN.md §3, substitution 2).
//!
//! Every operation named in the paper's GUI walkthrough has a command:
//! graph management (`gen`, `load`, `save`, `graphs`, `use`, `info`),
//! query construction via the pattern DSL (`query`, `experts`,
//! `register`), result browsing at both granularities (`rollup`,
//! `drill`), updates (`update`), and the compression module (`compress`,
//! `decompress`). The shell is a pure function from command lines to
//! output strings, so it is fully testable; `examples/expfinder_shell.rs`
//! wires it to stdin.
//!
//! The shell holds an `Arc<ExpFinder>` and a current [`GraphHandle`] —
//! the same shareable engine any other consumer would hold, exercised
//! through the handle-based `&self` API.

use crate::{
    report, storage, EngineConfig, EvalRoute, ExpFinder, ExpFinderError, GraphHandle, QueryOutcome,
    QuerySpec,
};
use expfinder_compress::CompressionMethod;
use expfinder_core::ResultGraph;
use expfinder_graph::generate::{
    collaboration, erdos_renyi, preferential_attachment, random_updates, twitter_like,
    CollabConfig, NodeSpec, TwitterConfig,
};
use expfinder_graph::{EdgeUpdate, GraphView, NodeId};
use expfinder_pattern::{parser, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;

/// The shell's outcome for one line.
pub type ShellResult = Result<String, String>;

/// Interactive session state.
pub struct Shell {
    engine: Arc<ExpFinder>,
    current: Option<GraphHandle>,
    seed: u64,
    last_query: Option<(Pattern, QueryOutcome)>,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new(EngineConfig::default())
    }
}

const HELP: &str = "\
ExpFinder shell — expert search by graph pattern matching
  graphs                         list managed graphs
  gen <name> <kind> [k=v ...]    generate: collab | twitter | er | pa
                                 (teams=, size=, n=, m=, k=, seed=)
  load <name> <path>             load a .efg graph file
  save <name> <path>             save a graph to a .efg file
  savecat <dir> / loadcat <dir>  save / load the whole catalog
  use <name>                     select the current graph
  info                           current graph summary
  query <pattern-dsl>            evaluate a pattern (one line, ';'-separated)
  batch <file>                   run one query DSL per line, in parallel,
                                 printing per-query timings
  dual <pattern-dsl>             evaluate under dual simulation (extension)
  experts <k> <pattern-dsl>      evaluate + rank, print the top-k experts
  rollup                         summary of the last result
  drill <node-id|name>           detail view of one match
  dot <path>                     export the last result graph as Graphviz DOT
  reach <a> <b>                  O(1) reachability query (extension index)
  update insert <a> <b>          single edge insertion
  update delete <a> <b>          single edge deletion
  update random <count> [ratio]  random batch (ratio = insert fraction)
  register <qname> <pattern-dsl> register a query for incremental upkeep
  registered                     list registered queries
  result <qname>                 maintained result of a registered query
  compress [bisim|simeq]         build the compressed graph
  decompress                     drop the compressed graph
  cache                          cache statistics
  seed <n>                       set the RNG seed for gen/update random
  help                           this text";

impl Shell {
    pub fn new(config: EngineConfig) -> Shell {
        Shell {
            engine: Arc::new(ExpFinder::new(config)),
            current: None,
            seed: 42,
            last_query: None,
        }
    }

    /// The underlying shareable engine (used by examples to preload
    /// graphs — `add_graph` takes `&self`, so no mutable access needed).
    pub fn engine(&self) -> &Arc<ExpFinder> {
        &self.engine
    }

    /// Select a graph programmatically.
    pub fn select(&mut self, name: &str) -> ShellResult {
        self.exec(&format!("use {name}"))
    }

    fn current(&self) -> Result<GraphHandle, String> {
        self.current
            .clone()
            .ok_or_else(|| "no graph selected; `use <name>` first".to_owned())
    }

    fn err(e: ExpFinderError) -> String {
        e.to_string()
    }

    /// Execute one command line.
    pub fn exec(&mut self, line: &str) -> ShellResult {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "graphs" => {
                let names = self.engine.graph_names();
                if names.is_empty() {
                    Ok("(no graphs)".to_owned())
                } else {
                    Ok(names.join("\n"))
                }
            }
            "gen" => self.cmd_gen(rest),
            "load" => self.cmd_load(rest),
            "save" => self.cmd_save(rest),
            "savecat" => {
                storage::save_catalog(&self.engine, rest).map_err(Self::err)?;
                Ok(format!("catalog saved to {rest}"))
            }
            "loadcat" => {
                self.engine = Arc::new(storage::load_catalog(rest).map_err(Self::err)?);
                self.current = None;
                self.last_query = None;
                Ok(format!("catalog loaded from {rest}"))
            }
            "use" => {
                let h = self.engine.handle(rest).map_err(Self::err)?;
                self.current = Some(h);
                Ok(format!("using {rest}"))
            }
            "info" => self.cmd_info(),
            "query" => self.cmd_query(rest),
            "batch" => self.cmd_batch(rest),
            "dual" => self.cmd_dual(rest),
            "experts" => self.cmd_experts(rest),
            "rollup" => self.cmd_rollup(),
            "drill" => self.cmd_drill(rest),
            "dot" => self.cmd_dot(rest),
            "reach" => self.cmd_reach(rest),
            "update" => self.cmd_update(rest),
            "register" => self.cmd_register(rest),
            "registered" => {
                let h = self.current()?;
                let qs = self.engine.registered_queries(&h).map_err(Self::err)?;
                if qs.is_empty() {
                    Ok("(no registered queries)".to_owned())
                } else {
                    Ok(qs.join("\n"))
                }
            }
            "result" => {
                let h = self.current()?;
                let m = self.engine.registered_result(&h, rest).map_err(Self::err)?;
                Ok(format!("{} pairs maintained for {rest}", m.total_pairs()))
            }
            "compress" => self.cmd_compress(rest),
            "decompress" => {
                let h = self.current()?;
                self.engine.drop_compression(&h).map_err(Self::err)?;
                Ok("compression dropped".to_owned())
            }
            "cache" => {
                let s = self.engine.cache_stats();
                Ok(format!(
                    "cache: {} hits, {} misses, {} evictions",
                    s.hits, s.misses, s.evictions
                ))
            }
            "seed" => {
                self.seed = rest.parse().map_err(|e| format!("bad seed: {e}"))?;
                Ok(format!("seed = {}", self.seed))
            }
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    fn cmd_gen(&mut self, rest: &str) -> ShellResult {
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or("usage: gen <name> <kind> [k=v ...]")?;
        let kind = parts.next().ok_or("usage: gen <name> <kind> [k=v ...]")?;
        let mut params: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad parameter {kv:?}"))?;
            params.insert(k, v.parse().map_err(|e| format!("bad value {v:?}: {e}"))?);
        }
        let seed = params.get("seed").copied().unwrap_or(self.seed as i64) as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let get = |k: &str, d: i64| params.get(k).copied().unwrap_or(d);
        let g = match kind {
            "collab" => collaboration(
                &mut rng,
                &CollabConfig {
                    teams: get("teams", 100) as usize,
                    team_size: get("size", 8) as usize,
                    ..CollabConfig::default()
                },
            ),
            "twitter" => twitter_like(
                &mut rng,
                &TwitterConfig {
                    n: get("n", 10_000) as usize,
                    avg_out: get("avg_out", 5) as usize,
                    ..TwitterConfig::default()
                },
            ),
            "er" => erdos_renyi(
                &mut rng,
                get("n", 1000) as usize,
                get("m", 5000) as usize,
                &NodeSpec::expert_fields(),
            ),
            "pa" => preferential_attachment(
                &mut rng,
                get("n", 1000) as usize,
                get("k", 3) as usize,
                &NodeSpec::expert_fields(),
            ),
            other => return Err(format!("unknown generator {other:?}")),
        };
        let summary = format!(
            "generated {name}: {} nodes, {} edges ({kind}, seed {seed})",
            g.node_count(),
            g.edge_count()
        );
        let h = self.engine.add_graph(name, g).map_err(Self::err)?;
        self.current = Some(h);
        Ok(summary)
    }

    fn cmd_load(&mut self, rest: &str) -> ShellResult {
        let (name, path) = rest.split_once(' ').ok_or("usage: load <name> <path>")?;
        let g = expfinder_graph::io::load_text(path.trim()).map_err(|e| e.to_string())?;
        let summary = format!(
            "loaded {name}: {} nodes, {} edges",
            g.node_count(),
            g.edge_count()
        );
        let h = self.engine.add_graph(name, g).map_err(Self::err)?;
        self.current = Some(h);
        Ok(summary)
    }

    fn cmd_save(&mut self, rest: &str) -> ShellResult {
        let (name, path) = rest.split_once(' ').ok_or("usage: save <name> <path>")?;
        let h = self.engine.handle(name).map_err(Self::err)?;
        self.engine
            .read_graph(&h, |g| expfinder_graph::io::save_text(g, path.trim()))
            .map_err(Self::err)?
            .map_err(|e| e.to_string())?;
        Ok(format!("saved {name} to {}", path.trim()))
    }

    fn cmd_info(&mut self) -> ShellResult {
        let h = self.current()?;
        let mut out = self
            .engine
            .read_graph(&h, |g| {
                format!(
                    "{}: {} nodes, {} edges (version {})\n",
                    h.name(),
                    g.node_count(),
                    g.edge_count(),
                    g.version()
                )
            })
            .map_err(Self::err)?;
        if let Some(stats) = self.engine.compression_stats(&h).map_err(Self::err)? {
            let _ = write!(
                out,
                "compressed: {} nodes, {} edges ({:.1}% size reduction)",
                stats.compressed_nodes,
                stats.compressed_edges,
                stats.size_reduction() * 100.0
            );
        } else {
            out.push_str("not compressed");
        }
        Ok(out)
    }

    fn parse_pattern(dsl: &str) -> Result<Pattern, String> {
        parser::parse(dsl).map_err(|e| format!("pattern error: {e}"))
    }

    fn cmd_query(&mut self, dsl: &str) -> ShellResult {
        let h = self.current()?;
        let q = Self::parse_pattern(dsl)?;
        let outcome = self.engine.evaluate(&h, &q).map_err(Self::err)?;
        let mut out = format!(
            "{} pairs via {}\n",
            outcome.matches.total_pairs(),
            route_name(outcome.route)
        );
        let body = self
            .engine
            .read_graph(&h, |g| {
                let rg = ResultGraph::build(g, &q, &outcome.matches);
                report::roll_up(g, &q, &outcome.matches, &rg)
            })
            .map_err(Self::err)?;
        out.push_str(&body);
        self.last_query = Some((q, outcome));
        Ok(out)
    }

    /// `batch <file>`: one query DSL per line (blank lines and `#`
    /// comments skipped), executed through [`ExpFinder::query_batch`] —
    /// the whole file drains across the engine's batch worker pool.
    fn cmd_batch(&mut self, path: &str) -> ShellResult {
        if path.is_empty() {
            return Err("usage: batch <file>".into());
        }
        let h = self.current()?;
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if lines.is_empty() {
            return Err(format!("{path}: no queries (one DSL per line)"));
        }
        let specs: Vec<QuerySpec> = lines.iter().map(|(_, l)| QuerySpec::dsl(*l)).collect();
        let started = std::time::Instant::now();
        let results = self.engine.query_batch(&h, specs);
        let wall = started.elapsed();

        let mut out = String::new();
        let mut failed = 0usize;
        for ((lineno, _), result) in lines.iter().zip(&results) {
            match result {
                Ok(resp) => {
                    let _ = writeln!(
                        out,
                        "line {lineno}: {} pairs via {} in {:.2}ms (v{})",
                        resp.matches.total_pairs(),
                        route_name(resp.route),
                        resp.timings.total.as_secs_f64() * 1e3,
                        resp.graph_version
                    );
                }
                Err(e) => {
                    failed += 1;
                    // same error→status mapping the HTTP server uses, so a
                    // slot that fails here reads exactly like one that
                    // fails over the wire
                    let _ = writeln!(out, "line {lineno}: error {}: {e}", e.http_status());
                }
            }
        }
        let _ = write!(
            out,
            "batch: {} queries ({} failed) in {:.2}ms, {} workers",
            results.len(),
            failed,
            wall.as_secs_f64() * 1e3,
            // mirror query_batch's clamp: never more workers than queries
            self.engine
                .config()
                .exec
                .batch_parallelism
                .clamp(1, results.len())
        );
        Ok(out)
    }

    fn cmd_dual(&mut self, dsl: &str) -> ShellResult {
        let h = self.current()?;
        let q = Self::parse_pattern(dsl)?;
        self.engine
            .read_graph(&h, |g| {
                let plain =
                    expfinder_core::bounded_simulation(g, &q).map_err(|e| e.to_string())?;
                let dual = expfinder_core::dual_simulation(g, &q);
                Ok(format!(
                    "bounded simulation: {} pairs; dual simulation: {} pairs ({} pruned by parent constraints)",
                    plain.total_pairs(),
                    dual.total_pairs(),
                    plain.total_pairs() - dual.total_pairs()
                ))
            })
            .map_err(Self::err)?
    }

    fn cmd_experts(&mut self, rest: &str) -> ShellResult {
        let (k_str, dsl) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: experts <k> <pattern-dsl>")?;
        let k: usize = k_str.parse().map_err(|e| format!("bad k: {e}"))?;
        let h = self.current()?;
        let q = Self::parse_pattern(dsl)?;
        // the fluent path: one consistent snapshot of evaluation + ranking
        let resp = self
            .engine
            .query(&h)
            .pattern(q.clone())
            .top_k(k)
            .run()
            .map_err(Self::err)?;
        let mut out = format!(
            "{} pairs via {}; top {} of output node:\n",
            resp.matches.total_pairs(),
            route_name(resp.route),
            resp.experts.len()
        );
        let table = self
            .engine
            .read_graph(&h, |g| report::expert_table(g, &resp.experts))
            .map_err(Self::err)?;
        out.push_str(&table);
        self.last_query = Some((
            q,
            QueryOutcome {
                matches: resp.matches,
                route: resp.route,
                graph_version: resp.graph_version,
            },
        ));
        Ok(out)
    }

    fn cmd_rollup(&mut self) -> ShellResult {
        let h = self.current()?;
        let (q, outcome) = self
            .last_query
            .as_ref()
            .ok_or("no previous query; run `query` first")?;
        self.engine
            .read_graph(&h, |g| {
                let rg = ResultGraph::build(g, q, &outcome.matches);
                report::roll_up(g, q, &outcome.matches, &rg)
            })
            .map_err(Self::err)
    }

    fn cmd_drill(&mut self, rest: &str) -> ShellResult {
        let h = self.current()?;
        let (q, outcome) = self
            .last_query
            .as_ref()
            .ok_or("no previous query; run `query` first")?;
        self.engine
            .read_graph(&h, |g| {
                // accept either a numeric node id or a `name` attribute value
                let v = match rest.parse::<u32>() {
                    Ok(i) => NodeId(i),
                    Err(_) => g
                        .ids()
                        .find(|&v| g.attr_of(v, "name").and_then(|a| a.as_str()) == Some(rest))
                        .ok_or_else(|| format!("no node named {rest:?}"))?,
                };
                let rg = ResultGraph::build(g, q, &outcome.matches);
                Ok(report::drill_down(g, q, &rg, v))
            })
            .map_err(Self::err)?
    }

    fn cmd_dot(&mut self, path: &str) -> ShellResult {
        if path.is_empty() {
            return Err("usage: dot <path>".into());
        }
        let h = self.current()?;
        let (q, outcome) = self
            .last_query
            .as_ref()
            .ok_or("no previous query; run `query` first")?;
        let (dot, nodes, edges) = self
            .engine
            .read_graph(&h, |g| {
                let rg = ResultGraph::build(g, q, &outcome.matches);
                let dot = report::to_dot(g, q, &outcome.matches, &rg);
                (dot, rg.node_count(), rg.edges().len())
            })
            .map_err(Self::err)?;
        std::fs::write(path, &dot).map_err(|e| e.to_string())?;
        Ok(format!("wrote {nodes} nodes / {edges} edges to {path}"))
    }

    fn cmd_reach(&mut self, rest: &str) -> ShellResult {
        let h = self.current()?;
        let mut parts = rest.split_whitespace();
        let a: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("usage: reach <a> <b>")?;
        let b: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("usage: reach <a> <b>")?;
        self.engine
            .read_graph(&h, |g| {
                let n = g.node_count() as u32;
                if a >= n || b >= n {
                    return Err(format!("node ids must be < {n}"));
                }
                let idx = expfinder_compress::ReachIndex::build(g);
                Ok(format!(
                    "reachable({a}, {b}) = {} ({} classes)",
                    idx.reachable(NodeId(a), NodeId(b)),
                    idx.class_count()
                ))
            })
            .map_err(Self::err)?
    }

    fn cmd_update(&mut self, rest: &str) -> ShellResult {
        let h = self.current()?;
        let mut parts = rest.split_whitespace();
        let op = parts
            .next()
            .ok_or("usage: update insert|delete|random ...")?;
        let updates: Vec<EdgeUpdate> = match op {
            "insert" | "delete" => {
                let a: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad source id")?;
                let b: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad target id")?;
                let up = if op == "insert" {
                    EdgeUpdate::Insert(NodeId(a), NodeId(b))
                } else {
                    EdgeUpdate::Delete(NodeId(a), NodeId(b))
                };
                vec![up]
            }
            "random" => {
                let count: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("usage: update random <count> [insert_ratio]")?;
                let ratio: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);
                let mut rng = StdRng::seed_from_u64(self.seed);
                self.seed = self.seed.wrapping_add(1);
                self.engine
                    .read_graph(&h, |g| random_updates(&mut rng, g, count, ratio))
                    .map_err(Self::err)?
            }
            other => return Err(format!("unknown update op {other:?}")),
        };
        let applied = self.engine.apply_updates(&h, &updates).map_err(Self::err)?;
        Ok(format!("applied {applied}/{} updates", updates.len()))
    }

    fn cmd_register(&mut self, rest: &str) -> ShellResult {
        let (qname, dsl) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: register <qname> <pattern-dsl>")?;
        let h = self.current()?;
        let q = Self::parse_pattern(dsl)?;
        self.engine
            .register_query(&h, qname, q)
            .map_err(Self::err)?;
        Ok(format!("registered {qname} for incremental maintenance"))
    }

    fn cmd_compress(&mut self, rest: &str) -> ShellResult {
        let h = self.current()?;
        if !rest.is_empty() {
            let method = match rest {
                "bisim" => CompressionMethod::Bisimulation,
                "simeq" => CompressionMethod::SimulationEquivalence,
                other => return Err(format!("unknown method {other:?} (bisim|simeq)")),
            };
            if self.engine.config().compression_method != method {
                return self.compress_with(&h, method);
            }
        }
        let stats = self.engine.compress(&h).map_err(Self::err)?;
        Ok(format!(
            "compressed: {} → {} nodes, {} → {} edges ({:.1}% size reduction)",
            stats.original_nodes,
            stats.compressed_nodes,
            stats.original_edges,
            stats.compressed_edges,
            stats.size_reduction() * 100.0
        ))
    }

    fn compress_with(&mut self, h: &GraphHandle, method: CompressionMethod) -> ShellResult {
        use expfinder_compress::maintain::MaintainedCompression;
        let stats = self
            .engine
            .read_graph(h, |g| {
                MaintainedCompression::new(g, method).map(|mc| mc.compressed().stats())
            })
            .map_err(Self::err)?
            .map_err(|e| e.to_string())?;
        // install via the public path: engine compress uses the configured
        // method, so report here and keep the engine's default one
        let _ = self.engine.compress(h).map_err(Self::err)?;
        Ok(format!(
            "compressed ({method:?}): {} → {} nodes ({:.1}% size reduction)",
            stats.original_nodes,
            stats.compressed_nodes,
            stats.size_reduction() * 100.0
        ))
    }
}

fn route_name(r: EvalRoute) -> &'static str {
    match r {
        EvalRoute::Cache => "cache",
        EvalRoute::Registered => "registered incremental state",
        EvalRoute::Compressed => "compressed graph",
        EvalRoute::DirectSimulation => "direct simulation (quadratic)",
        EvalRoute::DirectBounded => "direct bounded simulation (cubic)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;

    const FIG1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
        node sd where label = \"SD\" and experience >= 2; \
        node ba where label = \"BA\" and experience >= 3; \
        node st where label = \"ST\" and experience >= 2; \
        edge sa -> sd within 2; edge sa -> ba within 3; \
        edge sd -> st within 2; edge ba -> st within 1;";

    fn fig1_shell() -> Shell {
        let mut sh = Shell::default();
        sh.engine()
            .add_graph("fig1", collaboration_fig1().graph)
            .unwrap();
        sh.exec("use fig1").unwrap();
        sh
    }

    #[test]
    fn help_and_unknown() {
        let mut sh = Shell::default();
        assert!(sh.exec("help").unwrap().contains("experts"));
        assert!(sh.exec("bogus").is_err());
        assert_eq!(sh.exec("").unwrap(), "");
        assert_eq!(sh.exec("# comment").unwrap(), "");
    }

    #[test]
    fn full_demo_session() {
        let mut sh = fig1_shell();
        let out = sh.exec(&format!("experts 1 {FIG1_DSL}")).unwrap();
        assert!(out.contains("7 pairs"), "{out}");
        assert!(out.contains("Bob"), "{out}");
        assert!(out.contains("1.8000"), "{out}");

        let out = sh.exec("rollup").unwrap();
        assert!(out.contains("sa*"), "{out}");

        let out = sh.exec("drill Bob").unwrap();
        assert!(out.contains("Bob [SA]"), "{out}");

        // Example 3 through the shell: insert e1 = Fred → Dan (ids 8 → 3)
        let out = sh.exec("update insert 8 3").unwrap();
        assert!(out.contains("applied 1/1"), "{out}");
        let out = sh.exec(&format!("query {FIG1_DSL}")).unwrap();
        assert!(out.contains("8 pairs"), "{out}");
        assert!(out.contains("Fred"), "{out}");
    }

    #[test]
    fn gen_use_info_compress() {
        let mut sh = Shell::default();
        let out = sh.exec("gen t twitter n=500 seed=7").unwrap();
        assert!(out.contains("generated t"), "{out}");
        let out = sh.exec("info").unwrap();
        assert!(out.contains("not compressed"), "{out}");
        let out = sh.exec("compress").unwrap();
        assert!(out.contains("size reduction"), "{out}");
        let out = sh.exec("info").unwrap();
        assert!(out.contains("compressed:"), "{out}");
        let out = sh.exec("decompress").unwrap();
        assert!(out.contains("dropped"), "{out}");
    }

    #[test]
    fn register_and_maintain() {
        let mut sh = fig1_shell();
        sh.exec(&format!("register team {FIG1_DSL}")).unwrap();
        assert_eq!(sh.exec("registered").unwrap(), "team");
        let out = sh.exec("result team").unwrap();
        assert!(out.contains("7 pairs"), "{out}");
        sh.exec("update insert 8 3").unwrap();
        let out = sh.exec("result team").unwrap();
        assert!(out.contains("8 pairs"), "{out}");
    }

    #[test]
    fn random_updates_and_cache() {
        let mut sh = Shell::default();
        sh.exec("gen g er n=100 m=400 seed=3").unwrap();
        let out = sh.exec("update random 10 0.5").unwrap();
        assert!(out.contains("applied"), "{out}");
        // er graphs use the expert-field alphabet
        let first = sh.exec("query node a where label = \"SA\";").unwrap();
        assert!(first.contains("direct simulation"), "{first}");
        let second = sh.exec("query node a where label = \"SA\";").unwrap();
        assert!(second.contains("via cache"), "{second}");
        let out = sh.exec("cache").unwrap();
        assert!(out.contains("1 hits"), "{out}");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("expfinder_shell_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.efg");
        let mut sh = fig1_shell();
        sh.exec(&format!("save fig1 {}", path.display())).unwrap();
        let out = sh.exec(&format!("load fig1b {}", path.display())).unwrap();
        assert!(out.contains("9 nodes"), "{out}");
        let out = sh.exec(&format!("query {FIG1_DSL}")).unwrap();
        assert!(out.contains("7 pairs"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dot_and_reach_commands() {
        let dir = std::env::temp_dir().join(format!("expfinder_dot_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("result.dot");
        let mut sh = fig1_shell();
        sh.exec(&format!("query {FIG1_DSL}")).unwrap();
        let out = sh.exec(&format!("dot {}", path.display())).unwrap();
        assert!(out.contains("7 nodes"), "{out}");
        let dot = std::fs::read_to_string(&path).unwrap();
        assert!(dot.contains("digraph result"));
        // Bob (6) reaches Eva (5); Eva does not reach Bob
        let out = sh.exec("reach 6 5").unwrap();
        assert!(out.contains("= true"), "{out}");
        let out = sh.exec("reach 5 6").unwrap();
        assert!(out.contains("= false"), "{out}");
        assert!(sh.exec("reach 6 99").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_command_runs_file() {
        let dir = std::env::temp_dir().join(format!("expfinder_batch_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("queries.txt");
        std::fs::write(
            &path,
            format!("# demo batch\n{FIG1_DSL}\nnode sa* where label = \"SA\";\n\nnode oops\n"),
        )
        .unwrap();
        let mut sh = fig1_shell();
        let out = sh.exec(&format!("batch {}", path.display())).unwrap();
        assert!(out.contains("line 2: 7 pairs"), "{out}");
        assert!(out.contains("line 3: 2 pairs"), "{out}");
        // per-slot failures carry the shared error→status mapping and the
        // full ExpFinderError display string, not a generic line
        assert!(
            out.contains("line 5: error 400: pattern parse error"),
            "{out}"
        );
        assert!(out.contains("3 queries (1 failed)"), "{out}");
        assert!(sh.exec("batch").is_err());
        assert!(sh.exec("batch /nonexistent/queries.txt").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dual_command() {
        let mut sh = fig1_shell();
        let out = sh.exec(&format!("dual {FIG1_DSL}")).unwrap();
        assert!(out.contains("bounded simulation: 7 pairs"), "{out}");
        assert!(out.contains("dual simulation: 7 pairs"), "{out}");
    }

    #[test]
    fn catalog_roundtrip_through_shell() {
        let dir = std::env::temp_dir().join(format!("expfinder_shcat_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sh = fig1_shell();
        let out = sh.exec(&format!("savecat {}", dir.display())).unwrap();
        assert!(out.contains("catalog saved"), "{out}");
        let out = sh.exec(&format!("loadcat {}", dir.display())).unwrap();
        assert!(out.contains("catalog loaded"), "{out}");
        // current selection was reset with the new engine
        assert!(sh.exec("info").is_err());
        sh.exec("use fig1").unwrap();
        let out = sh.exec(&format!("query {FIG1_DSL}")).unwrap();
        assert!(out.contains("7 pairs"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_friendly() {
        let mut sh = Shell::default();
        assert!(sh
            .exec("query node a;")
            .unwrap_err()
            .contains("no graph selected"));
        assert!(sh.exec("use ghost").is_err());
        assert!(sh.exec("gen x unknown").is_err());
        assert!(sh.exec("experts nope node a;").is_err());
        sh.exec("gen g er n=10 m=10").unwrap();
        assert!(sh
            .exec("drill 5")
            .unwrap_err()
            .contains("no previous query"));
        assert!(sh.exec("query node a where label =;").is_err());
    }
}
