//! Textual result presentation — the substitute for the GUI's result
//! browser (paper Figs. 3 and 5).
//!
//! Two granularities, mirroring the paper's "Drill Down and Roll Up"
//! analysis: [`roll_up`] summarises the result graph (match counts per
//! pattern node, top experts), [`drill_down`] shows one match's detail —
//! its attributes and its weighted result-graph edges.

use expfinder_core::{MatchRelation, RankedMatch, ResultGraph};
use expfinder_graph::{DiGraph, GraphView, NodeId};
use expfinder_pattern::Pattern;
use std::fmt::Write;

/// A short human name for a node: the `name` attribute when present,
/// otherwise the node id.
pub fn display_name(g: &DiGraph, v: NodeId) -> String {
    match g.attr_of(v, "name").and_then(|a| a.as_str()) {
        Some(n) => n.to_owned(),
        None => v.to_string(),
    }
}

/// The global view: per-pattern-node match counts and the result graph's
/// size — what the paper calls "roll up ... to view its global structure".
pub fn roll_up(g: &DiGraph, q: &Pattern, m: &MatchRelation, rg: &ResultGraph) -> String {
    let mut out = String::new();
    if m.is_empty() {
        out.push_str("no matches: some pattern node has no valid match\n");
        return out;
    }
    let _ = writeln!(
        out,
        "result graph: {} nodes, {} edges",
        rg.node_count(),
        rg.edges().len()
    );
    for u in q.ids() {
        let members = m.matches_vec(u);
        let names: Vec<String> = members
            .iter()
            .take(8)
            .map(|&v| display_name(g, v))
            .collect();
        let suffix = if members.len() > 8 {
            format!(" … (+{})", members.len() - 8)
        } else {
            String::new()
        };
        let star = if q.output() == Some(u) { "*" } else { " " };
        let _ = writeln!(
            out,
            "  {}{} ({} matches): {}{}",
            q.node(u).name,
            star,
            members.len(),
            names.join(", "),
            suffix
        );
    }
    out
}

/// One match in detail: content plus incident result-graph edges with
/// their shortest-path weights — the paper's "drill down to see detailed
/// information in a result graph".
pub fn drill_down(g: &DiGraph, q: &Pattern, rg: &ResultGraph, v: NodeId) -> String {
    let mut out = String::new();
    if rg.local(v).is_none() {
        let _ = writeln!(out, "{} is not part of the result", display_name(g, v));
        return out;
    }
    let data = g.vertex(v);
    let _ = writeln!(out, "{} [{}] ({})", display_name(g, v), g.label_str(v), v);
    for (k, val) in data.attrs() {
        let _ = writeln!(out, "  {} = {}", g.interner().resolve(*k), val);
    }
    let mut outgoing: Vec<String> = Vec::new();
    let mut incoming: Vec<String> = Vec::new();
    for e in rg.edges() {
        let pe = &q.edges()[e.pattern_edge as usize];
        let label = format!("{}→{}", q.node(pe.from).name, q.node(pe.to).name);
        if e.from == v {
            outgoing.push(format!(
                "  --{}({})--> {}",
                label,
                e.weight,
                display_name(g, e.to)
            ));
        }
        if e.to == v {
            incoming.push(format!(
                "  <--{}({})-- {}",
                label,
                e.weight,
                display_name(g, e.from)
            ));
        }
    }
    if !outgoing.is_empty() {
        let _ = writeln!(out, "collaborates with:");
        for l in outgoing {
            let _ = writeln!(out, "{l}");
        }
    }
    if !incoming.is_empty() {
        let _ = writeln!(out, "collaborated under:");
        for l in incoming {
            let _ = writeln!(out, "{l}");
        }
    }
    out
}

/// Render the top-K expert list.
pub fn expert_table(g: &DiGraph, experts: &[RankedMatch]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rank  score      expert");
    for (i, e) in experts.iter().enumerate() {
        let score = if e.rank.is_finite() {
            format!("{:<9.4}", e.rank)
        } else {
            "isolated ".to_owned()
        };
        let _ = writeln!(out, "{:>4}  {}  {}", i + 1, score, display_name(g, e.node));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_core::{bounded_simulation, rank_matches};
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_pattern::fixtures::fig1_pattern;

    #[test]
    fn roll_up_mentions_all_pattern_nodes() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let m = bounded_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let text = roll_up(&f.graph, &q, &m, &rg);
        for name in ["sa*", "sd ", "ba ", "st "] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
        assert!(text.contains("Bob"));
        assert!(text.contains("2 matches"), "{text}");
    }

    #[test]
    fn drill_down_shows_weighted_edges() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let m = bounded_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let text = drill_down(&f.graph, &q, &rg, f.bob);
        assert!(text.contains("Bob [SA]"), "{text}");
        assert!(text.contains("experience = 7"), "{text}");
        assert!(text.contains("--sa→sd(1)--> Dan"), "{text}");
        assert!(text.contains("--sa→ba(3)--> Jean"), "{text}");
    }

    #[test]
    fn drill_down_non_member() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let m = bounded_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let text = drill_down(&f.graph, &q, &rg, f.bill);
        assert!(text.contains("not part of the result"), "{text}");
    }

    #[test]
    fn expert_table_format() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let m = bounded_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let ranked = rank_matches(&rg, &q, &m).unwrap();
        let text = expert_table(&f.graph, &ranked);
        let bob_line = text.lines().find(|l| l.contains("Bob")).unwrap();
        assert!(
            bob_line.trim_start().starts_with('1'),
            "Bob is top-1: {text}"
        );
        assert!(bob_line.contains("1.8000"), "{text}");
    }

    #[test]
    fn roll_up_empty_result() {
        let f = collaboration_fig1();
        let q = fig1_pattern().as_simulation();
        let m = expfinder_core::graph_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let text = roll_up(&f.graph, &q, &m, &rg);
        assert!(text.contains("no matches"), "{text}");
    }
}

/// Export a result graph as Graphviz DOT — the file-based substitute for
/// the GUI's visual result browser. Nodes are grouped (colored) by the
/// pattern node they match; the designated output node's matches are
/// double-circled; edges carry the shortest-path length `d` as their
/// label, exactly like the paper's result-graph figures.
pub fn to_dot(g: &DiGraph, q: &Pattern, m: &MatchRelation, rg: &ResultGraph) -> String {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "palegreen",
        "lightsalmon",
        "khaki",
        "plum",
        "lightcyan",
        "mistyrose",
        "lavender",
    ];
    let mut out = String::from("digraph result {\n  rankdir=LR;\n  node [style=filled];\n");
    for u in q.ids() {
        let color = PALETTE[u.index() % PALETTE.len()];
        let shape = if q.output() == Some(u) {
            "doublecircle"
        } else {
            "ellipse"
        };
        for v in m.matches(u).iter() {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n({})\" fillcolor={} shape={}];",
                v.0,
                display_name(g, v).replace('"', "'"),
                q.node(u).name,
                color,
                shape
            );
        }
    }
    for e in rg.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.from.0, e.to.0, e.weight
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use expfinder_core::bounded_simulation;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_pattern::fixtures::fig1_pattern;

    #[test]
    fn dot_export_structure() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let m = bounded_simulation(&f.graph, &q).unwrap();
        let rg = ResultGraph::build(&f.graph, &q, &m);
        let dot = to_dot(&f.graph, &q, &m, &rg);
        assert!(dot.starts_with("digraph result {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("Bob"), "{dot}");
        assert!(dot.contains("doublecircle"), "output node marked");
        // the Bob→Jean match edge carries its distance label 3
        let bob = format!("n{}", f.bob.0);
        let jean = format!("n{}", f.jean.0);
        assert!(
            dot.contains(&format!("{bob} -> {jean} [label=\"3\"]")),
            "{dot}"
        );
        // every result node declared exactly once (anchor at line start
        // so edge lines like "n0 -> n2 [label=..." do not collide)
        for &v in rg.nodes() {
            let decl = format!("\n  n{} [label=", v.0);
            assert_eq!(dot.matches(&decl).count(), 1, "{decl}");
        }
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g = DiGraph::new();
        g.add_node(
            "SA",
            [("name", expfinder_graph::AttrValue::Str("O\"Brien".into()))],
        );
        let q = expfinder_pattern::PatternBuilder::new()
            .node("a", expfinder_pattern::Predicate::label("SA"))
            .build()
            .unwrap();
        let m = bounded_simulation(&g, &q).unwrap();
        let rg = ResultGraph::build(&g, &q, &m);
        let dot = to_dot(&g, &q, &m, &rg);
        assert!(dot.contains("O'Brien"), "quotes sanitized: {dot}");
    }
}
