//! Query result cache.
//!
//! Paper §II: "the query engine directly returns M(Q,G) if it is already
//! cached". Keys combine the graph's catalog id, its version counter and
//! the pattern fingerprint, so updates invalidate implicitly — stale
//! entries simply stop being requested and age out of the LRU. Keying by
//! id (not name) means a graph removed and re-added under the same name
//! can never be served stale results.

use expfinder_core::MatchRelation;
use expfinder_pattern::Pattern;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: graph catalog id, graph version, pattern fingerprint.
pub type CacheKey = (u64, u64, String);

/// Hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A bounded LRU cache of match relations.
pub struct QueryCache {
    capacity: usize,
    map: HashMap<CacheKey, Arc<MatchRelation>>,
    /// Keys in recency order (front = oldest).
    order: Vec<CacheKey>,
    stats: CacheStats,
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Build the canonical key for a query.
    pub fn key(graph_id: u64, version: u64, pattern: &Pattern) -> CacheKey {
        (graph_id, version, pattern.fingerprint())
    }

    /// Look up; refreshes recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<MatchRelation>> {
        match self.map.get(key) {
            Some(v) => {
                self.stats.hits += 1;
                let v = Arc::clone(v);
                self.touch(key);
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used
    /// entry if over capacity.
    pub fn put(&mut self, key: CacheKey, value: Arc<MatchRelation>) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            self.touch(&key);
        }
        while self.map.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::BitSet;

    fn rel(n: usize) -> Arc<MatchRelation> {
        Arc::new(MatchRelation::from_sets(vec![BitSet::full(n)], n))
    }

    fn k(id: u64, v: u64) -> CacheKey {
        (id, v, "fp".to_owned())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&k(1, 1)).is_none());
        c.put(k(1, 1), rel(3));
        assert!(c.get(&k(1, 1)).is_some());
        assert!(c.get(&k(1, 2)).is_none(), "different version misses");
        assert!(c.get(&k(2, 1)).is_none(), "different graph id misses");
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), rel(1));
        c.put(k(2, 1), rel(1));
        // touch graph 1 so graph 2 becomes the oldest
        assert!(c.get(&k(1, 1)).is_some());
        c.put(k(3, 1), rel(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(&k(2, 1)).is_none(), "2 evicted");
        assert!(c.get(&k(1, 1)).is_some(), "1 survived");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn put_refreshes_existing() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), rel(1));
        c.put(k(2, 1), rel(1));
        c.put(k(1, 1), rel(2)); // refresh 1
        c.put(k(3, 1), rel(1)); // evicts 2, not 1
        assert!(c.get(&k(1, 1)).is_some());
        assert!(c.get(&k(2, 1)).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), rel(1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = QueryCache::new(0);
        c.put(k(1, 1), rel(1));
        assert_eq!(c.len(), 1);
    }
}
