//! Query result cache.
//!
//! Paper §II: "the query engine directly returns M(Q,G) if it is already
//! cached". Keys combine the graph name, its version counter and the
//! pattern fingerprint, so updates invalidate implicitly — stale entries
//! simply stop being requested and age out of the LRU.

use expfinder_core::MatchRelation;
use expfinder_pattern::Pattern;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: graph name, graph version, pattern fingerprint.
pub type CacheKey = (String, u64, String);

/// Hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A bounded LRU cache of match relations.
pub struct QueryCache {
    capacity: usize,
    map: HashMap<CacheKey, Arc<MatchRelation>>,
    /// Keys in recency order (front = oldest).
    order: Vec<CacheKey>,
    stats: CacheStats,
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Build the canonical key for a query.
    pub fn key(graph: &str, version: u64, pattern: &Pattern) -> CacheKey {
        (graph.to_owned(), version, pattern.fingerprint())
    }

    /// Look up; refreshes recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<MatchRelation>> {
        match self.map.get(key) {
            Some(v) => {
                self.stats.hits += 1;
                let v = Arc::clone(v);
                self.touch(key);
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used
    /// entry if over capacity.
    pub fn put(&mut self, key: CacheKey, value: Arc<MatchRelation>) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            self.touch(&key);
        }
        while self.map.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::BitSet;

    fn rel(n: usize) -> Arc<MatchRelation> {
        Arc::new(MatchRelation::from_sets(vec![BitSet::full(n)], n))
    }

    fn k(name: &str, v: u64) -> CacheKey {
        (name.to_owned(), v, "fp".to_owned())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&k("g", 1)).is_none());
        c.put(k("g", 1), rel(3));
        assert!(c.get(&k("g", 1)).is_some());
        assert!(c.get(&k("g", 2)).is_none(), "different version misses");
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = QueryCache::new(2);
        c.put(k("a", 1), rel(1));
        c.put(k("b", 1), rel(1));
        // touch a so b becomes the oldest
        assert!(c.get(&k("a", 1)).is_some());
        c.put(k("c", 1), rel(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(&k("b", 1)).is_none(), "b evicted");
        assert!(c.get(&k("a", 1)).is_some(), "a survived");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn put_refreshes_existing() {
        let mut c = QueryCache::new(2);
        c.put(k("a", 1), rel(1));
        c.put(k("b", 1), rel(1));
        c.put(k("a", 1), rel(2)); // refresh a
        c.put(k("c", 1), rel(1)); // evicts b, not a
        assert!(c.get(&k("a", 1)).is_some());
        assert!(c.get(&k("b", 1)).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = QueryCache::new(2);
        c.put(k("a", 1), rel(1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = QueryCache::new(0);
        c.put(k("a", 1), rel(1));
        assert_eq!(c.len(), 1);
    }
}
