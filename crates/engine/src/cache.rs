//! Query result cache.
//!
//! Paper §II: "the query engine directly returns M(Q,G) if it is already
//! cached". Keys combine the graph's catalog id, its version counter and
//! a `u64` digest of the pattern fingerprint
//! ([`Pattern::fingerprint_hash`]), so updates invalidate implicitly —
//! stale entries simply stop being requested and age out of the LRU.
//! Keying by id (not name) means a graph removed and re-added under the
//! same name can never be served stale results.
//!
//! Recency is tracked with a **generation counter** instead of an ordered
//! key list: every touch stamps the entry with a fresh generation and
//! appends `(generation, key)` to a queue. Eviction pops the queue front,
//! skipping stale entries whose recorded generation no longer matches the
//! map — amortized O(1) `get`/`put`/evict, versus the former O(n) vector
//! scans per touch. The queue is compacted once it outgrows the live
//! entries by a constant factor, keeping memory proportional to capacity.

use expfinder_core::MatchRelation;
use expfinder_pattern::Pattern;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache key: graph catalog id, graph version, pattern fingerprint hash.
pub type CacheKey = (u64, u64, u64);

/// Hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A cached relation stamped with its most recent touch generation and
/// the full fingerprint its key hash was derived from. The hash is only
/// an index: FNV-1a collisions are constructible by anyone who can
/// submit patterns, so every hit re-verifies the exact fingerprint —
/// a collision is a miss (and an overwriting `put` wins), never a
/// cross-pattern answer.
struct Slot {
    value: Arc<MatchRelation>,
    gen: u64,
    fingerprint: String,
}

/// A bounded LRU cache of match relations.
pub struct QueryCache {
    capacity: usize,
    map: HashMap<CacheKey, Slot>,
    /// Touch log: `(generation, key)` in ascending generation order. An
    /// entry is live iff the map still records that generation for the
    /// key; everything else is a stale leftover of an earlier touch.
    recency: VecDeque<(u64, CacheKey)>,
    next_gen: u64,
    stats: CacheStats,
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            recency: VecDeque::new(),
            next_gen: 0,
            stats: CacheStats::default(),
        }
    }

    /// Build the canonical key for a query. When the fingerprint string
    /// is already at hand, prefer [`QueryCache::key_for`].
    pub fn key(graph_id: u64, version: u64, pattern: &Pattern) -> CacheKey {
        Self::key_for(graph_id, version, &pattern.fingerprint())
    }

    /// Build the canonical key from an already-computed fingerprint.
    pub fn key_for(graph_id: u64, version: u64, fingerprint: &str) -> CacheKey {
        (
            graph_id,
            version,
            expfinder_pattern::hash_fingerprint(fingerprint),
        )
    }

    /// Look up; refreshes recency on a (fingerprint-verified) hit. A key
    /// whose slot holds a different fingerprint — a hash collision — is
    /// a miss.
    pub fn get(&mut self, key: &CacheKey, fingerprint: &str) -> Option<Arc<MatchRelation>> {
        let gen = self.next_gen;
        match self.map.get_mut(key) {
            Some(slot) if slot.fingerprint == fingerprint => {
                self.stats.hits += 1;
                self.next_gen += 1;
                slot.gen = gen;
                let v = Arc::clone(&slot.value);
                self.recency.push_back((gen, *key));
                self.maybe_compact();
                Some(v)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used
    /// entry if over capacity.
    pub fn put(&mut self, key: CacheKey, fingerprint: &str, value: Arc<MatchRelation>) {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.map.insert(
            key,
            Slot {
                value,
                gen,
                fingerprint: fingerprint.to_owned(),
            },
        );
        self.recency.push_back((gen, key));
        while self.map.len() > self.capacity {
            let (g, k) = self
                .recency
                .pop_front()
                .expect("over-capacity map has touches");
            // stale touch: the key was touched again later (or evicted)
            if self.map.get(&k).is_some_and(|s| s.gen == g) {
                self.map.remove(&k);
                self.stats.evictions += 1;
            }
        }
        self.maybe_compact();
    }

    /// Drop stale touch-log entries once they outnumber live ones 4:1, so
    /// the log stays O(capacity) without per-operation scans.
    fn maybe_compact(&mut self) {
        if self.recency.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.recency
                .retain(|(g, k)| map.get(k).is_some_and(|s| s.gen == *g));
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::BitSet;

    fn rel(n: usize) -> Arc<MatchRelation> {
        Arc::new(MatchRelation::from_sets(vec![BitSet::full(n)], n))
    }

    fn k(id: u64, v: u64) -> CacheKey {
        (id, v, 0xfeed)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&k(1, 1), "fp").is_none());
        c.put(k(1, 1), "fp", rel(3));
        assert!(c.get(&k(1, 1), "fp").is_some());
        assert!(c.get(&k(1, 2), "fp").is_none(), "different version misses");
        assert!(c.get(&k(2, 1), "fp").is_none(), "different graph id misses");
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), "fp", rel(1));
        c.put(k(2, 1), "fp", rel(1));
        // touch graph 1 so graph 2 becomes the oldest
        assert!(c.get(&k(1, 1), "fp").is_some());
        c.put(k(3, 1), "fp", rel(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(&k(2, 1), "fp").is_none(), "2 evicted");
        assert!(c.get(&k(1, 1), "fp").is_some(), "1 survived");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_always_drops_the_oldest() {
        // churn well past capacity with interleaved touches: the survivor
        // set must always be the most recently touched `capacity` keys
        let mut c = QueryCache::new(3);
        for i in 0..50u64 {
            c.put(k(i, 1), "fp", rel(1));
            // keep key 0 hot for the first half
            if i < 25 {
                assert!(c.get(&k(0, 1), "fp").is_some(), "key 0 touched at {i}");
            }
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(&k(49, 1), "fp").is_some());
        assert!(c.get(&k(48, 1), "fp").is_some());
        assert!(c.get(&k(47, 1), "fp").is_some());
        assert!(c.get(&k(0, 1), "fp").is_none(), "went cold, evicted");
        // recency log stays bounded relative to capacity
        assert!(c.recency.len() <= c.map.len() * 4 + 16);
    }

    #[test]
    fn put_refreshes_existing() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), "fp", rel(1));
        c.put(k(2, 1), "fp", rel(1));
        c.put(k(1, 1), "fp", rel(2)); // refresh 1
        c.put(k(3, 1), "fp", rel(1)); // evicts 2, not 1
        assert!(c.get(&k(1, 1), "fp").is_some());
        assert!(c.get(&k(2, 1), "fp").is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = QueryCache::new(2);
        c.put(k(1, 1), "fp", rel(1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = QueryCache::new(0);
        c.put(k(1, 1), "fp", rel(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_wrong_answer() {
        // same key hash, different fingerprints (the adversarial FNV
        // collision shape): the verified get never serves the other
        // pattern's relation
        let mut c = QueryCache::new(4);
        c.put(k(1, 1), "pattern-a", rel(1));
        assert!(
            c.get(&k(1, 1), "pattern-b").is_none(),
            "collision must miss"
        );
        assert_eq!(c.stats().misses, 1);
        // the colliding pattern may overwrite the slot; verification
        // then protects the original
        c.put(k(1, 1), "pattern-b", rel(2));
        assert!(c.get(&k(1, 1), "pattern-b").is_some());
        assert!(c.get(&k(1, 1), "pattern-a").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_come_from_fingerprint_hashes() {
        use expfinder_pattern::fixtures::fig1_pattern;
        let q = fig1_pattern();
        let a = QueryCache::key(1, 7, &q);
        let b = QueryCache::key(1, 7, &q);
        assert_eq!(a, b);
        assert_eq!(a.2, q.fingerprint_hash());
        let sim = q.as_simulation();
        assert_ne!(QueryCache::key(1, 7, &sim), a, "bounds change the key");
    }
}
