//! File-based persistence for the engine catalog.
//!
//! Paper §II: "all the graphs and query results are stored and managed as
//! files". A catalog directory contains a JSON manifest plus one `.efg`
//! text file per graph; query results serialize to JSON documents. JSON
//! goes through the hand-rolled `expfinder_graph::json` module (the
//! offline build has no serde).

use crate::{ExpFinder, ExpFinderError};
use expfinder_core::MatchRelation;
use expfinder_graph::json::{self, Value};
use expfinder_graph::{io as gio, BitSet, NodeId};
use std::fs;
use std::path::Path;

const FORMAT: &str = "expfinder-catalog-v1";

fn storage_err(e: impl std::fmt::Display) -> ExpFinderError {
    ExpFinderError::Storage(e.to_string())
}

/// Persist every graph of the engine into `dir` (created if missing).
///
/// Incremental: the manifest records each graph's version at save time,
/// and a later save skips rewriting any `.efg` whose version is
/// unchanged and whose file still exists — so periodic snapshotting
/// (e.g. under the shard runtime) does not rewrite cold graphs.
/// Versions only compare within one process lifetime (a reloaded graph
/// restarts its version counter), which errs on the safe side: a
/// mismatch just rewrites.
pub fn save_catalog(engine: &ExpFinder, dir: impl AsRef<Path>) -> Result<(), ExpFinderError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let prior = saved_versions(dir);
    let names = engine.graph_names();
    let mut versions: Vec<(String, Value)> = Vec::with_capacity(names.len());
    for name in &names {
        let handle = engine.handle(name)?;
        let version = engine.read_graph(&handle, |g| g.version())?;
        let unchanged =
            prior.get(name.as_str()) == Some(&version) && dir.join(format!("{name}.efg")).is_file();
        if !unchanged {
            engine
                .read_graph(&handle, |g| {
                    gio::save_text(g, dir.join(format!("{name}.efg")))
                })?
                .map_err(storage_err)?;
        }
        versions.push((name.clone(), Value::Int(version as i64)));
    }
    let manifest = Value::Object(
        [
            ("format".to_owned(), Value::Str(FORMAT.to_owned())),
            (
                "graphs".to_owned(),
                Value::Array(names.into_iter().map(Value::Str).collect()),
            ),
            (
                "versions".to_owned(),
                Value::Object(versions.into_iter().collect()),
            ),
        ]
        .into_iter()
        .collect(),
    );
    fs::write(dir.join("manifest.json"), manifest.to_string_pretty())?;
    Ok(())
}

/// The per-graph versions recorded by the last [`save_catalog`] into
/// `dir`, if a manifest with a `versions` map is present (older
/// manifests simply yield an empty map, so every graph rewrites once).
fn saved_versions(dir: &Path) -> std::collections::HashMap<String, u64> {
    let mut out = std::collections::HashMap::new();
    let Ok(text) = fs::read_to_string(dir.join("manifest.json")) else {
        return out;
    };
    let Ok(manifest) = json::parse(&text) else {
        return out;
    };
    if manifest.field("format").and_then(|f| f.as_str()).ok() != Some(FORMAT) {
        return out;
    }
    if let Ok(versions) = manifest.field("versions").and_then(|v| v.as_object()) {
        for (name, v) in versions {
            if let Ok(version) = v.as_i64() {
                out.insert(name.clone(), version as u64);
            }
        }
    }
    out
}

/// Load a catalog directory into a fresh engine (default configuration).
pub fn load_catalog(dir: impl AsRef<Path>) -> Result<ExpFinder, ExpFinderError> {
    let text = fs::read_to_string(dir.as_ref().join("manifest.json"))?;
    let manifest = json::parse(&text).map_err(storage_err)?;
    let format = manifest
        .field("format")
        .and_then(|f| f.as_str())
        .map_err(storage_err)?;
    if format != FORMAT {
        return Err(ExpFinderError::Storage(format!(
            "unknown catalog format {format:?}"
        )));
    }
    let engine = ExpFinder::default();
    for name in manifest
        .field("graphs")
        .and_then(|g| g.as_array())
        .map_err(storage_err)?
    {
        let name = name.as_str().map_err(storage_err)?;
        // a crafted manifest must not be able to read outside `dir`
        crate::validate_graph_name(name)?;
        let g = gio::load_text(dir.as_ref().join(format!("{name}.efg"))).map_err(storage_err)?;
        engine.add_graph(name, g)?;
    }
    Ok(engine)
}

/// Serializable form of a match relation.
pub struct ResultDoc {
    /// Number of data-graph nodes the relation ranges over.
    pub data_nodes: usize,
    /// Per pattern node (in id order), the matched data node ids.
    pub matches: Vec<Vec<u32>>,
}

impl ResultDoc {
    pub fn from_relation(m: &MatchRelation) -> ResultDoc {
        ResultDoc {
            data_nodes: m.data_nodes(),
            matches: (0..m.pattern_nodes())
                .map(|i| {
                    m.matches(expfinder_pattern::PNodeId(i as u32))
                        .iter()
                        .map(|v| v.0)
                        .collect()
                })
                .collect(),
        }
    }

    pub fn into_relation(self) -> MatchRelation {
        let sets: Vec<BitSet> = self
            .matches
            .iter()
            .map(|ids| {
                let mut s = BitSet::new(self.data_nodes);
                for &i in ids {
                    s.insert(NodeId(i));
                }
                s
            })
            .collect();
        MatchRelation::from_sets(sets, self.data_nodes)
    }

    fn to_json_value(&self) -> Value {
        Value::Object(
            [
                ("data_nodes".to_owned(), Value::Int(self.data_nodes as i64)),
                (
                    "matches".to_owned(),
                    Value::Array(
                        self.matches
                            .iter()
                            .map(|ids| {
                                Value::Array(ids.iter().map(|&i| Value::Int(i as i64)).collect())
                            })
                            .collect(),
                    ),
                ),
            ]
            .into_iter()
            .collect(),
        )
    }

    fn from_json_value(v: &Value) -> Result<ResultDoc, json::JsonError> {
        let matches = v
            .field("matches")?
            .as_array()?
            .iter()
            .map(|ids| ids.as_array()?.iter().map(|i| i.as_u32()).collect())
            .collect::<Result<Vec<Vec<u32>>, _>>()?;
        Ok(ResultDoc {
            data_nodes: v.field("data_nodes")?.as_usize()?,
            matches,
        })
    }
}

/// Save a query result as JSON.
pub fn save_result(m: &MatchRelation, path: impl AsRef<Path>) -> Result<(), ExpFinderError> {
    fs::write(
        path,
        ResultDoc::from_relation(m)
            .to_json_value()
            .to_string_compact(),
    )?;
    Ok(())
}

/// Load a query result from JSON.
pub fn load_result(path: impl AsRef<Path>) -> Result<MatchRelation, ExpFinderError> {
    let text = fs::read_to_string(path)?;
    let doc = json::parse(&text)
        .and_then(|v| ResultDoc::from_json_value(&v))
        .map_err(storage_err)?;
    Ok(doc.into_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_core::bounded_simulation;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_graph::GraphView;
    use expfinder_pattern::fixtures::fig1_pattern;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("expfinder_storage_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn catalog_roundtrip() {
        let dir = tmpdir("catalog");
        let f = collaboration_fig1();
        let e = ExpFinder::default();
        e.add_graph("fig1", f.graph.clone()).unwrap();
        e.add_graph("empty", expfinder_graph::DiGraph::new())
            .unwrap();
        save_catalog(&e, &dir).unwrap();

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.graph_names(), vec!["empty", "fig1"]);
        let h = loaded.handle("fig1").unwrap();
        loaded
            .read_graph(&h, |g| {
                assert_eq!(g.node_count(), 9);
                assert_eq!(g.edge_count(), 11);
            })
            .unwrap();
        // loaded graph answers the paper query identically
        let m = loaded.evaluate(&h, &fig1_pattern()).unwrap();
        assert_eq!(m.matches.total_pairs(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unchanged_graphs_skip_rewrite() {
        let dir = tmpdir("skip");
        let e = ExpFinder::default();
        e.add_graph("fig1", collaboration_fig1().graph).unwrap();
        e.add_graph("other", collaboration_fig1().graph).unwrap();
        save_catalog(&e, &dir).unwrap();

        // plant a sentinel comment: the text format ignores it on load,
        // and it only survives a re-save if the file was NOT rewritten
        let fig1_path = dir.join("fig1.efg");
        let mut text = fs::read_to_string(&fig1_path).unwrap();
        text.push_str("# sentinel\n");
        fs::write(&fig1_path, &text).unwrap();

        // nothing changed ⇒ second save keeps the sentinel
        save_catalog(&e, &dir).unwrap();
        assert!(
            fs::read_to_string(&fig1_path)
                .unwrap()
                .contains("# sentinel"),
            "unchanged graph was rewritten"
        );

        // bump one graph's version ⇒ only that file rewrites
        let other_path = dir.join("other.efg");
        let mut other_text = fs::read_to_string(&other_path).unwrap();
        other_text.push_str("# sentinel\n");
        fs::write(&other_path, &other_text).unwrap();
        let h = e.handle("fig1").unwrap();
        let f = collaboration_fig1();
        e.apply_updates(&h, &[expfinder_graph::EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        save_catalog(&e, &dir).unwrap();
        assert!(
            !fs::read_to_string(&fig1_path)
                .unwrap()
                .contains("# sentinel"),
            "updated graph must be rewritten"
        );
        assert!(
            fs::read_to_string(&other_path)
                .unwrap()
                .contains("# sentinel"),
            "untouched graph must not be rewritten"
        );

        // a deleted .efg is restored even at an unchanged version
        fs::remove_file(&other_path).unwrap();
        save_catalog(&e, &dir).unwrap();
        assert!(other_path.is_file(), "missing file must be rewritten");

        // and the catalog still loads with the updated edge present
        let loaded = load_catalog(&dir).unwrap();
        let h = loaded.handle("fig1").unwrap();
        loaded
            .read_graph(&h, |g| assert_eq!(g.edge_count(), 12))
            .unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_roundtrip() {
        let dir = tmpdir("result");
        fs::create_dir_all(&dir).unwrap();
        let f = collaboration_fig1();
        let m = bounded_simulation(&f.graph, &fig1_pattern()).unwrap();
        let p = dir.join("team.json");
        save_result(&m, &p).unwrap();
        let loaded = load_result(&p).unwrap();
        assert_eq!(loaded, m);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_manifest_rejected() {
        let dir = tmpdir("bad");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            r#"{"format":"something-else","graphs":[]}"#,
        )
        .unwrap();
        assert!(matches!(
            load_catalog(&dir),
            Err(ExpFinderError::Storage(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn traversal_manifest_rejected() {
        let dir = tmpdir("traversal");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            r#"{"format":"expfinder-catalog-v1","graphs":["../../outside"]}"#,
        )
        .unwrap();
        assert!(matches!(
            load_catalog(&dir),
            Err(ExpFinderError::InvalidGraphName(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            load_catalog("/definitely/not/here"),
            Err(ExpFinderError::Io(_))
        ));
    }
}
