//! File-based persistence for the engine catalog.
//!
//! Paper §II: "all the graphs and query results are stored and managed as
//! files". A catalog directory contains a JSON manifest plus one `.efg`
//! text file per graph; query results serialize to JSON documents.

use crate::{EngineError, ExpFinder};
use expfinder_core::MatchRelation;
use expfinder_graph::{io as gio, BitSet, NodeId};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// The catalog manifest.
#[derive(Serialize, Deserialize)]
struct Manifest {
    format: String,
    graphs: Vec<String>,
}

const FORMAT: &str = "expfinder-catalog-v1";

/// Persist every graph of the engine into `dir` (created if missing).
pub fn save_catalog(engine: &ExpFinder, dir: impl AsRef<Path>) -> Result<(), EngineError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let names = engine.graph_names();
    for name in &names {
        let g = engine.graph(name)?;
        gio::save_text(g, dir.join(format!("{name}.efg")))
            .map_err(|e| EngineError::Storage(e.to_string()))?;
    }
    let manifest = Manifest {
        format: FORMAT.to_owned(),
        graphs: names,
    };
    let json =
        serde_json::to_string_pretty(&manifest).map_err(|e| EngineError::Storage(e.to_string()))?;
    fs::write(dir.join("manifest.json"), json)?;
    Ok(())
}

/// Load a catalog directory into a fresh engine (default configuration).
pub fn load_catalog(dir: impl AsRef<Path>) -> Result<ExpFinder, EngineError> {
    let dir = dir.as_ref();
    let json = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: Manifest =
        serde_json::from_str(&json).map_err(|e| EngineError::Storage(e.to_string()))?;
    if manifest.format != FORMAT {
        return Err(EngineError::Storage(format!(
            "unknown catalog format {:?}",
            manifest.format
        )));
    }
    let mut engine = ExpFinder::default();
    for name in manifest.graphs {
        let g = gio::load_text(dir.join(format!("{name}.efg")))
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        engine.add_graph(&name, g)?;
    }
    Ok(engine)
}

/// Serializable form of a match relation.
#[derive(Serialize, Deserialize)]
pub struct ResultDoc {
    /// Number of data-graph nodes the relation ranges over.
    pub data_nodes: usize,
    /// Per pattern node (in id order), the matched data node ids.
    pub matches: Vec<Vec<u32>>,
}

impl ResultDoc {
    pub fn from_relation(m: &MatchRelation) -> ResultDoc {
        ResultDoc {
            data_nodes: m.data_nodes(),
            matches: (0..m.pattern_nodes())
                .map(|i| {
                    m.matches(expfinder_pattern::PNodeId(i as u32))
                        .iter()
                        .map(|v| v.0)
                        .collect()
                })
                .collect(),
        }
    }

    pub fn into_relation(self) -> MatchRelation {
        let sets: Vec<BitSet> = self
            .matches
            .iter()
            .map(|ids| {
                let mut s = BitSet::new(self.data_nodes);
                for &i in ids {
                    s.insert(NodeId(i));
                }
                s
            })
            .collect();
        MatchRelation::from_sets(sets, self.data_nodes)
    }
}

/// Save a query result as JSON.
pub fn save_result(m: &MatchRelation, path: impl AsRef<Path>) -> Result<(), EngineError> {
    let json = serde_json::to_string(&ResultDoc::from_relation(m))
        .map_err(|e| EngineError::Storage(e.to_string()))?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a query result from JSON.
pub fn load_result(path: impl AsRef<Path>) -> Result<MatchRelation, EngineError> {
    let json = fs::read_to_string(path)?;
    let doc: ResultDoc =
        serde_json::from_str(&json).map_err(|e| EngineError::Storage(e.to_string()))?;
    Ok(doc.into_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_core::bounded_simulation;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_graph::GraphView;
    use expfinder_pattern::fixtures::fig1_pattern;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("expfinder_storage_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn catalog_roundtrip() {
        let dir = tmpdir("catalog");
        let f = collaboration_fig1();
        let mut e = ExpFinder::default();
        e.add_graph("fig1", f.graph.clone()).unwrap();
        e.add_graph("empty", expfinder_graph::DiGraph::new()).unwrap();
        save_catalog(&e, &dir).unwrap();

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.graph_names(), vec!["empty", "fig1"]);
        let g = loaded.graph("fig1").unwrap();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 11);
        // loaded graph answers the paper query identically
        let m = loaded.evaluate("fig1", &fig1_pattern()).unwrap();
        assert_eq!(m.matches.total_pairs(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_roundtrip() {
        let dir = tmpdir("result");
        fs::create_dir_all(&dir).unwrap();
        let f = collaboration_fig1();
        let m = bounded_simulation(&f.graph, &fig1_pattern()).unwrap();
        let p = dir.join("team.json");
        save_result(&m, &p).unwrap();
        let loaded = load_result(&p).unwrap();
        assert_eq!(loaded, m);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_manifest_rejected() {
        let dir = tmpdir("bad");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            r#"{"format":"something-else","graphs":[]}"#,
        )
        .unwrap();
        assert!(matches!(
            load_catalog(&dir),
            Err(EngineError::Storage(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_io_error() {
        assert!(matches!(
            load_catalog("/definitely/not/here"),
            Err(EngineError::Io(_))
        ));
    }
}
