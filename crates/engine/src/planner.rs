//! Cost-based route planner.
//!
//! The engine serves one logical operation — evaluate a pattern against
//! a graph — through several physical routes: the live adjacency, the
//! per-version CSR snapshot (sequential or parallel, both consulting the
//! per-version [`ReachIndex`](expfinder_graph::ReachIndex)), and the
//! maintained compressed quotient.
//! Until this module existed the choice was hard-coded: a size cutoff
//! decided whether a CSR could ever pay off, a "build on the second
//! sequential read" rule decided when to pay the snapshot build, and
//! compression always won when it was applicable. Every new route meant
//! another branch in every caller.
//!
//! The planner replaces those branches with one decision: fold the
//! statistics the engine already collects — per-graph read/update
//! frequency, reach-index hit rates, CSR build costs — into a
//! [`CostProfile`], estimate each candidate route's work in abstract
//! *work units*, and pick the cheapest. The estimates deliberately use
//! only deterministic inputs (graph size, pattern size, counters), never
//! wall-clock measurements, so a given workload history always produces
//! the same plan — which is what lets CI diff planner decisions against
//! a checked-in snapshot (`PLANS.json`). Measured costs (e.g. CSR build
//! nanos) are recorded in the profile for observability and misprediction
//! accounting, not for the decision itself.
//!
//! The model, in units of "adjacency work" (`size × pattern edges`):
//!
//! * **live** — the baseline: one fixpoint straight off the live
//!   adjacency, nothing to build.
//! * **snapshot** — the sequential CSR path: the same fixpoint at a
//!   [`CSR_EVAL_DISCOUNT`] (contiguous adjacency + label-indexed
//!   seeding), further discounted by the observed reach-index hit rate,
//!   plus the snapshot build amortized over the *observed* reads at this
//!   graph version. A version nobody has read yet amortizes over zero
//!   future reads — infinite per-query cost — so the first read of every
//!   version stays live and update-heavy streams never pay a build,
//!   while the second read predicts a read-heavy version and builds.
//! * **snapshot_parallel** — the CSR path with parallel refinement:
//!   the snapshot eval divided by the thread budget, plus the *full*
//!   build cost (parallel refinement requires the CSR, so its build is
//!   the price of parallelism, not an optional amortization).
//! * **compressed** — the fixpoint on the maintained quotient, scaled by
//!   the quotient/original size ratio, plus the match expansion.
//!
//! Exact-result routes (query cache, registered queries) are not costed:
//! they short-circuit before planning, and their decisions are recorded
//! as [`PlanDecision::exact`]. A non-`Auto` [`Route`](crate::Route)
//! preference no longer takes a separate code path either — the planner
//! still produces its decision, then records that the preference
//! overrode it (the `engine.planner.overrides` counter).

use expfinder_core::EvalStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Work-unit discount of evaluating on the CSR snapshot instead of the
/// live adjacency (contiguous edges + label-indexed candidate seeding).
pub const CSR_EVAL_DISCOUNT: f64 = 0.5;

/// Fraction of snapshot evaluation served for free by a reach-index hit
/// (a class-seeded first refresh becomes one bitset copy). Scaled by the
/// observed hit rate.
pub const INDEX_DISCOUNT: f64 = 0.8;

/// Fixed work units of building a CSR snapshot (allocation, setup) —
/// this is what keeps tiny graphs on the live adjacency: even a
/// perfectly amortized build never pays for itself below a few thousand
/// work units.
pub const CSR_BUILD_FIXED: f64 = 512.0;

/// Per-element (`|V| + |E|`) work units of building a CSR snapshot.
pub const CSR_BUILD_PER_ELEMENT: f64 = 0.25;

/// Work-unit discount of evaluating on the compressed quotient (smaller
/// graph, then a linear expansion), applied on top of the
/// quotient/original size ratio.
pub const COMPRESSED_EVAL_DISCOUNT: f64 = 0.5;

/// A physical evaluation route the planner can choose between (or
/// record, for the exact-result short circuits).
///
/// Wire strings (the `timings.plan` object of a query response):
/// `cache`, `registered`, `live`, `snapshot`, `snapshot_parallel`,
/// `compressed`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanRoute {
    /// Exact result from the query cache (not costed).
    Cache,
    /// Exact result from a registered query's maintainer (not costed).
    Registered,
    /// Sequential fixpoint on the live adjacency.
    Live,
    /// Sequential fixpoint on the CSR snapshot, reach-indexed.
    Snapshot,
    /// Parallel refinement on the CSR snapshot, reach-indexed.
    SnapshotParallel,
    /// Fixpoint on the maintained compressed quotient, then expansion.
    Compressed,
}

impl PlanRoute {
    /// Stable wire string of this route.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanRoute::Cache => "cache",
            PlanRoute::Registered => "registered",
            PlanRoute::Live => "live",
            PlanRoute::Snapshot => "snapshot",
            PlanRoute::SnapshotParallel => "snapshot_parallel",
            PlanRoute::Compressed => "compressed",
        }
    }
}

/// One candidate route with its estimated cost in work units.
/// `f64::INFINITY` is a legal estimate ("this route cannot amortize its
/// setup on the observed workload") and is encoded as `"inf"` on the
/// wire.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CandidateCost {
    pub route: PlanRoute,
    pub cost: f64,
}

/// Deterministic, point-in-time inputs to [`plan`], extracted from a
/// graph's [`CostProfile`] (plus what the caller knows about the graph
/// and its snapshot state). Construct these directly to unit-test the
/// model against synthetic workload shapes.
#[derive(Copy, Clone, Debug)]
pub struct CostInputs {
    /// `|V| + |E|` of the graph.
    pub size: usize,
    /// Cost-modeled evaluations already completed at the current graph
    /// version — the amortization horizon for a snapshot build.
    pub reads_at_version: u64,
    /// Cumulative reach-index hits observed on this graph.
    pub index_hits: u64,
    /// Cumulative reach-index misses observed on this graph.
    pub index_misses: u64,
    /// A CSR snapshot for the current version already exists (its build
    /// is sunk cost).
    pub csr_fresh: bool,
}

impl CostInputs {
    /// Observed reach-index hit rate, `0.0` when nothing was observed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.index_hits + self.index_misses;
        if total == 0 {
            0.0
        } else {
            self.index_hits as f64 / total as f64
        }
    }
}

/// Per-query context the profile cannot know: thread budget, pattern
/// size, and whether a compression-safe quotient is available.
#[derive(Copy, Clone, Debug)]
pub struct PlanContext {
    /// Thread budget for parallel refinement.
    pub threads: usize,
    /// Pattern edge count (the per-constraint work multiplier).
    pub pattern_edges: usize,
    /// `Some(ratio)` when a maintained quotient exists, the pattern is
    /// compression-safe, and policy allows the compressed route; `ratio`
    /// is `|G_c| / |G|` clamped to `(0, 1]`.
    pub compression_ratio: Option<f64>,
}

/// The planner's verdict for one query: what it picked, what it would
/// have picked without a caller preference, and every candidate it
/// costed. Carried on [`QueryResponse`](crate::QueryResponse) and
/// encoded as the `timings.plan` wire object.
#[derive(Clone, Debug)]
pub struct PlanDecision {
    /// The route that was (or will be) evaluated.
    pub chosen: PlanRoute,
    /// The cheapest candidate — what the planner picked before any
    /// caller preference was applied.
    pub planned: PlanRoute,
    /// A non-`Auto` [`Route`](crate::Route) preference forced the
    /// decision (`chosen` may still coincide with `planned`).
    pub overridden: bool,
    /// Every costed candidate, in deterministic order (`live`,
    /// `snapshot`, `snapshot_parallel?`, `compressed?`). Empty for the
    /// exact-result short circuits.
    pub candidates: Vec<CandidateCost>,
    /// The reach-index hit rate the winning estimate assumed — the
    /// prediction checked by [`PlanDecision::mispredicted`].
    pub expected_hit_rate: f64,
}

impl PlanDecision {
    /// Decision for an exact-result route (cache / registered hit): no
    /// candidates were costed.
    pub fn exact(route: PlanRoute) -> PlanDecision {
        PlanDecision {
            chosen: route,
            planned: route,
            overridden: false,
            candidates: Vec::new(),
            expected_hit_rate: 0.0,
        }
    }

    /// Did the evaluation contradict the estimate that made the chosen
    /// route win? The one falsifiable prediction the model makes per
    /// query is the index discount: a snapshot route chosen on the
    /// strength of a warm hit rate (≥ 0.5) that then sees only misses
    /// was mispredicted. Deterministic — it compares counters, not
    /// wall-clock.
    pub fn mispredicted(&self, stats: &EvalStats) -> bool {
        matches!(
            self.chosen,
            PlanRoute::Snapshot | PlanRoute::SnapshotParallel
        ) && self.expected_hit_rate >= 0.5
            && stats.index_hits == 0
            && stats.index_misses > 0
    }

    /// Apply a caller route preference on top of the planned choice:
    /// `Direct` restricts to the direct candidates (compression was
    /// never costed for it), `Compressed` forces the quotient when one
    /// was costed and otherwise falls back to the planned direct route.
    pub fn apply_preference(&mut self, prefer: crate::Route) {
        match prefer {
            crate::Route::Auto => {}
            crate::Route::Direct => {
                self.overridden = true;
            }
            crate::Route::Compressed => {
                self.overridden = true;
                if self
                    .candidates
                    .iter()
                    .any(|c| c.route == PlanRoute::Compressed)
                {
                    self.chosen = PlanRoute::Compressed;
                }
            }
        }
    }
}

/// Estimate every candidate route's cost and pick the cheapest (ties
/// break toward the earlier candidate, so `live` wins an exact tie).
/// Purely deterministic in its inputs.
pub fn plan(inputs: &CostInputs, ctx: &PlanContext) -> PlanDecision {
    let base = inputs.size.max(1) as f64 * ctx.pattern_edges.max(1) as f64;
    let hit_rate = inputs.hit_rate();
    let build = CSR_BUILD_FIXED + CSR_BUILD_PER_ELEMENT * inputs.size as f64;
    let snapshot_eval = CSR_EVAL_DISCOUNT * (1.0 - INDEX_DISCOUNT * hit_rate) * base;

    let mut candidates = vec![
        CandidateCost {
            route: PlanRoute::Live,
            cost: base,
        },
        CandidateCost {
            route: PlanRoute::Snapshot,
            cost: if inputs.csr_fresh {
                snapshot_eval
            } else {
                // amortize over the observed reads at this version;
                // zero observed reads → infinite per-query build cost
                snapshot_eval + build / inputs.reads_at_version as f64
            },
        },
    ];
    if ctx.threads > 1 {
        candidates.push(CandidateCost {
            route: PlanRoute::SnapshotParallel,
            cost: snapshot_eval / ctx.threads as f64 + if inputs.csr_fresh { 0.0 } else { build },
        });
    }
    if let Some(ratio) = ctx.compression_ratio {
        candidates.push(CandidateCost {
            route: PlanRoute::Compressed,
            cost: COMPRESSED_EVAL_DISCOUNT * ratio.clamp(f64::MIN_POSITIVE, 1.0) * base,
        });
    }

    let planned = candidates
        .iter()
        .fold(None::<CandidateCost>, |best, &c| match best {
            Some(b) if b.cost <= c.cost => Some(b),
            _ => Some(c),
        })
        .expect("at least the live candidate exists")
        .route;
    PlanDecision {
        chosen: planned,
        planned,
        overridden: false,
        candidates,
        expected_hit_rate: hit_rate,
    }
}

/// Lock-free per-graph statistics the planner runs on, maintained by the
/// engine's `StoredGraph` (and, in the durable runtime, published
/// alongside each shard snapshot on the graph's stable
/// `PublishedGraph`). All counters are advisory — racy resets across a
/// version roll lose at most a read or two, which the model tolerates.
#[derive(Debug, Default)]
pub struct CostProfile {
    /// Graph version the `reads_at_version` window belongs to.
    version: AtomicU64,
    reads_at_version: AtomicU64,
    reads_total: AtomicU64,
    update_batches: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    csr_builds: AtomicU64,
    csr_build_nanos: AtomicU64,
}

impl CostProfile {
    /// Extract the deterministic model inputs for a query at `version`
    /// against a graph of `size`, with `csr_fresh` saying whether a CSR
    /// snapshot for that version already exists.
    pub fn inputs(&self, version: u64, size: usize, csr_fresh: bool) -> CostInputs {
        let reads_at_version = if self.version.load(Ordering::Relaxed) == version {
            self.reads_at_version.load(Ordering::Relaxed)
        } else {
            0
        };
        CostInputs {
            size,
            reads_at_version,
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
            csr_fresh,
        }
    }

    /// Record one completed cost-modeled evaluation at `version` (cache
    /// and registered hits are not reads in the planner's sense — they
    /// never had a route choice to amortize against).
    pub fn note_eval(&self, version: u64, stats: &EvalStats) {
        if self.version.load(Ordering::Relaxed) != version {
            self.version.store(version, Ordering::Relaxed);
            self.reads_at_version.store(0, Ordering::Relaxed);
        }
        self.reads_at_version.fetch_add(1, Ordering::Relaxed);
        self.reads_total.fetch_add(1, Ordering::Relaxed);
        self.index_hits
            .fetch_add(stats.index_hits as u64, Ordering::Relaxed);
        self.index_misses
            .fetch_add(stats.index_misses as u64, Ordering::Relaxed);
    }

    /// Record one committed update batch (version moved).
    pub fn note_update_batch(&self) {
        self.update_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one measured CSR snapshot build. Observability only — the
    /// cost model stays deterministic by design.
    pub fn note_csr_build(&self, nanos: u64) {
        self.csr_builds.fetch_add(1, Ordering::Relaxed);
        self.csr_build_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Lifetime evaluations observed.
    pub fn reads_total(&self) -> u64 {
        self.reads_total.load(Ordering::Relaxed)
    }

    /// Lifetime update batches observed.
    pub fn update_batches(&self) -> u64 {
        self.update_batches.load(Ordering::Relaxed)
    }

    /// Lifetime CSR snapshot builds and their cumulative measured cost.
    pub fn csr_build_cost(&self) -> (u64, u64) {
        (
            self.csr_builds.load(Ordering::Relaxed),
            self.csr_build_nanos.load(Ordering::Relaxed),
        )
    }
}

/// Cumulative planner counters — the `engine.planner` block of
/// `GET /metrics`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlannerTotals {
    /// Plan decisions made (one per query, exact short circuits
    /// included).
    pub decisions: u64,
    /// Decisions forced by a non-`Auto` route preference.
    pub overrides: u64,
    /// Decisions whose winning estimate the evaluation then contradicted
    /// ([`PlanDecision::mispredicted`]).
    pub mispredicts: u64,
}

/// Lock-free accumulator behind [`PlannerTotals`], owned by each engine
/// (and each durable runtime).
#[derive(Debug, Default)]
pub struct PlannerCounters {
    decisions: AtomicU64,
    overrides: AtomicU64,
    mispredicts: AtomicU64,
}

impl PlannerCounters {
    /// Count one decision (and its override, if any).
    pub fn on_decision(&self, decision: &PlanDecision) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if decision.overridden {
            self.overrides.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one misprediction.
    pub fn on_mispredict(&self) {
        self.mispredicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time totals.
    pub fn totals(&self) -> PlannerTotals {
        PlannerTotals {
            decisions: self.decisions.load(Ordering::Relaxed),
            overrides: self.overrides.load(Ordering::Relaxed),
            mispredicts: self.mispredicts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(threads: usize, pattern_edges: usize) -> PlanContext {
        PlanContext {
            threads,
            pattern_edges,
            compression_ratio: None,
        }
    }

    #[test]
    fn cold_first_read_stays_live() {
        // nobody has read this version: a snapshot build amortizes over
        // zero future reads, so the live adjacency must win
        let inputs = CostInputs {
            size: 100_000,
            reads_at_version: 0,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        let d = plan(&inputs, &ctx(1, 4));
        assert_eq!(d.planned, PlanRoute::Live);
        let snap = d
            .candidates
            .iter()
            .find(|c| c.route == PlanRoute::Snapshot)
            .unwrap();
        assert!(snap.cost.is_infinite(), "no amortization horizon");
    }

    #[test]
    fn second_read_builds_the_snapshot() {
        let inputs = CostInputs {
            size: 4096,
            reads_at_version: 1,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        let d = plan(&inputs, &ctx(1, 2));
        assert_eq!(d.planned, PlanRoute::Snapshot);
    }

    #[test]
    fn warm_class_seeded_workload_takes_the_reach_indexed_route() {
        // acceptance shape: many reads at this version, high observed
        // index hit rate, snapshot already built — the reach-indexed
        // snapshot route must win by a wide margin
        let inputs = CostInputs {
            size: 20_000,
            reads_at_version: 50,
            index_hits: 120,
            index_misses: 4,
            csr_fresh: true,
        };
        let d = plan(&inputs, &ctx(1, 3));
        assert_eq!(d.planned, PlanRoute::Snapshot);
        let snap = d
            .candidates
            .iter()
            .find(|c| c.route == PlanRoute::Snapshot)
            .unwrap();
        let live = d
            .candidates
            .iter()
            .find(|c| c.route == PlanRoute::Live)
            .unwrap();
        assert!(snap.cost < 0.5 * live.cost, "index discount applied");
        assert!(d.expected_hit_rate > 0.9);
    }

    #[test]
    fn update_heavy_stream_stays_on_live_adjacency() {
        // acceptance shape: every version is read at most once before
        // the next update batch invalidates it — the planner must never
        // pay a snapshot build
        let inputs = CostInputs {
            size: 50_000,
            reads_at_version: 0,
            index_hits: 3,
            index_misses: 40,
            csr_fresh: false,
        };
        let d = plan(&inputs, &ctx(1, 5));
        assert_eq!(d.planned, PlanRoute::Live);
    }

    #[test]
    fn small_graphs_never_pay_a_build() {
        // even with an amortization horizon, the fixed build cost dwarfs
        // a tiny graph's whole evaluation
        let inputs = CostInputs {
            size: 30,
            reads_at_version: 5,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        assert_eq!(plan(&inputs, &ctx(1, 3)).planned, PlanRoute::Live);
        // ... but a snapshot someone else already built is free to use
        let fresh = CostInputs {
            csr_fresh: true,
            ..inputs
        };
        assert_eq!(plan(&fresh, &ctx(1, 3)).planned, PlanRoute::Snapshot);
    }

    #[test]
    fn thread_budget_unlocks_the_parallel_route_on_big_graphs_only() {
        let big = CostInputs {
            size: 4096,
            reads_at_version: 0,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        let d = plan(&big, &ctx(4, 3));
        assert_eq!(
            d.planned,
            PlanRoute::SnapshotParallel,
            "parallel refinement pays its own build: {:?}",
            d.candidates
        );
        let tiny = CostInputs { size: 60, ..big };
        assert_eq!(plan(&tiny, &ctx(4, 3)).planned, PlanRoute::Live);
    }

    #[test]
    fn compression_wins_until_the_index_is_warm() {
        let cold = CostInputs {
            size: 1000,
            reads_at_version: 0,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        let c = PlanContext {
            threads: 1,
            pattern_edges: 3,
            compression_ratio: Some(0.6),
        };
        assert_eq!(plan(&cold, &c).planned, PlanRoute::Compressed);
        // a warm reach-indexed snapshot can out-bid the quotient — the
        // planner is allowed to skip compression when the index is hot
        let warm = CostInputs {
            reads_at_version: 10,
            index_hits: 99,
            index_misses: 1,
            csr_fresh: true,
            ..cold
        };
        assert_eq!(plan(&warm, &c).planned, PlanRoute::Snapshot);
    }

    #[test]
    fn preference_overrides_are_recorded_not_replanned() {
        let inputs = CostInputs {
            size: 1000,
            reads_at_version: 0,
            index_hits: 0,
            index_misses: 0,
            csr_fresh: false,
        };
        let c = PlanContext {
            threads: 1,
            pattern_edges: 2,
            compression_ratio: Some(0.5),
        };
        let mut d = plan(&inputs, &c);
        assert_eq!(d.planned, PlanRoute::Compressed);
        d.apply_preference(crate::Route::Compressed);
        assert!(d.overridden);
        assert_eq!(d.chosen, PlanRoute::Compressed);

        // Direct preference: the caller filtered compression out of the
        // context, so the planned route is already the direct winner
        let mut d = plan(&inputs, &ctx(1, 2));
        d.apply_preference(crate::Route::Direct);
        assert!(d.overridden);
        assert_eq!(d.chosen, PlanRoute::Live);
    }

    #[test]
    fn profile_windows_reads_per_version_and_accumulates_rates() {
        let p = CostProfile::default();
        let stats_hit = EvalStats {
            index_hits: 2,
            index_misses: 1,
            ..EvalStats::default()
        };
        assert_eq!(p.inputs(7, 100, false).reads_at_version, 0);
        p.note_eval(7, &stats_hit);
        p.note_eval(7, &stats_hit);
        let i = p.inputs(7, 100, false);
        assert_eq!(i.reads_at_version, 2);
        assert_eq!(i.index_hits, 4);
        assert!((i.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        // a version roll resets the window but keeps the rates
        let i = p.inputs(8, 100, false);
        assert_eq!(i.reads_at_version, 0);
        assert_eq!(i.index_hits, 4);
        p.note_eval(8, &EvalStats::default());
        assert_eq!(p.inputs(8, 100, false).reads_at_version, 1);
        assert_eq!(p.reads_total(), 3);
        p.note_update_batch();
        assert_eq!(p.update_batches(), 1);
        p.note_csr_build(500);
        assert_eq!(p.csr_build_cost(), (1, 500));
    }

    #[test]
    fn counters_accumulate_decisions_overrides_and_mispredicts() {
        let c = PlannerCounters::default();
        let mut d = PlanDecision::exact(PlanRoute::Cache);
        c.on_decision(&d);
        d.overridden = true;
        c.on_decision(&d);
        c.on_mispredict();
        assert_eq!(
            c.totals(),
            PlannerTotals {
                decisions: 2,
                overrides: 1,
                mispredicts: 1
            }
        );
    }

    #[test]
    fn mispredict_requires_a_broken_index_promise() {
        let mut d = PlanDecision::exact(PlanRoute::Snapshot);
        d.expected_hit_rate = 0.9;
        let all_miss = EvalStats {
            index_misses: 5,
            ..EvalStats::default()
        };
        assert!(d.mispredicted(&all_miss));
        let some_hit = EvalStats {
            index_hits: 1,
            index_misses: 5,
            ..EvalStats::default()
        };
        assert!(!d.mispredicted(&some_hit));
        d.expected_hit_rate = 0.2;
        assert!(!d.mispredicted(&all_miss), "no warm promise was made");
        d.chosen = PlanRoute::Live;
        d.expected_hit_rate = 0.9;
        assert!(!d.mispredicted(&all_miss), "live made no index promise");
    }
}
