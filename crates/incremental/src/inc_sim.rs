//! Incremental maintenance for plain graph simulation.
//!
//! Persistent state: the raw greatest-fixpoint sets `sim(u)`, the
//! predicate candidates `cand0(u)`, and for every pattern edge
//! `e = (u, u')` a counter per data node `cnt[e][v] = |succ(v) ∩ sim(u')|`
//! — maintained for **all** nodes, members or not, so that re-additions
//! after insertions are detected in O(1).
//!
//! * **Deletion** of `(x, y)`: matches can only disappear. Decrement
//!   `cnt[e][x]` for edges whose target set contains `y`; zeros cascade
//!   exactly like the batch algorithm's removal phase, but starting from a
//!   single seed instead of the whole graph.
//! * **Insertion** of `(x, y)`: matches can only appear. Increment the
//!   counters, then run *optimistic expansion*: starting from `x`,
//!   tentatively admit every candidate pair that would be satisfied by the
//!   current members **plus the other tentative pairs** (this optimism is
//!   what finds cyclic mutual support), walking upstream through
//!   in-neighbors. A *verification* pass then runs the ordinary removal
//!   fixpoint restricted to the tentative pairs; old members can never be
//!   invalidated by an insertion, so verification touches nothing else.

use crate::{IncStats, Maintainer, MatchDelta};
use expfinder_core::matchrel::MatchRelation;
use expfinder_core::sim::simulation_fixpoint;
use expfinder_core::MatchError;
use expfinder_graph::{BitSet, DiGraph, EdgeUpdate, GraphView, NodeId};
use expfinder_pattern::{PNodeId, Pattern};

/// Maintains `M(Q,G)` for a simulation pattern under edge updates.
pub struct IncrementalSim {
    pattern: Pattern,
    /// Predicate-satisfying candidates (static: ΔG is edges only).
    cand0: Vec<BitSet>,
    /// Raw greatest-fixpoint match sets.
    sim: Vec<BitSet>,
    /// `cnt[e][v] = |succ(v) ∩ sim(target(e))|` for every node `v`.
    cnt: Vec<Vec<u32>>,
    data_nodes: usize,
    stats: IncStats,
}

impl IncrementalSim {
    /// Evaluate `q` on `g` once and set up maintenance state.
    pub fn new(g: &DiGraph, q: &Pattern) -> Result<IncrementalSim, MatchError> {
        if !q.is_simulation() {
            return Err(MatchError::NotASimulationPattern);
        }
        let cand0 = candidate_sets(g, q);
        let (sim, cnt) = simulation_fixpoint(g, q, cand0.clone());
        Ok(IncrementalSim {
            pattern: q.clone(),
            cand0,
            sim,
            cnt,
            data_nodes: g.node_count(),
            stats: IncStats::default(),
        })
    }

    /// The maintained pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    fn assert_node(&self, v: NodeId) {
        assert!(
            v.index() < self.data_nodes,
            "update touches node {v} outside the maintained graph (node additions \
             require rebuilding the maintainer)"
        );
    }

    /// Handle an insertion of `(x, y)` already applied to `g`.
    fn on_insert(&mut self, g: &DiGraph, x: NodeId, y: NodeId) -> Vec<MatchDelta> {
        let q = &self.pattern;
        // 1. counters: x gained successor y
        for (ei, e) in q.edges().iter().enumerate() {
            if self.sim[e.to.index()].contains(y) {
                self.cnt[ei][x.index()] += 1;
            }
        }

        // 2. optimistic expansion: an unconditional upstream closure.
        //
        // Every pair that could possibly have become valid lies upstream
        // (through candidate pairs) of a *terminal* pair (u, x) whose new
        // support is the inserted edge itself — which requires some
        // out-edge (u, u') of u with y a candidate of u'. The closure adds
        // all of those pairs WITHOUT checking support: checking here would
        // fail to bootstrap cyclic mutual support (two pairs that only
        // support each other). The verification fixpoint below removes
        // every over-approximated pair exactly.
        let nq = q.node_count();
        let mut tentative: Vec<BitSet> = (0..nq).map(|_| BitSet::new(self.data_nodes)).collect();
        let mut worklist: Vec<(PNodeId, NodeId)> = Vec::new();
        for u in q.ids() {
            if self.cand0[u.index()].contains(x)
                && !self.sim[u.index()].contains(x)
                && q.out_edges(u).any(|e| self.cand0[e.to.index()].contains(y))
            {
                worklist.push((u, x));
            }
        }
        while let Some((u, v)) = worklist.pop() {
            if tentative[u.index()].contains(v) || self.sim[u.index()].contains(v) {
                continue;
            }
            self.stats.tentative_pairs += 1;
            tentative[u.index()].insert(v);
            // upstream: pairs that might gain support through (·, v)
            for e in q.in_edges(u) {
                let w = e.from;
                for &p in g.in_neighbors(v) {
                    if self.cand0[w.index()].contains(p)
                        && !self.sim[w.index()].contains(p)
                        && !tentative[w.index()].contains(p)
                    {
                        worklist.push((w, p));
                    }
                }
            }
        }

        // 3. finalize tentative pairs into sim + counters
        let mut added: Vec<(PNodeId, NodeId)> = Vec::new();
        for u in q.ids() {
            for v in tentative[u.index()].iter() {
                self.sim[u.index()].insert(v);
                added.push((u, v));
            }
        }
        for &(u, v) in &added {
            for &ei in q.in_edge_indices(u) {
                for &p in g.in_neighbors(v) {
                    self.cnt[ei as usize][p.index()] += 1;
                }
            }
        }

        // 4. verification: removal fixpoint restricted to tentative pairs
        let mut queue: Vec<(PNodeId, NodeId)> = Vec::new();
        for &(u, v) in &added {
            let violated = q
                .out_edge_indices(u)
                .iter()
                .any(|&ei| self.cnt[ei as usize][v.index()] == 0);
            if violated && self.sim[u.index()].remove(v) {
                queue.push((u, v));
            }
        }
        let mut removed_in_verify: Vec<(PNodeId, NodeId)> = Vec::new();
        while let Some((u, v)) = queue.pop() {
            removed_in_verify.push((u, v));
            for &ei in q.in_edge_indices(u) {
                let from = q.edges()[ei as usize].from;
                for &p in g.in_neighbors(v) {
                    let c = &mut self.cnt[ei as usize][p.index()];
                    debug_assert!(*c > 0, "counter underflow in verification");
                    *c -= 1;
                    if *c == 0 && self.sim[from.index()].contains(p) {
                        // only tentative pairs can die on insertion
                        debug_assert!(
                            tentative[from.index()].contains(p),
                            "verification tried to remove a pre-existing member"
                        );
                        self.sim[from.index()].remove(p);
                        queue.push((from, p));
                    }
                }
            }
        }

        // ΔM = finalized additions minus verification removals
        let removed_set: std::collections::HashSet<(u32, u32)> =
            removed_in_verify.iter().map(|&(u, v)| (u.0, v.0)).collect();
        let deltas: Vec<MatchDelta> = added
            .into_iter()
            .filter(|&(u, v)| !removed_set.contains(&(u.0, v.0)))
            .map(|(u, v)| MatchDelta {
                pattern_node: u,
                data_node: v,
                added: true,
            })
            .collect();
        self.stats.added += deltas.len();
        deltas
    }

    /// Handle a deletion of `(x, y)` already applied to `g`.
    fn on_delete(&mut self, g: &DiGraph, x: NodeId, y: NodeId) -> Vec<MatchDelta> {
        let q = &self.pattern;
        let mut queue: Vec<(PNodeId, NodeId)> = Vec::new();
        // x lost successor y
        for (ei, e) in q.edges().iter().enumerate() {
            if self.sim[e.to.index()].contains(y) {
                let c = &mut self.cnt[ei][x.index()];
                debug_assert!(*c > 0, "counter underflow on delete");
                *c -= 1;
                if *c == 0 && self.sim[e.from.index()].remove(x) {
                    queue.push((e.from, x));
                }
            }
        }
        // cascade
        let mut deltas = Vec::new();
        while let Some((u, v)) = queue.pop() {
            deltas.push(MatchDelta {
                pattern_node: u,
                data_node: v,
                added: false,
            });
            for &ei in q.in_edge_indices(u) {
                let from = q.edges()[ei as usize].from;
                for &p in g.in_neighbors(v) {
                    let c = &mut self.cnt[ei as usize][p.index()];
                    debug_assert!(*c > 0, "counter underflow in cascade");
                    *c -= 1;
                    if *c == 0 && self.sim[from.index()].remove(p) {
                        queue.push((from, p));
                    }
                }
            }
        }
        self.stats.removed += deltas.len();
        deltas
    }
}

impl Maintainer for IncrementalSim {
    fn on_update(&mut self, g: &DiGraph, update: EdgeUpdate) -> Vec<MatchDelta> {
        let (x, y) = update.endpoints();
        self.assert_node(x);
        self.assert_node(y);
        match update {
            EdgeUpdate::Insert(..) => {
                debug_assert!(g.has_edge(x, y), "insert must be applied before on_update");
                self.on_insert(g, x, y)
            }
            EdgeUpdate::Delete(..) => {
                debug_assert!(!g.has_edge(x, y), "delete must be applied before on_update");
                self.on_delete(g, x, y)
            }
        }
    }

    fn current(&self) -> MatchRelation {
        MatchRelation::from_sets(self.sim.clone(), self.data_nodes)
    }

    fn stats(&self) -> IncStats {
        self.stats
    }
}

/// Local copy of the candidate-set helper (the core one is crate-private).
fn candidate_sets(g: &DiGraph, q: &Pattern) -> Vec<BitSet> {
    let n = g.node_count();
    q.nodes()
        .iter()
        .map(|pn| {
            let compiled = pn.predicate.compile(g);
            let mut set = BitSet::new(n);
            for v in g.ids() {
                if compiled.eval(g.vertex(v)) {
                    set.insert(v);
                }
            }
            set
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_batch;
    use expfinder_core::graph_simulation;
    use expfinder_graph::generate::{erdos_renyi, random_updates, NodeSpec};
    use expfinder_pattern::generate::{random_pattern, PatternConfig, PatternShape};
    use expfinder_pattern::{Bound, PatternBuilder, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_recompute(g: &DiGraph, inc: &IncrementalSim) {
        let fresh = graph_simulation(g, inc.pattern()).unwrap();
        assert_eq!(inc.current(), fresh, "incremental diverged from recompute");
    }

    #[test]
    fn insert_adds_match() {
        // A  B (no edge): pattern a→b empty; insert edge → matches appear
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let b = g.add_node("B", []);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        assert!(inc.current().is_empty());
        g.add_edge(a, b);
        let delta = inc.on_update(&g, EdgeUpdate::Insert(a, b));
        check_against_recompute(&g, &inc);
        assert_eq!(inc.current().total_pairs(), 2);
        // ΔM contains the (a,A) addition; (b,B) was already in the raw sets
        assert!(delta.iter().any(|d| d.added && d.data_node == a));
    }

    #[test]
    fn delete_removes_and_cascades() {
        // chain A→B→C, pattern a→b→c; deleting B→C kills everything
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let b = g.add_node("B", []);
        let c = g.add_node("C", []);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .node("c", Predicate::label("C"))
            .edge("a", "b", Bound::ONE)
            .edge("b", "c", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        assert_eq!(inc.current().total_pairs(), 3);
        g.remove_edge(b, c);
        let delta = inc.on_update(&g, EdgeUpdate::Delete(b, c));
        check_against_recompute(&g, &inc);
        assert!(inc.current().is_empty());
        // cascade removed both b and (transitively) a
        assert_eq!(delta.len(), 2);
        assert!(delta.iter().all(|d| !d.added));
    }

    #[test]
    fn insertion_revives_cyclic_mutual_support() {
        // pattern a ⇄ b; data 0(A) → 1(B), missing back edge.
        // Inserting 1→0 must admit BOTH pairs simultaneously.
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let b = g.add_node("B", []);
        g.add_edge(a, b);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::ONE)
            .edge("b", "a", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        assert!(inc.current().is_empty());
        g.add_edge(b, a);
        inc.on_update(&g, EdgeUpdate::Insert(b, a));
        check_against_recompute(&g, &inc);
        assert_eq!(inc.current().total_pairs(), 2);
    }

    #[test]
    fn optimistic_overreach_is_verified_away() {
        // pattern a→b→c. Data: 0(A)→1(B), 2(C) isolated.
        // Insert 0→1? already there. Insert 1→? nothing reaches C.
        // Construct a case where expansion tentatively admits pairs that
        // verification must kill: a(A)→b(B), b needs c(C); inserting A→B
        // tentatively admits (a,0) optimistically only if (b,1) is
        // tentative; (b,1) fails since 1 has no C successor — so (a,0)
        // must not survive.
        let mut g = DiGraph::new();
        let n0 = g.add_node("A", []);
        let n1 = g.add_node("B", []);
        let _n2 = g.add_node("C", []);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .node("c", Predicate::label("C"))
            .edge("a", "b", Bound::ONE)
            .edge("b", "c", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        g.add_edge(n0, n1);
        inc.on_update(&g, EdgeUpdate::Insert(n0, n1));
        check_against_recompute(&g, &inc);
        assert!(inc.current().is_empty());
    }

    #[test]
    fn verification_kills_mutually_dependent_overreach() {
        // pattern: a→b, b→a, b→c (cycle plus an extra requirement).
        // data: 0(A) ⇄ 1(B) after insertion, but no C anywhere:
        // optimistic expansion admits (a,0),(b,1) via mutual support, then
        // verification kills (b,1) for lack of c, cascading to (a,0).
        let mut g = DiGraph::new();
        let n0 = g.add_node("A", []);
        let n1 = g.add_node("B", []);
        g.add_edge(n0, n1);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .node("c", Predicate::label("C"))
            .edge("a", "b", Bound::ONE)
            .edge("b", "a", Bound::ONE)
            .edge("b", "c", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        g.add_edge(n1, n0);
        let delta = inc.on_update(&g, EdgeUpdate::Insert(n1, n0));
        check_against_recompute(&g, &inc);
        assert!(inc.current().is_empty());
        assert!(delta.is_empty(), "nothing truly changed");
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let b = g.add_node("B", []);
        g.add_edge(a, b);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::ONE)
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        let before = inc.current();
        g.remove_edge(a, b);
        inc.on_update(&g, EdgeUpdate::Delete(a, b));
        g.add_edge(a, b);
        inc.on_update(&g, EdgeUpdate::Insert(a, b));
        assert_eq!(inc.current(), before, "roundtrip restores the relation");
    }

    #[test]
    fn rejects_bounded_pattern() {
        let g = DiGraph::new();
        let q = PatternBuilder::new()
            .node("a", Predicate::True)
            .node("b", Predicate::True)
            .edge("a", "b", Bound::hops(2))
            .build()
            .unwrap();
        assert!(IncrementalSim::new(&g, &q).is_err());
    }

    #[test]
    fn differential_random_updates() {
        let mut rng = StdRng::seed_from_u64(2024);
        let spec = NodeSpec::uniform(3, 4);
        for trial in 0..15 {
            let mut g = erdos_renyi(&mut rng, 40, 150, &spec);
            let mut cfg = PatternConfig::new(PatternShape::Dag, 4, spec.labels.clone());
            cfg.bound_range = (1, 1);
            cfg.extra_edges = 2;
            let q = random_pattern(&mut rng, &cfg);
            let mut inc = IncrementalSim::new(&g, &q).unwrap();
            let updates = random_updates(&mut rng, &g, 40, 0.5);
            for (i, &up) in updates.iter().enumerate() {
                assert!(g.apply(up));
                inc.on_update(&g, up);
                if i % 10 == 9 {
                    check_against_recompute(&g, &inc);
                }
            }
            check_against_recompute(&g, &inc);
            let _ = trial;
        }
    }

    #[test]
    fn batch_helper_applies_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = NodeSpec::uniform(3, 4);
        let mut g = erdos_renyi(&mut rng, 30, 100, &spec);
        let mut cfg = PatternConfig::new(PatternShape::Star, 3, spec.labels.clone());
        cfg.bound_range = (1, 1);
        let q = random_pattern(&mut rng, &cfg);
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        let updates = random_updates(&mut rng, &g, 25, 0.6);
        apply_batch(&mut g, &mut inc, &updates);
        check_against_recompute(&g, &inc);
    }

    #[test]
    #[should_panic(expected = "outside the maintained graph")]
    fn update_on_unknown_node_panics() {
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .build()
            .unwrap();
        let mut inc = IncrementalSim::new(&g, &q).unwrap();
        let b = g.add_node("B", []); // added after the maintainer
        g.add_edge(a, b);
        inc.on_update(&g, EdgeUpdate::Insert(a, b));
    }
}
