//! Incremental maintenance for bounded simulation.
//!
//! Persistent state: the raw greatest-fixpoint sets `sim(u)` plus, for
//! every pattern edge `e = (u, u')` with bound `b`, a support counter per
//! data node:
//!
//! ```text
//! scnt[e][v] = |{ v' ∈ sim(u') : v has a non-empty path to v' of length ≤ b }|
//! ```
//!
//! `scnt[e][v] > 0` is exactly the edge condition of bounded simulation —
//! including *self support around a cycle* (`v = v'` with a non-empty
//! cycle of length ≤ b), which the ball helpers below handle explicitly
//! because a plain BFS reports the source at distance 0.
//!
//! ## Locality: the affected ball
//!
//! Changing one edge `(x, y)` can only change the ≤`b` reachability of
//! pairs whose shortest path runs through it, i.e. sources `v` with
//! `dist(v, x) ≤ b_max − 1`. Maintenance therefore:
//!
//! 1. computes `A = {x} ∪ ball_rev(x, b_max − 1)` (on the post-update
//!    graph — deletions cannot disconnect a source from `x` itself);
//! 2. recomputes `scnt[e][v]` from scratch for `v ∈ A` only;
//! 3. **deletion** (distances grow, matches only shrink): members whose
//!    counter hit zero cascade through the standard removal loop, each
//!    removal decrementing supporters found by a reverse ball;
//! 4. **insertion** (distances shrink, matches only grow): optimistic
//!    expansion admits candidate pairs in `A` supported by members *or
//!    other tentative pairs* (walking upstream through reverse balls),
//!    then a verification fixpoint removes unsupported tentatives. Old
//!    members can never be invalidated by an insertion.
//!
//! Patterns with unbounded (`*`) edges degrade gracefully: the ball radius
//! becomes "everything that can reach x", which is correct but no longer
//! local — the experiments use bounded patterns, as does the paper.

use crate::{IncStats, Maintainer, MatchDelta};
use expfinder_core::bsim::{bounded_fixpoint_cancellable, EvalOptions};
use expfinder_core::fixpoint::EvalScratch;
use expfinder_core::matchrel::MatchRelation;
use expfinder_core::Cancelled;
use expfinder_graph::bfs::{BfsScratch, Direction};
use expfinder_graph::bfs_frontier::FrontierScratch;
use expfinder_graph::{BitSet, CancelToken, DiGraph, EdgeUpdate, GraphView, NodeId};
use expfinder_pattern::{PNodeId, Pattern};

/// Maintains `M(Q,G)` for a bounded-simulation pattern under edge updates.
pub struct IncrementalBoundedSim {
    pattern: Pattern,
    cand0: Vec<BitSet>,
    /// Raw greatest-fixpoint match sets.
    sim: Vec<BitSet>,
    /// Support counters per pattern edge per data node.
    scnt: Vec<Vec<u32>>,
    /// `max_bound - 1`, or `u32::MAX` for patterns with unbounded edges.
    ball_radius: u32,
    data_nodes: usize,
    /// Distance-reporting BFS state for the affected-ball computations
    /// (the frontier BFS answers set questions only).
    scratch: BfsScratch,
    /// Single-source reach state shared by every support computation.
    reach: ReachScratch,
    /// Persistent output buffer of [`IncrementalBoundedSim::affected`].
    affected_buf: Vec<(NodeId, u32)>,
    stats: IncStats,
}

/// Persistent single-source reach scratch: the word-parallel frontier BFS
/// of `expfinder_graph::bfs_frontier` plus reusable seed/reach bitsets,
/// so maintenance steps share one set of traversal buffers across every
/// update instead of allocating fresh queue state per call. The seed set
/// always holds exactly the last source, so switching sources is O(1)
/// (remove + insert), and the frontier scratch resets sparsely between
/// small traversals — per-call cost tracks the reach set, with only the
/// output buffer's clear left at `O(|V|/64)` (callers iterate that
/// buffer anyway, which costs the same).
///
/// `multi_source_within` has exactly the *non-empty path* semantics the
/// support counters need — a node (the seed included) qualifies only via
/// a genuine ≥1-length path, so cycles need no special-casing here.
#[derive(Default)]
struct ReachScratch {
    frontier: FrontierScratch,
    seed: BitSet,
    last_seed: Option<NodeId>,
    reach: BitSet,
}

impl ReachScratch {
    /// The set of nodes connected to `v` by a non-empty path of length
    /// ≤ `depth` in direction `dir` (seen from `v`): with
    /// [`Direction::Forward`] the nodes `v` supports itself *on* — i.e.
    /// reachable from `v`; with [`Direction::Backward`] the nodes that
    /// count `v` as a supporter — i.e. that reach `v`. Borrows the
    /// internal reach buffer until the next call.
    fn reach_of<'a, G: GraphView>(
        &'a mut self,
        g: &G,
        v: NodeId,
        depth: u32,
        dir: Direction,
    ) -> &'a BitSet {
        self.reach_of_cancel(g, v, depth, dir, None)
    }

    /// [`reach_of`](Self::reach_of) polling a [`CancelToken`] inside the
    /// frontier BFS. When the token fires the borrowed reach set is torn;
    /// the construction sweep re-checks the token after every call and
    /// aborts before the torn set is counted.
    fn reach_of_cancel<'a, G: GraphView>(
        &'a mut self,
        g: &G,
        v: NodeId,
        depth: u32,
        dir: Direction,
        cancel: Option<&CancelToken>,
    ) -> &'a BitSet {
        let n = g.node_count();
        if self.seed.capacity() != n {
            self.seed = BitSet::new(n);
            self.reach = BitSet::new(n);
            self.last_seed = None;
        }
        if let Some(prev) = self.last_seed.replace(v) {
            self.seed.remove(prev);
        }
        self.seed.insert(v);
        self.frontier.multi_source_within_cancel(
            g,
            &self.seed,
            depth,
            dir,
            None,
            cancel,
            &mut self.reach,
        );
        &self.reach
    }
}

impl IncrementalBoundedSim {
    /// Evaluate `q` on `g` once (exact raw fixpoint, no early exit) and
    /// build the support counters.
    pub fn new(g: &DiGraph, q: &Pattern) -> IncrementalBoundedSim {
        match IncrementalBoundedSim::new_cancellable(g, q, None) {
            Ok(inc) => inc,
            Err(_) => unreachable!("no cancel token supplied"),
        }
    }

    /// [`new`](Self::new) polling a [`CancelToken`]: construction is the
    /// expensive part of registration (one exact raw fixpoint plus one
    /// support sweep per member per pattern edge), so a deadline-bound
    /// registration can abandon it cleanly — nothing durable has been
    /// mutated when [`Cancelled`] is returned. Maintenance
    /// (`on_update`) stays uncancellable by design: aborting mid-cascade
    /// would leave the persistent counters inconsistent with `sim`, and
    /// update work is ball-local (bounded) anyway.
    pub fn new_cancellable(
        g: &DiGraph,
        q: &Pattern,
        cancel: Option<&CancelToken>,
    ) -> Result<IncrementalBoundedSim, Cancelled> {
        let cand0 = candidate_sets(g, q);
        let mut eval_scratch = EvalScratch::new();
        let (sim, fix_stats) = bounded_fixpoint_cancellable(
            g,
            q,
            cand0.clone(),
            EvalOptions::default(),
            false,
            &mut eval_scratch,
            cancel,
        )?;
        let n = g.node_count();
        let mut reach = ReachScratch::default();
        let mut scnt: Vec<Vec<u32>> = vec![vec![0; n]; q.edge_count()];
        for (ei, e) in q.edges().iter().enumerate() {
            let depth = e.bound.depth();
            // accumulate supporter counts by sweeping each member's
            // reverse reach set once; counters are only ever read for
            // predicate candidates of the edge source, so only those are
            // maintained (a large constant-factor saving on updates)
            let src_cand = &cand0[e.from.index()];
            let members: Vec<NodeId> = sim[e.to.index()].to_vec();
            for vp in members {
                let sweep = reach.reach_of_cancel(g, vp, depth, Direction::Backward, cancel);
                // sweep-boundary cancellation point: a fired token means
                // the borrowed reach set may be torn — drop everything
                if cancel.is_some_and(|t| t.is_cancelled()) {
                    return Err(Cancelled { stats: fix_stats });
                }
                for w in sweep.iter() {
                    if src_cand.contains(w) {
                        scnt[ei][w.index()] += 1;
                    }
                }
            }
        }
        let ball_radius = match q.max_bound() {
            Some(b) => b - 1,
            None => u32::MAX,
        };
        Ok(IncrementalBoundedSim {
            pattern: q.clone(),
            cand0,
            sim,
            scnt,
            ball_radius,
            data_nodes: n,
            scratch: BfsScratch::new(),
            reach,
            affected_buf: Vec::new(),
            stats: IncStats::default(),
        })
    }

    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    fn assert_node(&self, v: NodeId) {
        assert!(
            v.index() < self.data_nodes,
            "update touches node {v} outside the maintained graph (node additions \
             require rebuilding the maintainer)"
        );
    }

    /// The affected sources of a change to edge `(x, _)`, with their
    /// distance to `x` (the source `x` itself appears at distance 0),
    /// collected into the persistent `affected_buf` — callers take the
    /// buffer with [`std::mem::take`] and put it back when done, so
    /// steady-state update streams reuse its capacity.
    fn affected(&mut self, g: &DiGraph, x: NodeId) -> Vec<(NodeId, u32)> {
        let mut out = std::mem::take(&mut self.affected_buf);
        out.clear();
        let ball = self
            .scratch
            .ball(g, x, self.ball_radius, Direction::Backward);
        out.extend(ball.iter());
        debug_assert_eq!(out.first(), Some(&(x, 0)));
        self.stats.affected_nodes += out.len();
        out
    }

    /// Recompute `scnt[e][v]` inside the affected ball. Two sound
    /// restrictions keep this cheap: (a) a pair can only change for edge
    /// `e` if `dist(v, x) ≤ b_e − 1` (a path through the changed edge
    /// needs a prefix to `x` that fits the bound), and (b) counters are
    /// only ever read for predicate candidates of the edge source. The
    /// support count itself is one frontier reach sweep from `v`
    /// intersected with the member set — no per-node queue, no fresh
    /// allocations.
    fn recompute_counters(&mut self, g: &DiGraph, affected: &[(NodeId, u32)]) {
        for ei in 0..self.pattern.edge_count() {
            let e = &self.pattern.edges()[ei];
            let depth = e.bound.depth();
            let radius = depth.saturating_sub(1);
            let (from, to) = (e.from, e.to);
            for &(v, dvx) in affected {
                if dvx > radius || !self.cand0[from.index()].contains(v) {
                    continue;
                }
                let reach = self.reach.reach_of(g, v, depth, Direction::Forward);
                let c = reach.intersection_count(&self.sim[to.index()]) as u32;
                self.scnt[ei][v.index()] = c;
            }
        }
    }

    /// Removal cascade shared by deletion handling and insert verification.
    /// `guard`: when `Some(tentative)`, only pairs in `tentative` may be
    /// removed (insert verification); `None` = unrestricted (deletion).
    fn removal_cascade(
        &mut self,
        g: &DiGraph,
        mut queue: Vec<(PNodeId, NodeId)>,
        guard: Option<&[BitSet]>,
        deltas: &mut Vec<(PNodeId, NodeId)>,
    ) {
        while let Some((u, v)) = queue.pop() {
            deltas.push((u, v));
            // v left sim(u): every supporter w loses one unit on edges → u
            let in_edges: Vec<u32> = self.pattern.in_edge_indices(u).to_vec();
            for ei in in_edges {
                let e = &self.pattern.edges()[ei as usize];
                let depth = e.bound.depth();
                let from = e.from;
                // one reverse reach sweep from v = everyone who counted v
                let supported = self.reach.reach_of(g, v, depth, Direction::Backward);
                let src_cand = &self.cand0[from.index()];
                for w in supported.iter() {
                    if !src_cand.contains(w) {
                        continue;
                    }
                    let c = &mut self.scnt[ei as usize][w.index()];
                    debug_assert!(*c > 0, "support counter underflow");
                    *c -= 1;
                    if *c == 0 && self.sim[from.index()].contains(w) {
                        let allowed = guard.is_none_or(|t| t[from.index()].contains(w));
                        debug_assert!(
                            allowed,
                            "insert verification tried to remove a pre-existing member"
                        );
                        if allowed {
                            self.sim[from.index()].remove(w);
                            queue.push((from, w));
                        }
                    }
                }
            }
        }
    }

    fn on_delete(&mut self, g: &DiGraph, x: NodeId) -> Vec<MatchDelta> {
        let affected = self.affected(g, x);
        self.recompute_counters(g, &affected);

        // members in the affected area whose support vanished
        let mut queue: Vec<(PNodeId, NodeId)> = Vec::new();
        for u in self.pattern.ids() {
            for &(v, _) in &affected {
                if !self.sim[u.index()].contains(v) {
                    continue;
                }
                let violated = self
                    .pattern
                    .out_edge_indices(u)
                    .iter()
                    .any(|&ei| self.scnt[ei as usize][v.index()] == 0);
                if violated {
                    self.sim[u.index()].remove(v);
                    queue.push((u, v));
                }
            }
        }
        let mut removed = Vec::new();
        self.removal_cascade(g, queue, None, &mut removed);
        self.stats.removed += removed.len();
        self.affected_buf = affected;
        removed
            .into_iter()
            .map(|(u, v)| MatchDelta {
                pattern_node: u,
                data_node: v,
                added: false,
            })
            .collect()
    }

    fn on_insert(&mut self, g: &DiGraph, x: NodeId, y: NodeId) -> Vec<MatchDelta> {
        let affected = self.affected(g, x);
        self.recompute_counters(g, &affected);

        // For terminality detection: how far is the closest *candidate* of
        // each pattern node from y? A pair (u, v) can only have gained
        // support through the new edge (x, y) if for some out-edge
        // e = (u, u'):  dist(v, x) + 1 + min_{v' ∈ cand0(u')} dist(y, v')
        // fits within b_e (candidates over-approximate the new members, so
        // this is sound; verification trims the excess).
        let y_ball_depth = self.ball_radius; // b_max − 1
        let mut dmin_y: Vec<u64> = vec![u64::MAX; self.pattern.node_count()];
        {
            let ball = self.scratch.ball(g, y, y_ball_depth, Direction::Forward);
            for (w, d) in ball.iter() {
                for u in self.pattern.ids() {
                    if self.cand0[u.index()].contains(w) {
                        let slot = &mut dmin_y[u.index()];
                        *slot = (*slot).min(d as u64);
                    }
                }
            }
        }

        // ---- optimistic expansion: unconditional upstream closure ----
        //
        // Seeds are candidate pairs in the affected ball for which the new
        // edge could complete a path to some candidate of a required
        // target. From the seeds the closure walks upstream through
        // reverse balls WITHOUT support checks — checking here would fail
        // to bootstrap cyclic mutual support (pairs that only support each
        // other). The verification fixpoint below trims the
        // over-approximation exactly.
        let nq = self.pattern.node_count();
        let mut tentative: Vec<BitSet> = (0..nq).map(|_| BitSet::new(self.data_nodes)).collect();
        let mut worklist: Vec<(PNodeId, NodeId)> = Vec::new();
        for u in self.pattern.ids() {
            for &(v, dvx) in &affected {
                if !self.cand0[u.index()].contains(v) || self.sim[u.index()].contains(v) {
                    continue;
                }
                let reachable_via_new_edge = self.pattern.out_edges(u).any(|e| {
                    let need = (dvx as u64)
                        .saturating_add(1)
                        .saturating_add(dmin_y[e.to.index()]);
                    need <= e.bound.depth() as u64
                });
                if reachable_via_new_edge {
                    worklist.push((u, v));
                }
            }
        }
        while let Some((u, v)) = worklist.pop() {
            if tentative[u.index()].contains(v) || self.sim[u.index()].contains(v) {
                continue;
            }
            self.stats.tentative_pairs += 1;
            tentative[u.index()].insert(v);
            // upstream propagation through reverse reach sweeps
            let in_edges: Vec<u32> = self.pattern.in_edge_indices(u).to_vec();
            for ei in in_edges {
                let e = &self.pattern.edges()[ei as usize];
                let from = e.from;
                let ups = self
                    .reach
                    .reach_of(g, v, e.bound.depth(), Direction::Backward);
                for p in ups.iter() {
                    if self.cand0[from.index()].contains(p)
                        && !self.sim[from.index()].contains(p)
                        && !tentative[from.index()].contains(p)
                    {
                        worklist.push((from, p));
                    }
                }
            }
        }

        // ---- finalize: admit tentatives, bump supporter counters ----
        let mut added: Vec<(PNodeId, NodeId)> = Vec::new();
        for u in self.pattern.ids() {
            for v in tentative[u.index()].iter() {
                self.sim[u.index()].insert(v);
                added.push((u, v));
            }
        }
        for &(u, v) in &added {
            let in_edges: Vec<u32> = self.pattern.in_edge_indices(u).to_vec();
            for ei in in_edges {
                let e = &self.pattern.edges()[ei as usize];
                let src_cand = &self.cand0[e.from.index()];
                let supported = self
                    .reach
                    .reach_of(g, v, e.bound.depth(), Direction::Backward);
                for w in supported.iter() {
                    if src_cand.contains(w) {
                        self.scnt[ei as usize][w.index()] += 1;
                    }
                }
            }
        }

        // ---- verification: remove unsupported tentatives ----
        let mut queue: Vec<(PNodeId, NodeId)> = Vec::new();
        for &(u, v) in &added {
            let violated = self
                .pattern
                .out_edge_indices(u)
                .iter()
                .any(|&ei| self.scnt[ei as usize][v.index()] == 0);
            if violated {
                self.sim[u.index()].remove(v);
                queue.push((u, v));
            }
        }
        let mut removed = Vec::new();
        self.removal_cascade(g, queue, Some(&tentative), &mut removed);
        self.affected_buf = affected;

        let removed_set: std::collections::HashSet<(u32, u32)> =
            removed.iter().map(|&(u, v)| (u.0, v.0)).collect();
        let deltas: Vec<MatchDelta> = added
            .into_iter()
            .filter(|&(u, v)| !removed_set.contains(&(u.0, v.0)))
            .map(|(u, v)| MatchDelta {
                pattern_node: u,
                data_node: v,
                added: true,
            })
            .collect();
        self.stats.added += deltas.len();
        deltas
    }
}

impl Maintainer for IncrementalBoundedSim {
    fn on_update(&mut self, g: &DiGraph, update: EdgeUpdate) -> Vec<MatchDelta> {
        let (x, y) = update.endpoints();
        self.assert_node(x);
        self.assert_node(y);
        match update {
            EdgeUpdate::Insert(..) => {
                debug_assert!(g.has_edge(x, y), "insert must be applied before on_update");
                self.on_insert(g, x, y)
            }
            EdgeUpdate::Delete(..) => {
                debug_assert!(!g.has_edge(x, y), "delete must be applied before on_update");
                self.on_delete(g, x)
            }
        }
    }

    fn current(&self) -> MatchRelation {
        MatchRelation::from_sets(self.sim.clone(), self.data_nodes)
    }

    fn stats(&self) -> IncStats {
        self.stats
    }
}

fn candidate_sets(g: &DiGraph, q: &Pattern) -> Vec<BitSet> {
    let n = g.node_count();
    q.nodes()
        .iter()
        .map(|pn| {
            let compiled = pn.predicate.compile(g);
            let mut set = BitSet::new(n);
            for v in g.ids() {
                if compiled.eval(g.vertex(v)) {
                    set.insert(v);
                }
            }
            set
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_batch;
    use expfinder_core::bounded_simulation;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_graph::generate::{erdos_renyi, random_updates, NodeSpec};
    use expfinder_pattern::fixtures::fig1_pattern;
    use expfinder_pattern::generate::{random_pattern, PatternConfig, PatternShape};
    use expfinder_pattern::{Bound, PatternBuilder, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_recompute(g: &DiGraph, inc: &IncrementalBoundedSim) {
        let fresh = bounded_simulation(g, inc.pattern()).unwrap();
        assert_eq!(inc.current(), fresh, "incremental diverged from recompute");
    }

    #[test]
    fn paper_example3_incremental() {
        // Example 3: inserting e1 = (Fred, Dan) yields ΔM = {(SD, Fred)},
        // found "by only accessing M(Q,G) and e1" — no recompute.
        let mut f = collaboration_fig1();
        let q = fig1_pattern();
        let mut inc = IncrementalBoundedSim::new(&f.graph, &q);
        f.graph.add_edge(f.e1.0, f.e1.1);
        let delta = inc.on_update(&f.graph, EdgeUpdate::Insert(f.e1.0, f.e1.1));
        let sd = q.node_id("sd").unwrap();
        assert_eq!(
            delta,
            vec![MatchDelta {
                pattern_node: sd,
                data_node: f.fred,
                added: true
            }]
        );
        check_against_recompute(&f.graph, &inc);
    }

    #[test]
    fn paper_example3_reverse_deletion() {
        // delete e1 again: (SD, Fred) disappears
        let mut f = collaboration_fig1();
        f.graph.add_edge(f.e1.0, f.e1.1);
        let q = fig1_pattern();
        let mut inc = IncrementalBoundedSim::new(&f.graph, &q);
        f.graph.remove_edge(f.e1.0, f.e1.1);
        let delta = inc.on_update(&f.graph, EdgeUpdate::Delete(f.e1.0, f.e1.1));
        let sd = q.node_id("sd").unwrap();
        assert_eq!(
            delta,
            vec![MatchDelta {
                pattern_node: sd,
                data_node: f.fred,
                added: false
            }]
        );
        check_against_recompute(&f.graph, &inc);
    }

    #[test]
    fn deletion_cascades_through_bounds() {
        // chain A →(1) m →(1) B with pattern a →(≤2) b:
        // deleting m→B leaves A unable to reach any B within 2.
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let m = g.add_node("M", []);
        let b = g.add_node("B", []);
        g.add_edge(a, m);
        g.add_edge(m, b);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::hops(2))
            .build()
            .unwrap();
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        assert_eq!(inc.current().total_pairs(), 2);
        g.remove_edge(m, b);
        inc.on_update(&g, EdgeUpdate::Delete(m, b));
        check_against_recompute(&g, &inc);
        assert!(inc.current().is_empty());
    }

    #[test]
    fn insertion_shortens_distance_into_bound() {
        // A and B exist, far apart; inserting a middle edge brings dist to 2
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let m1 = g.add_node("M", []);
        let b = g.add_node("B", []);
        g.add_edge(a, m1);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::hops(2))
            .build()
            .unwrap();
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        assert!(inc.current().is_empty());
        g.add_edge(m1, b);
        inc.on_update(&g, EdgeUpdate::Insert(m1, b));
        check_against_recompute(&g, &inc);
        assert_eq!(inc.current().total_pairs(), 2);
    }

    #[test]
    fn self_support_via_cycle_maintained() {
        // pattern a →(≤2) a2, both label A; single node with no loop fails;
        // adding edges 0→1→0 gives node 0 a 2-cycle to itself (and node 1).
        let mut g = DiGraph::new();
        let n0 = g.add_node("A", []);
        let n1 = g.add_node("A", []);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("a2", Predicate::label("A"))
            .edge("a", "a2", Bound::hops(2))
            .build()
            .unwrap();
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        assert!(inc.current().is_empty());
        g.add_edge(n0, n1);
        inc.on_update(&g, EdgeUpdate::Insert(n0, n1));
        check_against_recompute(&g, &inc);
        g.add_edge(n1, n0);
        inc.on_update(&g, EdgeUpdate::Insert(n1, n0));
        check_against_recompute(&g, &inc);
        assert_eq!(inc.current().total_pairs(), 4);
        // now break the cycle again
        g.remove_edge(n1, n0);
        inc.on_update(&g, EdgeUpdate::Delete(n1, n0));
        check_against_recompute(&g, &inc);
    }

    #[test]
    fn cyclic_pattern_mutual_support_incremental() {
        let mut g = DiGraph::new();
        let a = g.add_node("A", []);
        let b = g.add_node("B", []);
        g.add_edge(a, b);
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::hops(2))
            .edge("b", "a", Bound::hops(2))
            .build()
            .unwrap();
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        assert!(inc.current().is_empty());
        g.add_edge(b, a);
        inc.on_update(&g, EdgeUpdate::Insert(b, a));
        check_against_recompute(&g, &inc);
        assert_eq!(inc.current().total_pairs(), 2);
    }

    #[test]
    fn cancelled_construction_aborts_cleanly() {
        let f = collaboration_fig1();
        let q = fig1_pattern();
        let token = CancelToken::new();
        token.cancel();
        let err = IncrementalBoundedSim::new_cancellable(&f.graph, &q, Some(&token));
        assert!(err.is_err(), "pre-cancelled token aborts construction");
        // an un-deadlined build afterwards is unaffected
        let inc = IncrementalBoundedSim::new(&f.graph, &q);
        check_against_recompute(&f.graph, &inc);
    }

    #[test]
    fn differential_random_updates_bounded() {
        let mut rng = StdRng::seed_from_u64(99);
        let spec = NodeSpec::uniform(3, 4);
        for trial in 0..10 {
            let mut g = erdos_renyi(&mut rng, 30, 90, &spec);
            let mut cfg = PatternConfig::new(PatternShape::Dag, 4, spec.labels.clone());
            cfg.bound_range = (1, 3);
            cfg.extra_edges = 1;
            let q = random_pattern(&mut rng, &cfg);
            let mut inc = IncrementalBoundedSim::new(&g, &q);
            let updates = random_updates(&mut rng, &g, 30, 0.5);
            for (i, &up) in updates.iter().enumerate() {
                assert!(g.apply(up));
                inc.on_update(&g, up);
                if i % 6 == 5 {
                    check_against_recompute(&g, &inc);
                }
            }
            check_against_recompute(&g, &inc);
            let _ = trial;
        }
    }

    #[test]
    fn differential_cyclic_patterns() {
        let mut rng = StdRng::seed_from_u64(123);
        let spec = NodeSpec::uniform(2, 3);
        for trial in 0..8 {
            let mut g = erdos_renyi(&mut rng, 20, 70, &spec);
            let cfg = PatternConfig::new(PatternShape::Cycle, 3, spec.labels.clone());
            let q = random_pattern(&mut rng, &cfg);
            let mut inc = IncrementalBoundedSim::new(&g, &q);
            let updates = random_updates(&mut rng, &g, 24, 0.5);
            for &up in &updates {
                assert!(g.apply(up));
                inc.on_update(&g, up);
                check_against_recompute(&g, &inc);
            }
            let _ = trial;
        }
    }

    #[test]
    fn batch_maintenance_matches_recompute() {
        let mut rng = StdRng::seed_from_u64(55);
        let spec = NodeSpec::uniform(4, 5);
        let mut g = erdos_renyi(&mut rng, 50, 200, &spec);
        let cfg = PatternConfig::new(PatternShape::Tree, 4, spec.labels.clone());
        let q = random_pattern(&mut rng, &cfg);
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        let updates = random_updates(&mut rng, &g, 50, 0.4);
        apply_batch(&mut g, &mut inc, &updates);
        check_against_recompute(&g, &inc);
        assert!(inc.stats().affected_nodes > 0);
    }

    #[test]
    fn unbounded_pattern_still_exact() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..8)
            .map(|i| g.add_node(if i % 2 == 0 { "A" } else { "B" }, []))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let q = PatternBuilder::new()
            .node("a", Predicate::label("A"))
            .node("b", Predicate::label("B"))
            .edge("a", "b", Bound::Unbounded)
            .build()
            .unwrap();
        let mut inc = IncrementalBoundedSim::new(&g, &q);
        let updates = random_updates(&mut rng, &g, 15, 0.5);
        for &up in &updates {
            assert!(g.apply(up));
            inc.on_update(&g, up);
            check_against_recompute(&g, &inc);
        }
    }
}
