//! Incremental maintenance of `M(Q,G)` under edge updates.
//!
//! Paper §II "Incremental Computation Module": given `Q`, `G`, cached
//! `M(Q,G)` and updates `ΔG`, compute `M(Q, G ⊕ ΔG)` by identifying the
//! *changes* ΔM without recomputing from scratch — "when ΔG is small, as
//! commonly found in practice, it is far more efficient". The module
//! implements the incremental evaluation strategy of \[Fan et al., SIGMOD
//! 2011\] for both semantics:
//!
//! * [`IncrementalSim`] — plain graph simulation. Exploits monotonicity:
//!   an edge **insertion can only add** matches (handled by optimistic
//!   upstream expansion followed by a verification fixpoint, which is what
//!   makes cyclic mutual support correct), and an edge **deletion can only
//!   remove** matches (handled by an exact counter cascade).
//! * [`IncrementalBoundedSim`] — bounded simulation. The same
//!   monotonicity holds (insertions shorten distances, deletions lengthen
//!   them); maintenance localizes work to the *affected ball*
//!   `ball_rev(x, b_max − 1) ∪ {x}` around a changed edge `(x, y)` and
//!   keeps per-pattern-edge support counters
//!   `scnt[e][v] = |{v' ∈ sim(u') : 1 ≤ dist(v, v') ≤ b_e}|`.
//!
//! Both maintainers persist the **raw** greatest-fixpoint sets (not the
//! all-or-nothing collapsed relation), so a query that currently fails is
//! still maintained cheaply and springs back to life the moment an
//! insertion revives the dead pattern node.
//!
//! Exactness is enforced by differential tests: after every random update
//! sequence the maintained relation must equal a from-scratch recompute.

pub mod inc_bsim;
pub mod inc_sim;

pub use inc_bsim::IncrementalBoundedSim;
pub use inc_sim::IncrementalSim;

use expfinder_graph::{EdgeUpdate, NodeId};
use expfinder_pattern::PNodeId;

/// Work counters for one maintenance call — the experiment harness reports
/// these to show *why* incremental wins (affected area ≪ |G|).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Pairs added to the match sets.
    pub added: usize,
    /// Pairs removed from the match sets.
    pub removed: usize,
    /// Nodes in the affected area that were re-examined.
    pub affected_nodes: usize,
    /// Candidate pairs examined during optimistic expansion.
    pub tentative_pairs: usize,
}

impl IncStats {
    pub fn merge(&mut self, other: IncStats) {
        self.added += other.added;
        self.removed += other.removed;
        self.affected_nodes += other.affected_nodes;
        self.tentative_pairs += other.tentative_pairs;
    }
}

/// A single change to the match relation (the paper's ΔM element).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MatchDelta {
    pub pattern_node: PNodeId,
    pub data_node: NodeId,
    /// True = pair appeared, false = pair disappeared.
    pub added: bool,
}

/// Shared trait of the two maintainers, so the engine and experiment
/// harness can drive either uniformly.
pub trait Maintainer {
    /// Bring the maintained relation in line after `update` has already
    /// been applied to `g`. Returns the ΔM this update caused.
    fn on_update(&mut self, g: &expfinder_graph::DiGraph, update: EdgeUpdate) -> Vec<MatchDelta>;

    /// The maintained relation, collapsed to paper semantics.
    fn current(&self) -> expfinder_core::MatchRelation;

    /// Work counters accumulated since construction.
    fn stats(&self) -> IncStats;
}

/// Apply a batch of updates to `g`, maintaining `m` along the way.
/// Returns the combined ΔM (per-update deltas concatenated; a pair that
/// flips twice appears twice, faithfully recording the history).
pub fn apply_batch<M: Maintainer>(
    g: &mut expfinder_graph::DiGraph,
    m: &mut M,
    updates: &[EdgeUpdate],
) -> Vec<MatchDelta> {
    let mut all = Vec::new();
    for &up in updates {
        if g.apply(up) {
            all.extend(m.on_update(g, up));
        }
    }
    all
}
