//! Integration tests for the serving layer, over real TCP sockets.
//!
//! The centerpiece mirrors PR 1's concurrency oracle at the HTTP level:
//! M client threads race queries against a writer posting `/updates`,
//! and every response must carry matches consistent with a fresh
//! single-threaded evaluation of the graph at the `graph_version` the
//! response reports. The rest covers the endpoint surface end-to-end,
//! malformed-request robustness (4xx, never a worker panic) and the
//! graceful drain.

use expfinder_core::bounded_simulation;
use expfinder_engine::ExpFinder;
use expfinder_graph::generate::{collaboration, random_updates, CollabConfig};
use expfinder_graph::json::Value;
use expfinder_graph::{DiGraph, EdgeUpdate};
use expfinder_pattern::Pattern;
use expfinder_server::client::{query_body, query_body_deadline, Client};
use expfinder_server::{ClientError, Server, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const FIG1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
    node sd where label = \"SD\" and experience >= 2; \
    node ba where label = \"BA\" and experience >= 3; \
    node st where label = \"ST\" and experience >= 2; \
    edge sa -> sd within 2; edge sa -> ba within 3; \
    edge sd -> st within 2; edge ba -> st within 1;";

fn serve(graphs: Vec<(&str, DiGraph)>, config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(ExpFinder::default());
    for (name, g) in graphs {
        engine.add_graph(name, g).unwrap();
    }
    Server::bind(engine, "127.0.0.1:0", config).unwrap().spawn()
}

fn fig1_server() -> ServerHandle {
    serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig::default(),
    )
}

/// The wire's `matches` object for a relation: node name → sorted ids.
fn relation_as_wire(
    pattern: &Pattern,
    m: &expfinder_core::MatchRelation,
) -> BTreeMap<String, Vec<i64>> {
    pattern
        .ids()
        .map(|u| {
            (
                pattern.node(u).name.clone(),
                m.matches_vec(u).into_iter().map(|v| v.0 as i64).collect(),
            )
        })
        .collect()
}

fn wire_matches(v: &Value) -> BTreeMap<String, Vec<i64>> {
    v.field("matches")
        .unwrap()
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, ids)| {
            (
                k.clone(),
                ids.as_array()
                    .unwrap()
                    .iter()
                    .map(|i| i.as_i64().unwrap())
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn end_to_end_over_tcp() {
    let handle = fig1_server();
    let mut client = Client::new(handle.addr());

    let health = client.health().unwrap();
    assert_eq!(health.field("status").unwrap().as_str().unwrap(), "ok");
    assert_eq!(health.field("graphs").unwrap().as_i64().unwrap(), 1);

    // upload a second graph and see it in the catalog
    let mut g2 = DiGraph::new();
    let a = g2.add_node("SA", [("experience", expfinder_graph::AttrValue::Int(9))]);
    let b = g2.add_node("SD", []);
    g2.add_edge(a, b);
    let added = client.add_graph("tiny", &g2).unwrap();
    assert_eq!(added.field("nodes").unwrap().as_i64().unwrap(), 2);
    let catalog = client.graphs().unwrap();
    let rows = catalog.field("graphs").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].field("name").unwrap().as_str().unwrap(), "fig1");
    assert_eq!(rows[1].field("name").unwrap().as_str().unwrap(), "tiny");

    // duplicate upload → 409 through the shared mapping
    match client.add_graph("tiny", &g2) {
        Err(ClientError::Status { status: 409, .. }) => {}
        other => panic!("expected 409, got {other:?}"),
    }

    // register, query (registered route), ranked experts
    let reg = client.register("fig1", "team", FIG1_DSL).unwrap();
    assert_eq!(reg.field("pairs").unwrap().as_i64().unwrap(), 7);
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, Some(2), "auto", true))
        .unwrap();
    assert_eq!(resp.field("pairs").unwrap().as_i64().unwrap(), 7);
    assert_eq!(resp.field("route").unwrap().as_str().unwrap(), "registered");
    let experts = resp.field("experts").unwrap().as_array().unwrap();
    assert_eq!(experts.len(), 2);
    assert_eq!(
        experts[0].field("name").unwrap().as_str().unwrap(),
        "Bob",
        "paper Example 2: Bob outranks Walt"
    );
    assert!(resp.field("timings").unwrap().field("total_ms").is_ok());

    // batch with a broken middle slot
    let batch = client
        .batch(
            "fig1",
            vec![
                query_body(FIG1_DSL, Some(1), "auto", false),
                query_body("node oops", None, "auto", false),
                query_body("node sa* where label = \"SA\";", None, "direct", false),
            ],
        )
        .unwrap();
    let results = batch.field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0]
            .field("ok")
            .unwrap()
            .field("pairs")
            .unwrap()
            .as_i64()
            .unwrap(),
        7
    );
    let err = results[1].field("error").unwrap();
    assert_eq!(err.field("status").unwrap().as_i64().unwrap(), 400);
    assert_eq!(
        results[2]
            .field("ok")
            .unwrap()
            .field("pairs")
            .unwrap()
            .as_i64()
            .unwrap(),
        2
    );

    // updates: paper Example 3 (Fred → Dan), with the ΔM report
    let f = expfinder_graph::fixtures::collaboration_fig1();
    let report = client
        .updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
        .unwrap();
    assert_eq!(report.field("applied").unwrap().as_i64().unwrap(), 1);
    let team = report
        .field("registered_delta")
        .unwrap()
        .field("team")
        .unwrap();
    assert_eq!(team.field("before_pairs").unwrap().as_i64().unwrap(), 7);
    assert_eq!(team.field("after_pairs").unwrap().as_i64().unwrap(), 8);
    assert_eq!(team.field("delta").unwrap().as_i64().unwrap(), 1);

    // unknown graph / unknown route statuses
    match client.query("ghost", &query_body(FIG1_DSL, None, "auto", false)) {
        Err(ClientError::Status { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    // metrics saw all of it
    let metrics = client.metrics().unwrap();
    let reqs = metrics.field("requests").unwrap();
    assert!(
        reqs.field("query")
            .unwrap()
            .field("count")
            .unwrap()
            .as_i64()
            .unwrap()
            >= 2
    );
    assert!(
        reqs.field("batch")
            .unwrap()
            .field("count")
            .unwrap()
            .as_i64()
            .unwrap()
            >= 1
    );
    assert!(
        reqs.field("updates")
            .unwrap()
            .field("count")
            .unwrap()
            .as_i64()
            .unwrap()
            >= 1
    );
    let graphs = metrics.field("graphs").unwrap().as_array().unwrap();
    assert!(graphs
        .iter()
        .any(|g| g.field("name").unwrap().as_str().unwrap() == "fig1"
            && g.field("version").unwrap().as_i64().unwrap() >= 1));

    let served = handle.shutdown();
    assert!(served >= 10, "served {served}");
}

/// The HTTP-level concurrency oracle (PR 1 approach, now over sockets):
/// every response a racing client observes must equal a fresh
/// single-threaded evaluation at the version the response reports.
#[test]
fn concurrent_clients_consistent_with_writer() {
    const READERS: usize = 4;
    const REQUESTS: usize = 30;
    const UPDATES: usize = 40;

    let base = collaboration(
        &mut StdRng::seed_from_u64(99),
        &CollabConfig {
            teams: 20,
            team_size: 6,
            ..CollabConfig::default()
        },
    );
    let pattern = expfinder_pattern::parser::parse(FIG1_DSL).unwrap();
    let updates = random_updates(&mut StdRng::seed_from_u64(41), &base, UPDATES, 0.5);

    // ground truth for every version the graph will pass through
    let mut expected: HashMap<i64, BTreeMap<String, Vec<i64>>> = HashMap::new();
    {
        let mut g = base.clone();
        expected.insert(
            g.version() as i64,
            relation_as_wire(&pattern, &bounded_simulation(&g, &pattern).unwrap()),
        );
        for &up in &updates {
            if g.apply(up) {
                expected.insert(
                    g.version() as i64,
                    relation_as_wire(&pattern, &bounded_simulation(&g, &pattern).unwrap()),
                );
            }
        }
    }

    let handle = serve(vec![("live", base)], ServerConfig::default());
    let addr = handle.addr();

    std::thread::scope(|s| {
        // writer: one HTTP update at a time
        {
            let updates = &updates;
            s.spawn(move || {
                let mut client = Client::new(addr);
                for &up in updates {
                    client.updates("live", &[up]).unwrap();
                    std::thread::yield_now();
                }
            });
        }
        // readers: every observation checked against the precomputed truth
        for r in 0..READERS {
            let expected = &expected;
            s.spawn(move || {
                let mut client = Client::new(addr);
                for i in 0..REQUESTS {
                    let resp = client
                        .query("live", &query_body(FIG1_DSL, None, "auto", true))
                        .unwrap();
                    let version = resp.field("graph_version").unwrap().as_i64().unwrap();
                    let truth = expected.get(&version).unwrap_or_else(|| {
                        panic!(
                            "reader {r} request {i}: version {version} was never a \
                             real graph state"
                        )
                    });
                    assert_eq!(
                        &wire_matches(&resp),
                        truth,
                        "reader {r} request {i}: response diverges from a fresh \
                         evaluation at version {version}"
                    );
                }
            });
        }
    });

    // after the race the server agrees with the final ground truth
    let mut client = Client::new(addr);
    let resp = client
        .query("live", &query_body(FIG1_DSL, None, "direct", true))
        .unwrap();
    let version = resp.field("graph_version").unwrap().as_i64().unwrap();
    assert_eq!(&wire_matches(&resp), expected.get(&version).unwrap());
    handle.shutdown();
}

/// Raw socket abuse: every malformed input maps to a 4xx/5xx response
/// (or a clean close), never a worker panic — and the server keeps
/// serving afterwards.
#[test]
fn malformed_requests_answer_4xx_and_server_survives() {
    let handle = fig1_server();
    let addr = handle.addr();

    let raw = |bytes: &[u8]| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(bytes).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    };

    // (routed responses honor Connection: close; framing failures close
    // unconditionally — either way raw() returns promptly)
    // garbage request line
    let resp = raw(b"EHLO hi\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    // unknown route
    let resp = raw(b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    // wrong method on a known route
    let resp = raw(b"DELETE /graphs/fig1/query HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    // body that is not JSON
    let resp = raw(
        b"POST /graphs/fig1/query HTTP/1.1\r\nConnection: close\r\nContent-Length: 9\r\n\r\nnot json!",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("invalid json"), "{resp}");
    // JSON of the wrong shape
    let resp = raw(
        b"POST /graphs/fig1/query HTTP/1.1\r\nConnection: close\r\nContent-Length: 13\r\n\r\n{\"top_k\": 99}",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    // oversized declared body → 413 before any allocation
    let resp = raw(b"POST /graphs/fig1/query HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
    // chunked transfer encoding is not implemented → 501
    let resp =
        raw(b"POST /graphs/fig1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
    // header section over the cap → 431
    let mut big = b"GET /healthz HTTP/1.1\r\nX-Junk: ".to_vec();
    big.extend(std::iter::repeat_n(b'a', 20 * 1024));
    big.extend_from_slice(b"\r\n\r\n");
    let resp = raw(&big);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
    // remote shutdown is disabled by default → 403
    let resp = raw(b"POST /admin/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 403"), "{resp}");

    // after all that abuse, normal service continues
    let mut client = Client::new(addr);
    let health = client.health().unwrap();
    assert_eq!(health.field("status").unwrap().as_str().unwrap(), "ok");
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, Some(1), "auto", false))
        .unwrap();
    assert_eq!(resp.field("pairs").unwrap().as_i64().unwrap(), 7);
    handle.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let handle = fig1_server();
    let mut client = Client::new(handle.addr());
    for _ in 0..5 {
        client.health().unwrap();
    }
    let metrics = client.metrics().unwrap();
    // all six requests (5 health + this metrics) rode one connection
    assert_eq!(
        metrics
            .field("connections")
            .unwrap()
            .field("opened")
            .unwrap()
            .as_i64()
            .unwrap(),
        1
    );
    assert_eq!(
        metrics
            .field("requests")
            .unwrap()
            .field("healthz")
            .unwrap()
            .field("count")
            .unwrap()
            .as_i64()
            .unwrap(),
        5
    );
    handle.shutdown();
}

// ------------------------ subscriptions ------------------------------

/// A throwaway on-disk runtime directory for the durable-backend tests.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("expfinder_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config() -> expfinder_runtime::RuntimeConfig {
    expfinder_runtime::RuntimeConfig {
        shards: 2,
        fsync: expfinder_runtime::wal::FsyncPolicy::Never,
        exec: expfinder_engine::ExecConfig::sequential(),
        ..expfinder_runtime::RuntimeConfig::default()
    }
}

/// Drive one subscription end-to-end against `handle`: register `team`,
/// subscribe, post two update batches, and assert each pushed frame's
/// `report` is byte-identical to the `POST /updates` response body for
/// the same batch. Shared by the Local and Durable backend tests — the
/// push stream is a wire-level contract, not a backend detail.
fn assert_push_matches_poll(handle: &ServerHandle) {
    let f = expfinder_graph::fixtures::collaboration_fig1();
    let mut client = Client::new(handle.addr());
    client.register("fig1", "team", FIG1_DSL).unwrap();

    let mut sub = client.subscribe("fig1", None).unwrap();
    let hello = sub.next_frame().unwrap().unwrap();
    assert_eq!(hello.field("frame").unwrap().as_str().unwrap(), "hello");
    assert_eq!(hello.field("graph").unwrap().as_str().unwrap(), "fig1");
    let queries = hello.field("queries").unwrap().as_array().unwrap();
    assert!(queries.iter().any(|q| q.as_str().unwrap() == "team"));
    assert!(hello.field("graph_version").unwrap().as_i64().unwrap() >= 1);

    // two batches: Example 3's insert, then the matching delete
    for up in [
        EdgeUpdate::Insert(f.e1.0, f.e1.1),
        EdgeUpdate::Delete(f.e1.0, f.e1.1),
    ] {
        let polled = client.updates("fig1", &[up]).unwrap();
        let frame = sub.next_frame().unwrap().unwrap();
        assert_eq!(frame.field("frame").unwrap().as_str().unwrap(), "update");
        assert_eq!(
            frame.field("report").unwrap().to_string_compact(),
            polled.to_string_compact(),
            "pushed frame must be bit-identical to the /updates response"
        );
    }

    // the /metrics gauges saw the live stream
    let metrics = client.metrics().unwrap();
    let subs = metrics.field("subscriptions").unwrap();
    assert_eq!(subs.field("live").unwrap().as_i64().unwrap(), 1);
    assert!(subs.field("frames_pushed").unwrap().as_i64().unwrap() >= 2);
    assert_eq!(
        subs.field("slow_consumer_disconnects")
            .unwrap()
            .as_i64()
            .unwrap(),
        0
    );
}

#[test]
fn subscription_pushes_frames_matching_updates_responses_local() {
    let handle = fig1_server();
    assert_push_matches_poll(&handle);
    handle.shutdown();
}

#[test]
fn subscription_pushes_frames_matching_updates_responses_durable() {
    let dir = tmpdir("push");
    let rt = Arc::new(expfinder_runtime::DurableExpFinder::open(&dir, durable_config()).unwrap());
    rt.add_graph(
        "fig1",
        expfinder_graph::fixtures::collaboration_fig1().graph,
    )
    .unwrap();
    let handle = Server::bind_durable(rt, "127.0.0.1:0", ServerConfig::default())
        .unwrap()
        .spawn();
    assert_push_matches_poll(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscription_filters_and_rejections() {
    // a live subscription pins its worker; leave headroom for the
    // refused subscribe attempts below (the default pool is 2 on small
    // machines: one for the keep-alive client, one for the stream)
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());
    client.register("fig1", "team", FIG1_DSL).unwrap();
    client
        .register("fig1", "solo", "node sa* where label = \"SA\";")
        .unwrap();

    // a filtered stream sees only its query's ΔM
    let mut sub = client.subscribe("fig1", Some(&["team"])).unwrap();
    let hello = sub.next_frame().unwrap().unwrap();
    let names: Vec<&str> = hello
        .field("queries")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|q| q.as_str().unwrap())
        .collect();
    assert_eq!(names, ["team"]);
    let f = expfinder_graph::fixtures::collaboration_fig1();
    client
        .updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
        .unwrap();
    let frame = sub.next_frame().unwrap().unwrap();
    let delta = frame
        .field("report")
        .unwrap()
        .field("registered_delta")
        .unwrap();
    assert!(delta.field("team").is_ok());
    assert!(delta.field("solo").is_err(), "filtered out");

    // refusals: unknown graph and unregistered query name
    match client.subscribe("ghost", None) {
        Err(ClientError::Status { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    match client.subscribe("fig1", Some(&["nope"])) {
        Err(ClientError::Status { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn slow_subscriber_is_evicted_not_waited_on() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            subscriber_queue: 1,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());
    // a huge query name inflates every frame, so the unread stream
    // fills the socket buffers after a bounded number of updates
    let big_name = "q".repeat(32 * 1024);
    client.register("fig1", &big_name, FIG1_DSL).unwrap();

    let mut sub = client.subscribe("fig1", None).unwrap();
    let f = expfinder_graph::fixtures::collaboration_fig1();

    // never read from `sub`: once the socket and the 1-slot queue are
    // both full, the next publish must evict rather than block the
    // update path — every /updates call keeps answering promptly
    let mut evicted = false;
    for i in 0..400 {
        let up = if i % 2 == 0 {
            EdgeUpdate::Insert(f.e1.0, f.e1.1)
        } else {
            EdgeUpdate::Delete(f.e1.0, f.e1.1)
        };
        client.updates("fig1", &[up]).unwrap();
        if i % 20 == 19 {
            let m = client.metrics().unwrap();
            let subs = m.field("subscriptions").unwrap();
            if subs
                .field("slow_consumer_disconnects")
                .unwrap()
                .as_i64()
                .unwrap()
                >= 1
            {
                evicted = true;
                break;
            }
        }
    }
    assert!(evicted, "slow consumer was never evicted");

    // now drain the stream: buffered frames, then the terminal error
    sub.set_timeout(Duration::from_secs(10));
    let mut saw_error = false;
    loop {
        match sub.next_frame().unwrap() {
            None => break,
            Some(frame) => {
                if frame.field("frame").unwrap().as_str().unwrap() == "error" {
                    assert_eq!(
                        frame.field("reason").unwrap().as_str().unwrap(),
                        "slow-consumer"
                    );
                    saw_error = true;
                }
            }
        }
    }
    assert!(saw_error, "stream must end with the slow-consumer frame");

    let m = client.metrics().unwrap();
    let subs = m.field("subscriptions").unwrap();
    assert_eq!(subs.field("live").unwrap().as_i64().unwrap(), 0);
    handle.shutdown();
}

#[test]
fn drain_terminates_subscriptions_with_bye() {
    let handle = fig1_server();
    let mut client = Client::new(handle.addr());
    client.register("fig1", "team", FIG1_DSL).unwrap();
    let mut sub = client.subscribe("fig1", None).unwrap();
    let hello = sub.next_frame().unwrap().unwrap();
    assert_eq!(hello.field("frame").unwrap().as_str().unwrap(), "hello");

    // drain while the stream is live: the pinned worker notices within
    // one poll interval and says goodbye before closing
    let drainer = std::thread::spawn(move || handle.shutdown());
    let bye = sub.next_frame().unwrap().unwrap();
    assert_eq!(bye.field("frame").unwrap().as_str().unwrap(), "bye");
    assert_eq!(bye.field("reason").unwrap().as_str().unwrap(), "drain");
    assert_eq!(sub.next_frame().unwrap(), None, "clean chunked terminator");
    drainer.join().unwrap();
}

#[test]
fn durable_registration_survives_restart_and_feeds_new_subscriptions() {
    let dir = tmpdir("restart");
    let f = expfinder_graph::fixtures::collaboration_fig1();

    // first server lifetime: add the graph, register over the wire
    {
        let rt =
            Arc::new(expfinder_runtime::DurableExpFinder::open(&dir, durable_config()).unwrap());
        rt.add_graph("fig1", f.graph.clone()).unwrap();
        let handle = Server::bind_durable(rt, "127.0.0.1:0", ServerConfig::default())
            .unwrap()
            .spawn();
        let mut client = Client::new(handle.addr());
        client.register("fig1", "team", FIG1_DSL).unwrap();
        client
            .updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
            .unwrap();
        handle.shutdown();
    }

    // second lifetime: recovery replays the WAL's register record, so a
    // client can subscribe immediately — no re-registration step
    let rt = Arc::new(expfinder_runtime::DurableExpFinder::open(&dir, durable_config()).unwrap());
    let handle = Server::bind_durable(rt, "127.0.0.1:0", ServerConfig::default())
        .unwrap()
        .spawn();
    let mut client = Client::new(handle.addr());
    let mut sub = client.subscribe("fig1", Some(&["team"])).unwrap();
    let hello = sub.next_frame().unwrap().unwrap();
    let names: Vec<&str> = hello
        .field("queries")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|q| q.as_str().unwrap())
        .collect();
    assert_eq!(names, ["team"], "registration must survive the restart");

    // and the replayed maintainer still produces ΔM: deleting the edge
    // inserted before the restart shrinks the maintained result
    let polled = client
        .updates("fig1", &[EdgeUpdate::Delete(f.e1.0, f.e1.1)])
        .unwrap();
    let frame = sub.next_frame().unwrap().unwrap();
    assert_eq!(
        frame.field("report").unwrap().to_string_compact(),
        polled.to_string_compact()
    );
    let team = frame
        .field("report")
        .unwrap()
        .field("registered_delta")
        .unwrap()
        .field("team")
        .unwrap();
    assert_eq!(team.field("delta").unwrap().as_i64().unwrap(), -1);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_and_closes_the_port() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let mut client = Client::new(addr);
    for _ in 0..3 {
        client
            .query("fig1", &query_body(FIG1_DSL, None, "auto", false))
            .unwrap();
    }
    // remote drain: the response itself closes the connection
    let resp = client.shutdown_server().unwrap();
    assert!(resp.field("draining").unwrap().as_bool().unwrap());

    // all threads join; served count covers the traffic above
    let served = handle.join();
    assert!(served >= 4, "served {served}");

    // the port no longer accepts (give the OS a moment to tear down)
    let refused = (0..50).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
    });
    assert!(refused, "listener should be closed after drain");
}

/// Overload answers immediately with `503 + Retry-After` instead of
/// blocking the acceptor, and a replay-safe client request rides the
/// backoff through the overload window and succeeds once it clears.
#[test]
fn overload_sheds_503_and_client_backoff_recovers() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            workers: 1,
            // short idle budget so the pinned/queued connections cycle
            // out and the overload window clears within the test
            keep_alive: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // pin the only worker: one served keep-alive connection held open
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    pin.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // read until the head is complete — a single read may return a
    // partial TCP segment when the host is loaded
    let mut got = Vec::new();
    let mut buf = [0u8; 512];
    while !got.windows(4).any(|w| w == b"\r\n\r\n") {
        match pin.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
        }
    }
    assert!(
        String::from_utf8_lossy(&got).contains("200 OK"),
        "{}",
        String::from_utf8_lossy(&got)
    );

    // fill the bounded queue (workers * 2 = 2) with idle connections
    let _idle1 = TcpStream::connect(addr).unwrap();
    let _idle2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the acceptor enqueue them

    // the next connection must be shed, not queued: raw 503 with
    // Retry-After and Connection: close, answered while the worker is
    // still busy
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    shed.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut head = Vec::new();
    let mut byte = [0u8; 256];
    loop {
        match shed.read(&mut byte) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&byte[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    assert!(head.contains("503 Service Unavailable"), "{head}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(head.contains("Connection: close"), "{head}");

    // a replay-safe client request retries past the overload: the shed
    // 503 carries Retry-After, the pinned connections idle out within
    // ~300ms, and the retry lands on a free worker
    drop(pin);
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(5));
    let health = client.health().unwrap();
    assert_eq!(health.field("status").unwrap().as_str().unwrap(), "ok");

    handle.shutdown();
}

// ---------------- deadlines & admission control ----------------------

/// An exhausted deadline answers 408 with partial stats in the error
/// body — while concurrent un-deadlined queries on other workers keep
/// answering 200 throughout. Afterwards the cancellation and deadline
/// counters have moved and the in-flight cost gauge has drained.
#[test]
fn deadline_answers_408_while_other_workers_serve() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                let mut client = Client::new(addr);
                for _ in 0..10 {
                    let resp = client
                        .query("fig1", &query_body(FIG1_DSL, None, "auto", false))
                        .unwrap();
                    assert_eq!(resp.field("pairs").unwrap().as_i64().unwrap(), 7);
                }
            });
        }
        s.spawn(move || {
            let mut client = Client::new(addr);
            for _ in 0..10 {
                let resp = client
                    .request(
                        "POST",
                        "/graphs/fig1/query",
                        Some(&query_body_deadline(FIG1_DSL, None, "auto", false, 0)),
                    )
                    .unwrap();
                assert_eq!(resp.status, 408, "{}", resp.body.to_string_compact());
                let err = resp.body.field("error").unwrap();
                assert_eq!(err.field("status").unwrap().as_i64().unwrap(), 408);
                let timings = err.field("timings").unwrap();
                assert!(timings.field("partial").unwrap().as_bool().unwrap());
                // the partial stats object is present with all four counters
                let eval = timings.field("eval").unwrap();
                for key in [
                    "refreshes",
                    "refreshes_skipped",
                    "bfs_nodes_visited",
                    "removals",
                ] {
                    assert!(eval.field(key).unwrap().as_i64().unwrap() >= 0, "{key}");
                }
            }
        });
    });

    let mut client = Client::new(addr);
    let m = client.metrics().unwrap();
    let cancel = m.field("engine").unwrap().field("cancel").unwrap();
    assert!(cancel.field("checked").unwrap().as_i64().unwrap() >= 10);
    assert!(cancel.field("fired").unwrap().as_i64().unwrap() >= 10);
    let deadline = m.field("server").unwrap().field("deadline").unwrap();
    assert_eq!(deadline.field("enforced").unwrap().as_i64().unwrap(), 10);
    assert_eq!(deadline.field("rejected").unwrap().as_i64().unwrap(), 0);
    // every RAII cost guard dropped: nothing in flight once all answered
    let gauge = m
        .field("server")
        .unwrap()
        .field("cost_in_flight")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(gauge, 0.0);
    handle.shutdown();
}

/// The durable backend maps a fired deadline to the same 408 wire shape,
/// and the very next un-deadlined query on the same connection is
/// answered correctly — cancellation never poisons the shard state.
#[test]
fn deadline_408_on_durable_backend_leaves_state_clean() {
    let dir = tmpdir("deadline");
    let rt = Arc::new(expfinder_runtime::DurableExpFinder::open(&dir, durable_config()).unwrap());
    rt.add_graph(
        "fig1",
        expfinder_graph::fixtures::collaboration_fig1().graph,
    )
    .unwrap();
    let handle = Server::bind_durable(rt, "127.0.0.1:0", ServerConfig::default())
        .unwrap()
        .spawn();
    let mut client = Client::new(handle.addr());

    let resp = client
        .request(
            "POST",
            "/graphs/fig1/query",
            Some(&query_body_deadline(FIG1_DSL, None, "auto", true, 0)),
        )
        .unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body.to_string_compact());
    let err = resp.body.field("error").unwrap();
    assert!(err
        .field("timings")
        .unwrap()
        .field("partial")
        .unwrap()
        .as_bool()
        .unwrap());

    let ok = client
        .query("fig1", &query_body(FIG1_DSL, None, "auto", false))
        .unwrap();
    assert_eq!(ok.field("pairs").unwrap().as_i64().unwrap(), 7);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A batch-level `deadline_ms` caps the whole batch: when the budget is
/// already spent, every slot reports 408 with partial stats — inside
/// the usual 200 envelope, like any other per-slot error.
#[test]
fn batch_deadline_expires_every_slot() {
    let handle = fig1_server();
    let mut client = Client::new(handle.addr());

    let body = Value::Object(BTreeMap::from([
        ("deadline_ms".to_owned(), Value::Int(0)),
        (
            "queries".to_owned(),
            Value::Array(vec![
                query_body(FIG1_DSL, Some(1), "auto", false),
                query_body("node sa* where label = \"SA\";", None, "direct", false),
            ]),
        ),
    ]));
    let resp = client
        .request("POST", "/graphs/fig1/batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body.to_string_compact());
    let results = resp.body.field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 2);
    for slot in results {
        let err = slot.field("error").unwrap();
        assert_eq!(err.field("status").unwrap().as_i64().unwrap(), 408);
        assert!(err
            .field("timings")
            .unwrap()
            .field("partial")
            .unwrap()
            .as_bool()
            .unwrap());
    }

    let m = client.metrics().unwrap();
    let deadline = m.field("server").unwrap().field("deadline").unwrap();
    assert_eq!(deadline.field("enforced").unwrap().as_i64().unwrap(), 2);
    handle.shutdown();
}

/// `default_deadline_ms` applies to requests that do not ask for a
/// budget, and `max_deadline_ms` clamps requests that ask for more than
/// the operator allows.
#[test]
fn server_default_and_cap_deadlines_apply() {
    // server default: a plain query (no deadline_ms) inherits budget 0
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            default_deadline_ms: Some(0),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());
    let resp = client
        .request(
            "POST",
            "/graphs/fig1/query",
            Some(&query_body(FIG1_DSL, None, "auto", false)),
        )
        .unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body.to_string_compact());
    handle.shutdown();

    // cap: a request asking for a minute is clamped down to 0
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            max_deadline_ms: Some(0),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());
    let resp = client
        .request(
            "POST",
            "/graphs/fig1/query",
            Some(&query_body_deadline(FIG1_DSL, None, "auto", false, 60_000)),
        )
        .unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body.to_string_compact());
    handle.shutdown();
}

/// With an admission ceiling configured, a query whose planner estimate
/// exceeds it is rejected up front: 429 with `Retry-After`, nothing is
/// evaluated, and endpoints that bypass admission keep working.
#[test]
fn admission_ceiling_rejects_429_with_retry_after() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            // far below any candidate's cost (≥ size × pattern_edges
            // scaled by fixed discounts), so every query is rejected
            admission_max_cost: Some(1e-6),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());

    let resp = client
        .request(
            "POST",
            "/graphs/fig1/query",
            Some(&query_body(FIG1_DSL, None, "auto", false)),
        )
        .unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body.to_string_compact());
    assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After");
    let err = resp.body.field("error").unwrap();
    assert_eq!(err.field("status").unwrap().as_i64().unwrap(), 429);
    assert!(
        err.field("timings").is_err(),
        "no eval ran, no partial stats"
    );

    // health/metrics bypass admission; the rejection was counted and no
    // cost is stuck in flight
    let m = client.metrics().unwrap();
    let deadline = m.field("server").unwrap().field("deadline").unwrap();
    assert!(deadline.field("rejected").unwrap().as_i64().unwrap() >= 1);
    assert_eq!(deadline.field("enforced").unwrap().as_i64().unwrap(), 0);
    let gauge = m
        .field("server")
        .unwrap()
        .field("cost_in_flight")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(gauge, 0.0);
    handle.shutdown();
}

/// A generous ceiling admits normal traffic unchanged: same results,
/// and the per-route gauge drains back to zero between requests.
#[test]
fn admission_ceiling_admits_within_budget_traffic() {
    let handle = serve(
        vec![(
            "fig1",
            expfinder_graph::fixtures::collaboration_fig1().graph,
        )],
        ServerConfig {
            admission_max_cost: Some(1e12),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(handle.addr());
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, Some(2), "auto", true))
        .unwrap();
    assert_eq!(resp.field("pairs").unwrap().as_i64().unwrap(), 7);
    let m = client.metrics().unwrap();
    assert_eq!(
        m.field("server")
            .unwrap()
            .field("deadline")
            .unwrap()
            .field("rejected")
            .unwrap()
            .as_i64()
            .unwrap(),
        0
    );
    handle.shutdown();
}
