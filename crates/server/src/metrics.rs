//! Lock-free serving metrics, exported as JSON on `GET /metrics`.
//!
//! Everything is plain atomics so the request hot path never takes a
//! lock: per-route request counters and latency histograms (fixed
//! log-spaced microsecond buckets), response counts by status class, an
//! in-flight gauge (RAII guard) and connection open/close counters.
//! Graph versions are read live from the engine at export time.

use crate::backend::Backend;
use expfinder_graph::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds, in microseconds (plus an implicit
/// overflow bucket). Log-spaced to cover sub-ms cache hits through
/// multi-second batch drains.
pub const BUCKET_BOUNDS_US: [u64; 10] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 500_000, 2_000_000,
];

/// The routes metrics are keyed by (one slot per endpoint family).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RouteKey {
    Healthz,
    Metrics,
    GraphsList,
    GraphAdd,
    Query,
    Batch,
    Updates,
    Register,
    Subscribe,
    Shutdown,
    /// Anything that did not resolve to a known route.
    Other,
}

impl RouteKey {
    pub const ALL: [RouteKey; 11] = [
        RouteKey::Healthz,
        RouteKey::Metrics,
        RouteKey::GraphsList,
        RouteKey::GraphAdd,
        RouteKey::Query,
        RouteKey::Batch,
        RouteKey::Updates,
        RouteKey::Register,
        RouteKey::Subscribe,
        RouteKey::Shutdown,
        RouteKey::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RouteKey::Healthz => "healthz",
            RouteKey::Metrics => "metrics",
            RouteKey::GraphsList => "graphs_list",
            RouteKey::GraphAdd => "graph_add",
            RouteKey::Query => "query",
            RouteKey::Batch => "batch",
            RouteKey::Updates => "updates",
            RouteKey::Register => "register",
            RouteKey::Subscribe => "subscribe",
            RouteKey::Shutdown => "shutdown",
            RouteKey::Other => "other",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }
}

/// Counters for one route.
#[derive(Default)]
struct RouteStats {
    count: AtomicU64,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    /// Admitted planner cost currently being evaluated on this route, in
    /// milli-work-units (fixed-point so the gauge stays a lock-free
    /// atomic). Fed by [`Metrics::admit_cost`], drained by its guard.
    cost_in_flight_milli: AtomicU64,
}

impl RouteStats {
    fn record(&self, status: u16, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
        let slot = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
    }

    fn to_json(&self) -> Value {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<Value> = BUCKET_BOUNDS_US
            .iter()
            .map(|b| Value::Int(*b as i64))
            .zip(self.buckets.iter())
            .map(|(le, c)| {
                obj(vec![
                    ("le_us", le),
                    ("count", Value::Int(c.load(Ordering::Relaxed) as i64)),
                ])
            })
            .chain(std::iter::once(obj(vec![
                ("le_us", Value::Str("inf".into())),
                (
                    "count",
                    Value::Int(self.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed) as i64),
                ),
            ])))
            .collect();
        obj(vec![
            ("count", Value::Int(count as i64)),
            (
                "cost_in_flight",
                Value::Float(self.cost_in_flight_milli.load(Ordering::Relaxed) as f64 / 1e3),
            ),
            (
                "status",
                obj(vec![
                    (
                        "2xx",
                        Value::Int(self.status_2xx.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "4xx",
                        Value::Int(self.status_4xx.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "5xx",
                        Value::Int(self.status_5xx.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "latency_us",
                obj(vec![
                    (
                        "sum",
                        Value::Int(self.latency_sum_us.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "max",
                        Value::Int(self.latency_max_us.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "mean",
                        Value::Float(if count == 0 {
                            0.0
                        } else {
                            self.latency_sum_us.load(Ordering::Relaxed) as f64 / count as f64
                        }),
                    ),
                    ("buckets", Value::Array(buckets)),
                ]),
            ),
        ])
    }
}

/// The server-wide metrics registry.
pub struct Metrics {
    started: Instant,
    routes: [RouteStats; RouteKey::ALL.len()],
    in_flight: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    /// Connections refused with `503 + Retry-After` because the worker
    /// queue was full (load shedding, not an error).
    shed: AtomicU64,
    /// Queries answered 408 because their deadline fired mid-evaluation.
    deadline_enforced: AtomicU64,
    /// Queries answered 429 at admission: the planner's cost estimate
    /// did not fit the deadline budget or the in-flight load threshold.
    deadline_rejected: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            routes: Default::default(),
            in_flight: AtomicU64::new(0),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_enforced: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
        }
    }
}

/// RAII in-flight marker: increments on creation, decrements on drop, so
/// the gauge is correct on every exit path (including panics unwinding
/// out of a handler).
pub struct InFlight<'a>(&'a Metrics);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII admitted-cost marker from [`Metrics::admit_cost`]: holds the
/// admitted work units on the route's in-flight cost gauge until the
/// query finishes (or unwinds).
pub struct CostInFlight<'a> {
    metrics: &'a Metrics,
    route: RouteKey,
    milli: u64,
}

impl Drop for CostInFlight<'_> {
    fn drop(&mut self) {
        self.metrics.routes[self.route.index()]
            .cost_in_flight_milli
            .fetch_sub(self.milli, Ordering::Relaxed);
    }
}

impl Metrics {
    /// Mark a request in flight for the lifetime of the returned guard.
    pub fn begin_request(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlight(self)
    }

    /// Record one completed request.
    pub fn record(&self, route: RouteKey, status: u16, elapsed: Duration) {
        self.routes[route.index()].record(status, elapsed);
    }

    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection answered with the load-shedding 503.
    pub fn connection_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one query answered 408 (deadline fired mid-evaluation).
    pub fn note_deadline_enforced(&self) {
        self.deadline_enforced.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one query rejected 429 at admission.
    pub fn note_deadline_rejected(&self) {
        self.deadline_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Admit `cost` work units onto `route`'s in-flight gauge for the
    /// lifetime of the returned guard (RAII, so the gauge is correct on
    /// every exit path). Non-finite and negative costs clamp to zero —
    /// they carry no admission weight.
    pub fn admit_cost(&self, route: RouteKey, cost: f64) -> CostInFlight<'_> {
        let milli = if cost.is_finite() && cost > 0.0 {
            (cost * 1e3).min(u64::MAX as f64 / 2.0) as u64
        } else {
            0
        };
        let slot = &self.routes[route.index()];
        slot.cost_in_flight_milli
            .fetch_add(milli, Ordering::Relaxed);
        CostInFlight {
            metrics: self,
            route,
            milli,
        }
    }

    /// Admitted planner cost currently in flight on `route`, in work
    /// units — the load input of the 429 admission check.
    pub fn cost_in_flight(&self, route: RouteKey) -> f64 {
        self.routes[route.index()]
            .cost_in_flight_milli
            .load(Ordering::Relaxed) as f64
            / 1e3
    }

    /// Admitted planner cost in flight across every route.
    pub fn total_cost_in_flight(&self) -> f64 {
        self.routes
            .iter()
            .map(|r| r.cost_in_flight_milli.load(Ordering::Relaxed))
            .sum::<u64>() as f64
            / 1e3
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests recorded across all routes.
    pub fn total_requests(&self) -> u64 {
        self.routes
            .iter()
            .map(|r| r.count.load(Ordering::Relaxed))
            .sum()
    }

    /// The `GET /metrics` document. Graph versions, cache counters and
    /// cumulative evaluation-work counters come live from the backend so
    /// the exporter doubles as a serving-path profiler: cache hit rates
    /// and `EvalStats` wins (refresh skipping, BFS-node reduction) are
    /// visible without attaching a profiler. The durability block
    /// (`engine.wal`) and the per-shard gauges (`engine.shard`) are
    /// always present so dashboards see one schema — an in-memory
    /// backend exports zeroes and an empty shard list — as are the
    /// fault-injection counters (`engine.faults`, zero unless a chaos
    /// harness armed the injector) and the load-shedding counter
    /// (`server.shed`). `subscriptions`
    /// is the push-streaming gauge block built by the server's
    /// subscription hub (live subscribers, frames pushed, slow-consumer
    /// disconnects).
    pub fn to_json(&self, backend: &Backend, subscriptions: Value) -> Value {
        let requests = RouteKey::ALL
            .iter()
            .map(|k| (k.name(), self.routes[k.index()].to_json()))
            .collect::<Vec<_>>();
        let cache = backend.cache_stats();
        let eval = backend.eval_totals();
        let index = backend.index_totals();
        let planner = backend.planner_totals();
        let cancel = backend.cancel_totals();
        let wal = backend.wal_totals();
        let faults = backend.fault_totals();
        let shards: Vec<Value> = backend
            .shard_stats()
            .into_iter()
            .map(|s| {
                obj(vec![
                    ("shard", Value::Int(s.shard as i64)),
                    ("depth", Value::Int(s.depth as i64)),
                    ("graphs", Value::Int(s.graphs as i64)),
                    ("commands", Value::Int(s.commands as i64)),
                ])
            })
            .collect();
        let engine_doc = obj(vec![
            (
                "cache",
                obj(vec![
                    ("hits", Value::Int(cache.hits as i64)),
                    ("misses", Value::Int(cache.misses as i64)),
                    ("evictions", Value::Int(cache.evictions as i64)),
                    ("entries", Value::Int(backend.cache_len() as i64)),
                ]),
            ),
            (
                "eval",
                obj(vec![
                    ("refreshes", Value::Int(eval.refreshes as i64)),
                    (
                        "refreshes_skipped",
                        Value::Int(eval.refreshes_skipped as i64),
                    ),
                    (
                        "bfs_nodes_visited",
                        Value::Int(eval.bfs_nodes_visited as i64),
                    ),
                    ("removals", Value::Int(eval.removals as i64)),
                ]),
            ),
            (
                "index",
                obj(vec![
                    ("hits", Value::Int(index.hits as i64)),
                    ("misses", Value::Int(index.misses as i64)),
                    ("entries", Value::Int(index.entries as i64)),
                    ("bytes", Value::Int(index.bytes as i64)),
                ]),
            ),
            (
                "planner",
                obj(vec![
                    ("decisions", Value::Int(planner.decisions as i64)),
                    ("overrides", Value::Int(planner.overrides as i64)),
                    ("mispredicts", Value::Int(planner.mispredicts as i64)),
                ]),
            ),
            (
                "cancel",
                obj(vec![
                    ("checked", Value::Int(cancel.checked as i64)),
                    ("fired", Value::Int(cancel.fired as i64)),
                ]),
            ),
            (
                "wal",
                obj(vec![
                    ("appends", Value::Int(wal.appends as i64)),
                    ("fsyncs", Value::Int(wal.fsyncs as i64)),
                    ("bytes", Value::Int(wal.bytes as i64)),
                    ("replayed_frames", Value::Int(wal.replayed_frames as i64)),
                    ("replayed_updates", Value::Int(wal.replayed_updates as i64)),
                    ("truncated_tails", Value::Int(wal.truncated_tails as i64)),
                ]),
            ),
            (
                "faults",
                obj(vec![
                    ("injected", Value::Int(faults.injected as i64)),
                    ("writes", Value::Int(faults.writes as i64)),
                    ("fsyncs", Value::Int(faults.fsyncs as i64)),
                    ("renames", Value::Int(faults.renames as i64)),
                ]),
            ),
            ("shard", Value::Array(shards)),
        ]);
        let graphs: Vec<Value> = backend
            .graph_infos()
            .into_iter()
            .map(|info| {
                obj(vec![
                    ("name", Value::Str(info.name)),
                    ("version", Value::Int(info.version as i64)),
                    ("nodes", Value::Int(info.nodes as i64)),
                    ("edges", Value::Int(info.edges as i64)),
                ])
            })
            .collect();
        obj(vec![
            (
                "uptime_ms",
                Value::Int(self.started.elapsed().as_millis() as i64),
            ),
            ("in_flight", Value::Int(self.in_flight() as i64)),
            (
                "connections",
                obj(vec![
                    (
                        "opened",
                        Value::Int(self.connections_opened.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "closed",
                        Value::Int(self.connections_closed.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "server",
                obj(vec![
                    ("shed", Value::Int(self.shed.load(Ordering::Relaxed) as i64)),
                    (
                        "deadline",
                        obj(vec![
                            (
                                "enforced",
                                Value::Int(self.deadline_enforced.load(Ordering::Relaxed) as i64),
                            ),
                            (
                                "rejected",
                                Value::Int(self.deadline_rejected.load(Ordering::Relaxed) as i64),
                            ),
                        ]),
                    ),
                    ("cost_in_flight", Value::Float(self.total_cost_in_flight())),
                ]),
            ),
            ("requests", obj(requests)),
            ("subscriptions", subscriptions),
            ("engine", engine_doc),
            ("graphs", Value::Array(graphs)),
        ])
    }
}

/// Build a JSON object from `(key, value)` pairs.
pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_engine::ExpFinder;
    use std::sync::Arc;

    fn local() -> Backend {
        Backend::Local(Arc::new(ExpFinder::default()))
    }

    fn subs() -> Value {
        crate::subscribe::SubscriptionHub::new(8).to_json()
    }

    #[test]
    fn histogram_buckets_and_classes() {
        let m = Metrics::default();
        m.record(RouteKey::Query, 200, Duration::from_micros(100));
        m.record(RouteKey::Query, 200, Duration::from_micros(900));
        m.record(RouteKey::Query, 404, Duration::from_micros(6_000));
        m.record(RouteKey::Query, 500, Duration::from_secs(10));
        assert_eq!(m.total_requests(), 4);

        let doc = m.to_json(&local(), subs());
        let q = doc.field("requests").unwrap().field("query").unwrap();
        assert_eq!(q.field("count").unwrap().as_i64().unwrap(), 4);
        let status = q.field("status").unwrap();
        assert_eq!(status.field("2xx").unwrap().as_i64().unwrap(), 2);
        assert_eq!(status.field("4xx").unwrap().as_i64().unwrap(), 1);
        assert_eq!(status.field("5xx").unwrap().as_i64().unwrap(), 1);
        let lat = q.field("latency_us").unwrap();
        assert_eq!(lat.field("max").unwrap().as_i64().unwrap(), 10_000_000);
        let buckets = lat.field("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_US.len() + 1);
        // 100µs → ≤250 bucket; 900µs → ≤1000; 6ms → ≤10ms; 10s → overflow
        assert_eq!(buckets[0].field("count").unwrap().as_i64().unwrap(), 1);
        assert_eq!(buckets[2].field("count").unwrap().as_i64().unwrap(), 1);
        assert_eq!(buckets[5].field("count").unwrap().as_i64().unwrap(), 1);
        let inf = buckets.last().unwrap();
        assert_eq!(inf.field("le_us").unwrap().as_str().unwrap(), "inf");
        assert_eq!(inf.field("count").unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn in_flight_gauge_is_raii() {
        let m = Metrics::default();
        assert_eq!(m.in_flight(), 0);
        {
            let _a = m.begin_request();
            let _b = m.begin_request();
            assert_eq!(m.in_flight(), 2);
        }
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn wal_and_shard_blocks_always_present() {
        // one metrics schema for both deployment shapes: an in-memory
        // backend exports the durability block as zeroes / empty
        let doc = Metrics::default().to_json(&local(), subs());
        let wal = doc.field("engine").unwrap().field("wal").unwrap();
        for key in [
            "appends",
            "fsyncs",
            "bytes",
            "replayed_frames",
            "replayed_updates",
            "truncated_tails",
        ] {
            assert_eq!(wal.field(key).unwrap().as_i64().unwrap(), 0, "{key}");
        }
        let shards = doc.field("engine").unwrap().field("shard").unwrap();
        assert!(shards.as_array().unwrap().is_empty());
        let faults = doc.field("engine").unwrap().field("faults").unwrap();
        for key in ["injected", "writes", "fsyncs", "renames"] {
            assert_eq!(faults.field(key).unwrap().as_i64().unwrap(), 0, "{key}");
        }
        let server = doc.field("server").unwrap();
        assert_eq!(server.field("shed").unwrap().as_i64().unwrap(), 0);
    }

    #[test]
    fn shed_counter_exported() {
        let m = Metrics::default();
        m.connection_shed();
        m.connection_shed();
        let doc = m.to_json(&local(), subs());
        let server = doc.field("server").unwrap();
        assert_eq!(server.field("shed").unwrap().as_i64().unwrap(), 2);
    }

    #[test]
    fn graph_versions_exported_live() {
        let backend = local();
        backend
            .add_graph("g", expfinder_graph::fixtures::collaboration_fig1().graph)
            .unwrap();
        let m = Metrics::default();
        let doc = m.to_json(&backend, subs());
        let graphs = doc.field("graphs").unwrap().as_array().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].field("name").unwrap().as_str().unwrap(), "g");
        assert_eq!(graphs[0].field("nodes").unwrap().as_i64().unwrap(), 9);
    }

    #[test]
    fn engine_cache_and_eval_counters_exported() {
        let engine = Arc::new(ExpFinder::default());
        let h = engine
            .add_graph("g", expfinder_graph::fixtures::collaboration_fig1().graph)
            .unwrap();
        let q = expfinder_pattern::fixtures::fig1_pattern();
        // miss + direct eval, then a hit
        engine.evaluate(&h, &q).unwrap();
        engine.evaluate(&h, &q).unwrap();
        let doc = Metrics::default().to_json(&Backend::Local(engine), subs());
        let cache = doc.field("engine").unwrap().field("cache").unwrap();
        assert_eq!(cache.field("hits").unwrap().as_i64().unwrap(), 1);
        assert_eq!(cache.field("misses").unwrap().as_i64().unwrap(), 1);
        assert_eq!(cache.field("entries").unwrap().as_i64().unwrap(), 1);
        let eval = doc.field("engine").unwrap().field("eval").unwrap();
        assert!(eval.field("refreshes").unwrap().as_i64().unwrap() >= 4);
        assert!(eval.field("bfs_nodes_visited").unwrap().as_i64().unwrap() > 0);
        assert!(eval.field("refreshes_skipped").unwrap().as_i64().unwrap() >= 0);
        assert!(eval.field("removals").unwrap().as_i64().unwrap() >= 0);
        // the reach-index block is always present (zeroes on a graph too
        // small for the snapshot fast path)
        let index = doc.field("engine").unwrap().field("index").unwrap();
        for key in ["hits", "misses", "entries", "bytes"] {
            assert!(index.field(key).unwrap().as_i64().unwrap() >= 0, "{key}");
        }
        // planner counters: one decision per evaluate call above
        let planner = doc.field("engine").unwrap().field("planner").unwrap();
        assert_eq!(planner.field("decisions").unwrap().as_i64().unwrap(), 2);
        assert_eq!(planner.field("overrides").unwrap().as_i64().unwrap(), 0);
        assert_eq!(planner.field("mispredicts").unwrap().as_i64().unwrap(), 0);
    }
}
