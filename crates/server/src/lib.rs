//! `expfinder-server` — the HTTP serving layer of the ExpFinder system.
//!
//! The paper frames ExpFinder as an *interactive system*: analysts issue
//! expert-finding pattern queries against a live collaboration graph.
//! This crate puts the shareable, handle-based engine of
//! `expfinder-engine` on the network: a hand-rolled multi-threaded
//! HTTP/1.1 server (`std::net` only — the build is offline, so no
//! tokio/hyper; see [`http`]) speaking a JSON wire protocol built on the
//! same hand-rolled `expfinder_graph::json` module the on-disk formats
//! use (see [`wire`]).
//!
//! * [`backend`] — the engine behind the routes: an in-memory
//!   `Arc<ExpFinder>` or a durable `Arc<DurableExpFinder>` shard
//!   runtime (WAL-logged updates, snapshot reads, replay on restart).
//! * [`server`] — bounded worker pool sharing one [`Backend`],
//!   keep-alive connections, graceful drain, and the `/subscribe` push
//!   loop (one chunked ΔM frame per committed update batch, fed by the
//!   backend's update hook through a per-subscriber bounded queue).
//! * [`routes`] — the endpoint table; `ExpFinderError`s map to statuses
//!   through [`expfinder_engine::ExpFinderError::http_status`].
//! * [`metrics`] — lock-free request counters, per-route latency
//!   histograms, in-flight gauge; exported on `GET /metrics`.
//! * [`client`] — a tiny blocking client (tests, shell, CI smoke, load
//!   generator).
//! * [`shell_ext`] — wraps the engine shell with `serve`/`connect`
//!   commands.
//!
//! ```
//! use expfinder_engine::ExpFinder;
//! use expfinder_server::{client::Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(ExpFinder::default());
//! engine
//!     .add_graph("fig1", expfinder_graph::fixtures::collaboration_fig1().graph)
//!     .unwrap();
//! let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let handle = server.spawn();
//!
//! let mut client = Client::new(handle.addr());
//! let health = client.health().unwrap();
//! assert_eq!(health.field("status").unwrap().as_str().unwrap(), "ok");
//! let resp = client
//!     .query(
//!         "fig1",
//!         &expfinder_server::client::query_body(
//!             "node sa* where label = \"SA\";",
//!             None,
//!             "auto",
//!             false,
//!         ),
//!     )
//!     .unwrap();
//! assert_eq!(resp.field("pairs").unwrap().as_i64().unwrap(), 2);
//!
//! handle.shutdown();
//! ```

pub mod backend;
pub mod client;
pub mod http;
pub mod metrics;
pub mod routes;
pub mod server;
pub mod shell_ext;
pub(crate) mod subscribe;
pub mod wire;

pub use backend::Backend;
pub use client::{Client, ClientError, Subscription};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shell_ext::ServedShell;
