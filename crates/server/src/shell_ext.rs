//! Serving commands for the interactive shell.
//!
//! The engine crate's [`Shell`] cannot know about HTTP (the server crate
//! depends on the engine, not the other way around), so this wrapper
//! intercepts the serving commands and delegates everything else:
//!
//! * `serve [addr]` — boot an HTTP server **on the shell's own engine**
//!   (default `127.0.0.1:0`); graphs generated or loaded in the shell are
//!   immediately queryable over the wire.
//! * `serve durable <dir> [addr]` — boot a server on a **durable shard
//!   runtime** rooted at `<dir>` instead: graphs already in the
//!   directory are recovered (snapshot + WAL replay) and updates
//!   accepted over the wire are WAL-logged. Separate from the shell's
//!   in-memory engine by design — durability is a property of the data
//!   dir, not of the shell session.
//! * `serve stop` — graceful drain; prints how many requests were served.
//! * `connect <addr>` — attach the blocking client to a remote server.
//! * `remote <graph> <pattern-dsl>` — run one query over the connection.
//! * `disconnect` — drop the connection.
//!
//! `examples/expfinder_shell.rs` wires this wrapper (not the bare
//! `Shell`) to stdin.

use crate::backend::Backend;
use crate::client::{query_body, Client};
use crate::server::{Server, ServerConfig, ServerHandle};
use expfinder_engine::shell::{Shell, ShellResult};
use expfinder_engine::EngineConfig;
use expfinder_runtime::{DurableExpFinder, RuntimeConfig};
use std::sync::Arc;

const SERVE_HELP: &str = "\
  serve [addr]                   serve this shell's engine over HTTP
  serve durable <dir> [addr]     serve a durable (WAL-backed) data dir
  serve stop                     drain and stop the server
  connect <addr>                 attach to a remote expfinder-server
  remote <graph> <pattern-dsl>   run a query over the connection
  disconnect                     drop the connection";

/// [`Shell`] plus the serving layer.
pub struct ServedShell {
    shell: Shell,
    server: Option<ServerHandle>,
    client: Option<(String, Client)>,
}

impl Default for ServedShell {
    fn default() -> Self {
        ServedShell::new(EngineConfig::default())
    }
}

impl ServedShell {
    pub fn new(config: EngineConfig) -> ServedShell {
        ServedShell {
            shell: Shell::new(config),
            server: None,
            client: None,
        }
    }

    /// The wrapped shell (for preloading graphs, as the examples do).
    pub fn shell(&mut self) -> &mut Shell {
        &mut self.shell
    }

    /// Address of the in-shell server, when one is running.
    pub fn serving_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|h| h.addr())
    }

    /// Execute one command line (serving commands here, the rest in the
    /// wrapped shell).
    pub fn exec(&mut self, line: &str) -> ShellResult {
        let trimmed = line.trim();
        let (cmd, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (trimmed, ""),
        };
        match cmd {
            "serve" => self.cmd_serve(rest),
            "connect" => self.cmd_connect(rest),
            "remote" => self.cmd_remote(rest),
            "disconnect" => {
                if self.client.take().is_some() {
                    Ok("disconnected".to_owned())
                } else {
                    Err("not connected".to_owned())
                }
            }
            "help" => Ok(format!("{}\n{SERVE_HELP}", self.shell.exec(line)?)),
            _ => self.shell.exec(line),
        }
    }

    fn cmd_serve(&mut self, rest: &str) -> ShellResult {
        if rest == "stop" {
            return match self.server.take() {
                Some(handle) => {
                    let served = handle.shutdown();
                    Ok(format!(
                        "server drained and stopped ({served} requests served)"
                    ))
                }
                None => Err("no server running".to_owned()),
            };
        }
        if self.server.is_some() {
            return Err(format!(
                "already serving on {}; `serve stop` first",
                self.serving_addr().expect("server is running")
            ));
        }
        let (backend, addr, recovered) = match rest.strip_prefix("durable") {
            Some(durable_rest) => {
                let mut parts = durable_rest.split_whitespace();
                let dir = parts.next().ok_or("usage: serve durable <dir> [addr]")?;
                let addr = parts.next().unwrap_or("127.0.0.1:0").to_owned();
                let rt = DurableExpFinder::open(dir, RuntimeConfig::default())
                    .map_err(|e| format!("open data dir {dir}: {e}"))?;
                let recovered = rt.graph_names().len();
                (Backend::Durable(Arc::new(rt)), addr, Some(recovered))
            }
            None => {
                let addr = if rest.is_empty() { "127.0.0.1:0" } else { rest };
                (
                    Backend::Local(Arc::clone(self.shell.engine())),
                    addr.to_owned(),
                    None,
                )
            }
        };
        let config = ServerConfig::default();
        let workers = config.workers;
        let server = Server::bind_backend(backend, addr.as_str(), config)
            .map_err(|e| format!("bind {addr}: {e}"))?;
        let handle = server.spawn();
        let out = match recovered {
            Some(n) => format!(
                "serving durable on {} ({workers} workers, {n} graphs recovered)",
                handle.addr()
            ),
            None => format!("serving on {} ({workers} workers)", handle.addr()),
        };
        self.server = Some(handle);
        Ok(out)
    }

    fn cmd_connect(&mut self, rest: &str) -> ShellResult {
        if rest.is_empty() {
            return Err("usage: connect <addr>".to_owned());
        }
        let mut client = Client::for_addr(rest).map_err(|e| e.to_string())?;
        let health = client.health().map_err(|e| e.to_string())?;
        let graphs = client.graphs().map_err(|e| e.to_string())?;
        let names: Vec<String> = graphs
            .field("graphs")
            .and_then(|g| g.as_array())
            .map_err(|e| e.to_string())?
            .iter()
            .filter_map(|g| {
                g.field("name")
                    .and_then(|n| n.as_str())
                    .ok()
                    .map(str::to_owned)
            })
            .collect();
        let n = health
            .field("graphs")
            .and_then(|g| g.as_i64())
            .unwrap_or(names.len() as i64);
        self.client = Some((rest.to_owned(), client));
        Ok(format!(
            "connected to {rest}: {n} graphs{}{}",
            if names.is_empty() { "" } else { ": " },
            names.join(", ")
        ))
    }

    fn cmd_remote(&mut self, rest: &str) -> ShellResult {
        let (graph, dsl) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: remote <graph> <pattern-dsl>")?;
        let (addr, client) = self
            .client
            .as_mut()
            .ok_or("not connected; `connect <addr>` first")?;
        let resp = client
            .query(graph, &query_body(dsl.trim(), Some(3), "auto", false))
            .map_err(|e| e.to_string())?;
        let pairs = resp.field("pairs").and_then(|p| p.as_i64()).unwrap_or(0);
        let route = resp
            .field("route")
            .and_then(|r| r.as_str())
            .unwrap_or("?")
            .to_owned();
        let version = resp
            .field("graph_version")
            .and_then(|v| v.as_i64())
            .unwrap_or(-1);
        Ok(format!(
            "{addr}/{graph}: {pairs} pairs via {route} (v{version})"
        ))
    }
}

impl Drop for ServedShell {
    fn drop(&mut self) {
        // ServerHandle's own Drop drains and joins; taking it here just
        // makes the order explicit
        drop(self.server.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;

    fn fig1_shell() -> ServedShell {
        let mut sh = ServedShell::default();
        sh.shell()
            .engine()
            .add_graph("fig1", collaboration_fig1().graph)
            .unwrap();
        sh.exec("use fig1").unwrap();
        sh
    }

    #[test]
    fn serve_connect_remote_roundtrip() {
        let mut sh = fig1_shell();
        let out = sh.exec("serve").unwrap();
        assert!(out.starts_with("serving on 127.0.0.1:"), "{out}");
        let addr = sh.serving_addr().unwrap().to_string();

        let out = sh.exec(&format!("connect {addr}")).unwrap();
        assert!(out.contains("1 graphs"), "{out}");
        assert!(out.contains("fig1"), "{out}");

        let out = sh
            .exec("remote fig1 node sa* where label = \"SA\";")
            .unwrap();
        assert!(out.contains("2 pairs"), "{out}");
        assert!(out.contains("via direct_simulation"), "{out}");

        // local commands still flow through to the wrapped shell
        let out = sh.exec("graphs").unwrap();
        assert_eq!(out, "fig1");

        let out = sh.exec("disconnect").unwrap();
        assert_eq!(out, "disconnected");
        let out = sh.exec("serve stop").unwrap();
        assert!(out.contains("server drained and stopped"), "{out}");
        assert!(out.contains("requests served"), "{out}");
    }

    #[test]
    fn serve_durable_recovers_graphs_across_serve_sessions() {
        let dir =
            std::env::temp_dir().join(format!("expfinder_shell_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();

        let mut sh = ServedShell::default();
        let out = sh.exec(&format!("serve durable {dir_arg}")).unwrap();
        assert!(out.contains("serving durable"), "{out}");
        assert!(out.contains("0 graphs recovered"), "{out}");

        // upload over the wire; the durable backend snapshots + WALs it
        let mut client = Client::new(sh.serving_addr().unwrap());
        client
            .add_graph("persisted", &collaboration_fig1().graph)
            .unwrap();
        sh.exec("serve stop").unwrap();

        // a second durable session on the same dir recovers the graph
        let out = sh.exec(&format!("serve durable {dir_arg}")).unwrap();
        assert!(out.contains("1 graphs recovered"), "{out}");
        let addr = sh.serving_addr().unwrap().to_string();
        let out = sh.exec(&format!("connect {addr}")).unwrap();
        assert!(out.contains("persisted"), "{out}");
        let out = sh
            .exec("remote persisted node sa* where label = \"SA\";")
            .unwrap();
        assert!(out.contains("2 pairs"), "{out}");
        sh.exec("serve stop").unwrap();

        assert!(sh.exec("serve durable").is_err(), "dir is required");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_errors_are_friendly() {
        let mut sh = fig1_shell();
        assert!(sh.exec("serve stop").is_err(), "nothing to stop");
        assert!(sh.exec("disconnect").is_err(), "nothing to disconnect");
        assert!(sh
            .exec("remote fig1 node a;")
            .unwrap_err()
            .contains("not connected"));
        assert!(sh.exec("connect").is_err());
        assert!(sh.exec("connect not-an-addr").is_err());

        sh.exec("serve").unwrap();
        let err = sh.exec("serve").unwrap_err();
        assert!(err.contains("already serving"), "{err}");
        sh.exec("serve stop").unwrap();

        // help includes the serving section
        let help = sh.exec("help").unwrap();
        assert!(help.contains("serve [addr]"), "{help}");
        assert!(help.contains("experts"), "{help}");
    }
}
