//! The JSON wire protocol: request decoding and response encoding.
//!
//! All bodies are JSON through `expfinder_graph::json` — the same
//! hand-rolled module the on-disk formats use, so the server adds no new
//! serialization dependency. Decoders return [`WireError`] with the HTTP
//! status the failure maps to; [`ExpFinderError`]s pass through
//! [`ExpFinderError::http_status`], the engine's single error→status
//! mapping.
//!
//! Request shapes (see `docs/PROTOCOL.md` for the full spec):
//!
//! * query:    `{"pattern": "<dsl>", "top_k": 5, "route": "auto",
//!   "include_matches": false}`
//! * batch:    `{"queries": [<query body>, ...]}`
//! * updates:  `{"updates": [{"op": "insert", "from": 0, "to": 3}, ...]}`
//! * register: `{"name": "team", "pattern": "<dsl>"}`
//! * subscribe: `{}` or `{"queries": ["team", ...]}` (see the
//!   subscription-frame encoders below for the pushed stream)
//! * add graph: `{"name": "g", "graph": {"nodes": [...], "edges": [...]}}`

use crate::metrics::obj;
use expfinder_core::EvalStats;
use expfinder_engine::{
    EvalRoute, ExpFinderError, GraphInfo, PlanDecision, QueryResponse, Route, UpdateReport,
};
use expfinder_graph::io::GraphDoc;
use expfinder_graph::json::Value;
use expfinder_graph::{DiGraph, EdgeUpdate, NodeId};
use expfinder_pattern::Pattern;

/// A decode failure plus the status it answers with. A deadline abort
/// (408) additionally carries the partial [`EvalStats`] of the work the
/// engine completed before the budget ran out, encoded under the error
/// object's `"timings"` key.
#[derive(Debug)]
pub struct WireError {
    pub status: u16,
    pub message: String,
    /// Partial evaluation work, present only on deadline aborts.
    pub partial: Option<EvalStats>,
}

impl WireError {
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError {
            status: 400,
            message: message.into(),
            partial: None,
        }
    }

    pub fn new(status: u16, message: impl Into<String>) -> WireError {
        WireError {
            status,
            message: message.into(),
            partial: None,
        }
    }

    /// The bare error object for this failure — [`error_fields`] plus,
    /// on a deadline abort, `"timings": {"partial": true, "eval": {...}}`
    /// so a 408 still reports how far evaluation got.
    pub fn fields(&self) -> Value {
        let mut fields = vec![
            ("status", Value::Int(self.status as i64)),
            ("message", Value::Str(self.message.clone())),
        ];
        if let Some(stats) = &self.partial {
            fields.push((
                "timings",
                obj(vec![
                    ("partial", Value::Bool(true)),
                    ("eval", encode_eval_stats(stats)),
                ]),
            ));
        }
        obj(fields)
    }

    /// The full error body: `{"error": <fields>}`.
    pub fn body(&self) -> Value {
        obj(vec![("error", self.fields())])
    }
}

impl From<ExpFinderError> for WireError {
    fn from(e: ExpFinderError) -> Self {
        WireError {
            status: e.http_status(),
            partial: e.partial_stats(),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// The bare error object: `{"status":…,"message":…}` (batch slots embed
/// it under their own `"error"` key).
pub fn error_fields(status: u16, message: &str) -> Value {
    obj(vec![
        ("status", Value::Int(status as i64)),
        ("message", Value::Str(message.to_owned())),
    ])
}

/// Encode an [`EvalStats`] block (shared by the 408 partial-work body
/// and nothing else on the wire — `/metrics` builds its own).
fn encode_eval_stats(stats: &EvalStats) -> Value {
    obj(vec![
        ("refreshes", Value::Int(stats.refreshes as i64)),
        (
            "refreshes_skipped",
            Value::Int(stats.refreshes_skipped as i64),
        ),
        (
            "bfs_nodes_visited",
            Value::Int(stats.bfs_nodes_visited as i64),
        ),
        ("removals", Value::Int(stats.removals as i64)),
    ])
}

/// The error body every endpoint uses: `{"error":{"status":…,"message":…}}`.
pub fn error_body(status: u16, message: &str) -> Value {
    obj(vec![("error", error_fields(status, message))])
}

/// Parse a request body as JSON (400 on syntax errors).
pub fn parse_body(body: &[u8]) -> Result<Value, WireError> {
    let text =
        std::str::from_utf8(body).map_err(|_| WireError::bad_request("body is not valid utf-8"))?;
    expfinder_graph::json::parse(text)
        .map_err(|e| WireError::bad_request(format!("invalid json: {e}")))
}

/// One decoded query request.
#[derive(Debug)]
pub struct QueryRequest {
    pub pattern: Pattern,
    pub dsl: String,
    pub top_k: Option<usize>,
    pub route: Route,
    pub include_matches: bool,
    /// End-to-end evaluation budget in milliseconds; the server clamps
    /// it to its configured cap and enforces it cooperatively (408 when
    /// it fires mid-evaluation).
    pub deadline_ms: Option<u64>,
}

/// Decode `{"pattern": dsl, "top_k"?, "route"?, "include_matches"?,
/// "deadline_ms"?}`. The DSL is parsed here so the route handler has the
/// [`Pattern`] (its node names key the serialized match relation).
pub fn decode_query(v: &Value) -> Result<QueryRequest, WireError> {
    let o = v
        .as_object()
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    for key in o.keys() {
        if !matches!(
            key.as_str(),
            "pattern" | "top_k" | "route" | "include_matches" | "deadline_ms"
        ) {
            return Err(WireError::bad_request(format!("unknown field {key:?}")));
        }
    }
    let dsl = v
        .field("pattern")
        .and_then(|p| p.as_str())
        .map_err(|e| WireError::bad_request(e.to_string()))?
        .to_owned();
    let pattern = expfinder_pattern::parser::parse(&dsl)
        .map_err(|e| WireError::from(ExpFinderError::from(e)))?;
    let top_k = match o.get("top_k") {
        None | Some(Value::Null) => None,
        Some(k) => Some(
            k.as_usize()
                .map_err(|e| WireError::bad_request(e.to_string()))?,
        ),
    };
    let route = match o.get("route") {
        None | Some(Value::Null) => Route::Auto,
        Some(r) => decode_route(
            r.as_str()
                .map_err(|e| WireError::bad_request(e.to_string()))?,
        )?,
    };
    let include_matches = match o.get("include_matches") {
        None | Some(Value::Null) => false,
        Some(b) => b
            .as_bool()
            .map_err(|e| WireError::bad_request(e.to_string()))?,
    };
    let deadline_ms = decode_deadline_ms(o.get("deadline_ms"))?;
    Ok(QueryRequest {
        pattern,
        dsl,
        top_k,
        route,
        include_matches,
        deadline_ms,
    })
}

/// Decode an optional `deadline_ms` field (a non-negative integer; zero
/// is legal and means "already expired" — the query 408s immediately).
fn decode_deadline_ms(v: Option<&Value>) -> Result<Option<u64>, WireError> {
    match v {
        None | Some(Value::Null) => Ok(None),
        Some(d) => Ok(Some(
            d.as_usize()
                .map_err(|e| WireError::bad_request(format!("deadline_ms: {e}")))?
                as u64,
        )),
    }
}

pub fn decode_route(s: &str) -> Result<Route, WireError> {
    match s {
        "auto" => Ok(Route::Auto),
        "compressed" => Ok(Route::Compressed),
        "direct" => Ok(Route::Direct),
        other => Err(WireError::bad_request(format!(
            "unknown route {other:?} (auto|compressed|direct)"
        ))),
    }
}

pub fn eval_route_str(r: EvalRoute) -> &'static str {
    match r {
        EvalRoute::Cache => "cache",
        EvalRoute::Registered => "registered",
        EvalRoute::Compressed => "compressed",
        EvalRoute::DirectSimulation => "direct_simulation",
        EvalRoute::DirectBounded => "direct_bounded",
    }
}

/// A decoded batch request: the optional batch-wide deadline plus one
/// slot per query body.
#[derive(Debug)]
pub struct BatchRequest {
    /// Budget shared by the whole batch; every slot's own `deadline_ms`
    /// is additionally clipped to whatever remains of it.
    pub deadline_ms: Option<u64>,
    pub queries: Vec<Result<QueryRequest, WireError>>,
}

/// Decode `{"queries": [<query body>, ...], "deadline_ms"?}`; per-slot
/// decode errors are returned in-slot so one bad query cannot sink the
/// batch (mirroring `ExpFinder::query_batch`).
pub fn decode_batch(v: &Value) -> Result<BatchRequest, WireError> {
    let o = v
        .as_object()
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    for key in o.keys() {
        if !matches!(key.as_str(), "queries" | "deadline_ms") {
            return Err(WireError::bad_request(format!("unknown field {key:?}")));
        }
    }
    let queries = v
        .field("queries")
        .and_then(|q| q.as_array())
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    Ok(BatchRequest {
        deadline_ms: decode_deadline_ms(o.get("deadline_ms"))?,
        queries: queries.iter().map(decode_query).collect(),
    })
}

/// Decode `{"updates": [{"op","from","to"}, ...]}`.
pub fn decode_updates(v: &Value) -> Result<Vec<EdgeUpdate>, WireError> {
    let items = v
        .field("updates")
        .and_then(|u| u.as_array())
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            // the canonical codec lives in expfinder_graph::io (shared
            // with the runtime's write-ahead log); the wire layer only
            // adds the slot index to the error
            expfinder_graph::io::update_from_json(item)
                .map_err(|e| WireError::bad_request(format!("update {i}: {e}")))
        })
        .collect()
}

/// Encode one [`EdgeUpdate`] (used by the client). Delegates to the
/// canonical codec in `expfinder_graph::io`.
pub fn encode_update(up: EdgeUpdate) -> Value {
    expfinder_graph::io::update_to_json(up)
}

/// Decode `{"name": g, "graph": GraphDoc}`.
pub fn decode_add_graph(v: &Value) -> Result<(String, DiGraph), WireError> {
    let name = v
        .field("name")
        .and_then(|n| n.as_str())
        .map_err(|e| WireError::bad_request(e.to_string()))?
        .to_owned();
    let doc = v
        .field("graph")
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    let graph = GraphDoc::from_json_value(doc)
        .map_err(|e| WireError::bad_request(format!("graph document: {e}")))?
        .into_graph();
    Ok((name, graph))
}

/// Encode a planner cost estimate; `+∞` (a route the planner refused to
/// amortize, e.g. a CSR build on a version's first read) follows the
/// rank convention and goes out as the string `"inf"`.
fn cost_value(cost: f64) -> Value {
    if cost.is_finite() {
        Value::Float(cost)
    } else {
        Value::Str("inf".into())
    }
}

/// Encode the planner's [`PlanDecision`] for `timings.plan`: the chosen
/// and originally-planned routes, whether a caller preference overrode
/// the plan, and every candidate the planner costed (empty for exact
/// routes — cache and registered hits are never planned).
pub fn encode_plan(plan: &PlanDecision) -> Value {
    let candidates: Vec<Value> = plan
        .candidates
        .iter()
        .map(|c| {
            obj(vec![
                ("route", Value::Str(c.route.as_str().to_owned())),
                ("cost", cost_value(c.cost)),
            ])
        })
        .collect();
    obj(vec![
        ("chosen", Value::Str(plan.chosen.as_str().to_owned())),
        ("planned", Value::Str(plan.planned.as_str().to_owned())),
        ("overridden", Value::Bool(plan.overridden)),
        ("candidates", Value::Array(candidates)),
    ])
}

/// Encode a [`QueryResponse`]. The full match relation is included only
/// on request (`include_matches`) — it can dwarf the rest of the
/// response on large graphs. `resolve_name` maps a node id to its `name`
/// attribute for human-readable expert rows.
pub fn encode_query_response(
    resp: &QueryResponse,
    pattern: &Pattern,
    include_matches: bool,
    resolve_name: impl Fn(NodeId) -> Option<String>,
) -> Value {
    let experts: Vec<Value> = resp
        .experts
        .iter()
        .map(|x| {
            let mut fields = vec![
                ("node", Value::Int(x.node.0 as i64)),
                (
                    "rank",
                    if x.rank.is_finite() {
                        Value::Float(x.rank)
                    } else {
                        Value::Str("inf".into())
                    },
                ),
            ];
            if let Some(name) = resolve_name(x.node) {
                fields.push(("name", Value::Str(name)));
            }
            obj(fields)
        })
        .collect();
    let mut fields = vec![
        ("pairs", Value::Int(resp.matches.total_pairs() as i64)),
        ("route", Value::Str(eval_route_str(resp.route).to_owned())),
        ("graph_version", Value::Int(resp.graph_version as i64)),
        ("experts", Value::Array(experts)),
        (
            "timings",
            obj(vec![
                (
                    "evaluate_ms",
                    Value::Float(resp.timings.evaluate.as_secs_f64() * 1e3),
                ),
                (
                    "rank_ms",
                    Value::Float(resp.timings.rank.as_secs_f64() * 1e3),
                ),
                (
                    "total_ms",
                    Value::Float(resp.timings.total.as_secs_f64() * 1e3),
                ),
                ("plan", encode_plan(&resp.plan)),
            ]),
        ),
    ];
    if include_matches {
        let matches: Vec<(&str, Value)> = pattern
            .ids()
            .map(|u| {
                let ids: Vec<Value> = resp
                    .matches
                    .matches_vec(u)
                    .into_iter()
                    .map(|v| Value::Int(v.0 as i64))
                    .collect();
                (pattern.node(u).name.as_str(), Value::Array(ids))
            })
            .collect();
        fields.push(("matches", obj(matches)));
    }
    obj(fields)
}

/// Encode an [`UpdateReport`] (the `POST /updates` response).
pub fn encode_update_report(report: &UpdateReport) -> Value {
    let registered: Vec<(&str, Value)> = report
        .registered
        .iter()
        .map(|d| {
            (
                d.query.as_str(),
                obj(vec![
                    ("before_pairs", Value::Int(d.before_pairs as i64)),
                    ("after_pairs", Value::Int(d.after_pairs as i64)),
                    ("delta", Value::Int(d.delta())),
                ]),
            )
        })
        .collect();
    obj(vec![
        ("applied", Value::Int(report.applied as i64)),
        ("attempted", Value::Int(report.attempted as i64)),
        ("graph_version", Value::Int(report.graph_version as i64)),
        ("registered_delta", obj(registered)),
    ])
}

/// Decode a `POST /graphs/{name}/subscribe` body: `{}` or
/// `{"queries": ["team", ...]}`. Returns the optional filter — `None`
/// means "every registered query". An explicitly empty filter is
/// rejected: it would subscribe to nothing.
pub fn decode_subscribe(v: &Value) -> Result<Option<Vec<String>>, WireError> {
    let o = v
        .as_object()
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    for key in o.keys() {
        if key != "queries" {
            return Err(WireError::bad_request(format!("unknown field {key:?}")));
        }
    }
    match o.get("queries") {
        None | Some(Value::Null) => Ok(None),
        Some(q) => {
            let names = q
                .as_array()
                .map_err(|e| WireError::bad_request(e.to_string()))?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .map_err(|e| WireError::bad_request(e.to_string()))
                })
                .collect::<Result<Vec<String>, WireError>>()?;
            if names.is_empty() {
                return Err(WireError::bad_request(
                    "queries filter must not be empty (omit it to subscribe to all)",
                ));
            }
            Ok(Some(names))
        }
    }
}

// ------------------------- subscription frames -----------------------
//
// Every frame on a subscription stream is one JSON object with a
// `"frame"` discriminator: `hello` (first), `update` (one per committed
// batch), and the terminals `bye` (graceful) / `error` (abnormal).

/// The `hello` frame opening every subscription stream.
pub fn subscription_hello(graph: &str, version: u64, queries: &[String], subscriber: u64) -> Value {
    obj(vec![
        ("frame", Value::Str("hello".into())),
        ("graph", Value::Str(graph.to_owned())),
        ("graph_version", Value::Int(version as i64)),
        (
            "queries",
            Value::Array(queries.iter().map(|q| Value::Str(q.clone())).collect()),
        ),
        ("subscriber", Value::Int(subscriber as i64)),
    ])
}

/// An `update` frame: the exact [`encode_update_report`] document under
/// `"report"` — byte-identical to the `POST /updates` response body for
/// the same batch, so a pushed frame and a polled response never
/// disagree. A filter narrows `registered_delta` to the subscriber's
/// query set; the batch-level fields are untouched.
pub fn subscription_update_frame(report: &UpdateReport, filter: Option<&[String]>) -> Value {
    let doc = match filter {
        None => encode_update_report(report),
        Some(keep) => encode_update_report(&UpdateReport {
            applied: report.applied,
            attempted: report.attempted,
            graph_version: report.graph_version,
            registered: report
                .registered
                .iter()
                .filter(|d| keep.contains(&d.query))
                .cloned()
                .collect(),
        }),
    };
    obj(vec![
        ("frame", Value::Str("update".into())),
        ("report", doc),
    ])
}

/// The graceful terminal frame (`reason` is `"drain"` on shutdown).
pub fn subscription_bye(reason: &str) -> Value {
    obj(vec![
        ("frame", Value::Str("bye".into())),
        ("reason", Value::Str(reason.to_owned())),
    ])
}

/// The abnormal terminal frame (`reason` is `"slow-consumer"` when the
/// subscriber's bounded queue overflowed).
pub fn subscription_error(reason: &str) -> Value {
    obj(vec![
        ("frame", Value::Str("error".into())),
        ("reason", Value::Str(reason.to_owned())),
    ])
}

/// Encode one [`GraphInfo`] catalog row.
pub fn encode_graph_info(info: &GraphInfo) -> Value {
    obj(vec![
        ("name", Value::Str(info.name.clone())),
        ("nodes", Value::Int(info.nodes as i64)),
        ("edges", Value::Int(info.edges as i64)),
        ("version", Value::Int(info.version as i64)),
        (
            "registered_queries",
            Value::Int(info.registered_queries as i64),
        ),
        ("compressed", Value::Bool(info.compressed)),
    ])
}

/// Encode a graph as the wire's `{"name", "graph"}` add-graph body (the
/// client-side counterpart of [`decode_add_graph`]).
pub fn encode_add_graph(name: &str, g: &DiGraph) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("graph", GraphDoc::from_graph(g).to_json_value()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use expfinder_graph::fixtures::collaboration_fig1;
    use expfinder_graph::json::parse;
    use expfinder_graph::GraphView;

    #[test]
    fn query_request_decoding() {
        let v = parse(
            r#"{"pattern": "node a where label = \"SA\";", "top_k": 3,
                "route": "direct", "include_matches": true}"#,
        )
        .unwrap();
        let q = decode_query(&v).unwrap();
        assert_eq!(q.top_k, Some(3));
        assert_eq!(q.route, Route::Direct);
        assert!(q.include_matches);
        assert_eq!(q.pattern.node_count(), 1);

        // defaults
        let v = parse(r#"{"pattern": "node a where label = \"SA\";"}"#).unwrap();
        let q = decode_query(&v).unwrap();
        assert_eq!(q.top_k, None);
        assert_eq!(q.route, Route::Auto);
        assert!(!q.include_matches);

        // failures carry 400 statuses
        for bad in [
            r#"{"top_k": 3}"#,
            r#"{"pattern": 7}"#,
            r#"{"pattern": "node a;", "route": "warp"}"#,
            r#"{"pattern": "node a;", "top_k": -1}"#,
            r#"{"pattern": "node a;", "typo_field": 1}"#,
        ] {
            let e = decode_query(&parse(bad).unwrap()).unwrap_err();
            assert_eq!(e.status, 400, "{bad}");
        }
        // a DSL parse error maps through the engine's shared mapping
        let e = decode_query(&parse(r#"{"pattern": "node oops"}"#).unwrap()).unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("parse"), "{}", e.message);
    }

    #[test]
    fn updates_roundtrip() {
        let ups = vec![
            EdgeUpdate::Insert(NodeId(8), NodeId(3)),
            EdgeUpdate::Delete(NodeId(1), NodeId(2)),
        ];
        let body = obj(vec![(
            "updates",
            Value::Array(ups.iter().map(|&u| encode_update(u)).collect()),
        )]);
        let decoded = decode_updates(&body).unwrap();
        assert_eq!(decoded, ups);

        let e = decode_updates(&parse(r#"{"updates":[{"op":"upsert","from":1,"to":2}]}"#).unwrap())
            .unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("update 0"), "{}", e.message);
    }

    #[test]
    fn add_graph_roundtrip() {
        let g = collaboration_fig1().graph;
        let body = encode_add_graph("fig1", &g);
        let (name, decoded) = decode_add_graph(&body).unwrap();
        assert_eq!(name, "fig1");
        assert_eq!(decoded.node_count(), g.node_count());
        assert_eq!(decoded.edge_count(), g.edge_count());

        assert_eq!(
            decode_add_graph(&parse(r#"{"name":"x","graph":{"nodes":0}}"#).unwrap())
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn query_response_encoding() {
        use expfinder_engine::ExpFinder;
        use expfinder_pattern::fixtures::fig1_pattern;
        let engine = ExpFinder::default();
        let f = collaboration_fig1();
        let h = engine.add_graph("fig1", f.graph.clone()).unwrap();
        let q = fig1_pattern();
        let resp = engine.query(&h).pattern(q.clone()).top_k(2).run().unwrap();
        let v = encode_query_response(&resp, &q, true, |n| {
            f.graph.attr_of(n, "name").and_then(|a| match a {
                expfinder_graph::AttrValue::Str(s) => Some(s.clone()),
                _ => None,
            })
        });
        assert_eq!(v.field("pairs").unwrap().as_i64().unwrap(), 7);
        assert_eq!(
            v.field("route").unwrap().as_str().unwrap(),
            "direct_bounded"
        );
        let experts = v.field("experts").unwrap().as_array().unwrap();
        assert_eq!(experts.len(), 2);
        assert_eq!(
            experts[0].field("name").unwrap().as_str().unwrap(),
            "Bob",
            "{v:?}"
        );
        let matches = v.field("matches").unwrap().as_object().unwrap();
        assert_eq!(matches.len(), q.node_count());
        assert!(matches.contains_key("sa"), "{matches:?}");
        assert_eq!(matches["sa"].as_array().unwrap().len(), 2, "Bob and Walt");
        // every response's timings carries the planner decision
        let plan = v.field("timings").unwrap().field("plan").unwrap();
        assert_eq!(plan.field("chosen").unwrap().as_str().unwrap(), "live");
        assert_eq!(plan.field("planned").unwrap().as_str().unwrap(), "live");
        assert!(!plan.field("overridden").unwrap().as_bool().unwrap());
        let candidates = plan.field("candidates").unwrap().as_array().unwrap();
        assert!(candidates.len() >= 2, "{plan:?}");
        for c in candidates {
            assert!(c.field("route").unwrap().as_str().is_ok());
            // cost is a finite number or the string "inf"
            let cost = c.field("cost").unwrap();
            assert!(
                matches!(cost, Value::Float(x) if x.is_finite())
                    || cost.as_str().ok() == Some("inf"),
                "{cost:?}"
            );
        }
        // round-trips through the parser (wire-safe)
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);

        // an exact route (cache hit) plans nothing but still reports
        let hit = engine.query(&h).pattern(q.clone()).top_k(2).run().unwrap();
        let v2 = encode_query_response(&hit, &q, false, |_| None);
        let plan2 = v2.field("timings").unwrap().field("plan").unwrap();
        assert_eq!(plan2.field("chosen").unwrap().as_str().unwrap(), "cache");
        assert!(plan2
            .field("candidates")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // without include_matches the field is absent
        let v = encode_query_response(&resp, &q, false, |_| None);
        assert!(v.field("matches").is_err());
    }

    #[test]
    fn subscribe_body_decoding() {
        assert_eq!(decode_subscribe(&parse("{}").unwrap()).unwrap(), None);
        assert_eq!(
            decode_subscribe(&parse(r#"{"queries":["team","sim"]}"#).unwrap()).unwrap(),
            Some(vec!["team".to_owned(), "sim".to_owned()])
        );
        for bad in [r#"{"queries":[]}"#, r#"{"queries":[7]}"#, r#"{"what":1}"#] {
            let e = decode_subscribe(&parse(bad).unwrap()).unwrap_err();
            assert_eq!(e.status, 400, "{bad}");
        }
    }

    #[test]
    fn subscription_frames_encode() {
        use expfinder_engine::{RegisteredDelta, UpdateReport};
        let hello = subscription_hello("g", 4, &["team".to_owned()], 9);
        assert_eq!(hello.field("frame").unwrap().as_str().unwrap(), "hello");
        assert_eq!(hello.field("graph_version").unwrap().as_i64().unwrap(), 4);
        assert_eq!(hello.field("subscriber").unwrap().as_i64().unwrap(), 9);

        let report = UpdateReport {
            applied: 1,
            attempted: 1,
            graph_version: 5,
            registered: vec![
                RegisteredDelta {
                    query: "team".into(),
                    before_pairs: 7,
                    after_pairs: 8,
                },
                RegisteredDelta {
                    query: "other".into(),
                    before_pairs: 1,
                    after_pairs: 1,
                },
            ],
        };
        // unfiltered: the report sub-document is exactly the /updates body
        let frame = subscription_update_frame(&report, None);
        assert_eq!(frame.field("frame").unwrap().as_str().unwrap(), "update");
        assert_eq!(
            frame.field("report").unwrap().to_string_compact(),
            encode_update_report(&report).to_string_compact()
        );
        // filtered: registered_delta narrowed, batch fields untouched
        let filter = vec!["team".to_owned()];
        let frame = subscription_update_frame(&report, Some(&filter));
        let doc = frame.field("report").unwrap();
        assert_eq!(doc.field("graph_version").unwrap().as_i64().unwrap(), 5);
        let delta = doc.field("registered_delta").unwrap();
        assert!(delta.field("team").is_ok());
        assert!(delta.field("other").is_err());

        assert_eq!(
            subscription_bye("drain")
                .field("reason")
                .unwrap()
                .as_str()
                .unwrap(),
            "drain"
        );
        assert_eq!(
            subscription_error("slow-consumer")
                .field("frame")
                .unwrap()
                .as_str()
                .unwrap(),
            "error"
        );
    }

    #[test]
    fn update_report_encoding() {
        use expfinder_engine::{RegisteredDelta, UpdateReport};
        let v = encode_update_report(&UpdateReport {
            applied: 1,
            attempted: 2,
            graph_version: 5,
            registered: vec![RegisteredDelta {
                query: "team".into(),
                before_pairs: 7,
                after_pairs: 8,
            }],
        });
        assert_eq!(v.field("applied").unwrap().as_i64().unwrap(), 1);
        let team = v.field("registered_delta").unwrap().field("team").unwrap();
        assert_eq!(team.field("delta").unwrap().as_i64().unwrap(), 1);
    }
}
