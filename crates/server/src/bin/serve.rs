//! `serve` — the expfinder-server daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers N] [--fixture fig1]
//!       [--load <name> <path.efg>] [--log <path>] [--allow-shutdown]
//! ```
//!
//! Prints exactly one `listening on <addr>` line on stdout once the
//! socket is bound (the contract the smoke harness and scripts rely on
//! to discover an ephemeral port), then serves until either
//!
//! * `POST /admin/shutdown` arrives (only with `--allow-shutdown`), or
//! * stdin reaches EOF (the supervisor closed the pipe — the offline
//!   stand-in for SIGTERM, which bare `std` cannot hook),
//!
//! and in both cases drains gracefully: in-flight requests finish and
//! every worker is joined before the process exits 0.

use expfinder_engine::ExpFinder;
use expfinder_server::{Server, ServerConfig};
use std::io::Write;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--fixture fig1] \
         [--load NAME PATH] [--log PATH] [--allow-shutdown]"
    );
    std::process::exit(2);
}

struct Log(Option<std::fs::File>);

impl Log {
    fn line(&mut self, msg: &str) {
        eprintln!("[serve] {msg}");
        if let Some(f) = self.0.as_mut() {
            let _ = writeln!(f, "{msg}");
            let _ = f.flush();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServerConfig::default();
    let mut fixtures: Vec<String> = Vec::new();
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut log_path: Option<String> = None;

    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&mut i),
            "--workers" => config.workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fixture" => fixtures.push(take(&mut i)),
            "--load" => {
                let name = take(&mut i);
                let path = take(&mut i);
                loads.push((name, path));
            }
            "--log" => log_path = Some(take(&mut i)),
            "--allow-shutdown" => config.allow_remote_shutdown = true,
            _ => usage(),
        }
        i += 1;
    }

    let mut log = Log(log_path.as_deref().map(|p| {
        std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot open log {p}: {e}");
            std::process::exit(1);
        })
    }));

    let engine = Arc::new(ExpFinder::default());
    for fixture in &fixtures {
        match fixture.as_str() {
            "fig1" => {
                engine
                    .add_graph(
                        "fig1",
                        expfinder_graph::fixtures::collaboration_fig1().graph,
                    )
                    .expect("fresh engine");
                log.line("loaded fixture fig1 (paper Fig. 1 collaboration network)");
            }
            other => {
                eprintln!("unknown fixture {other:?} (available: fig1)");
                std::process::exit(2);
            }
        }
    }
    for (name, path) in &loads {
        let g = expfinder_graph::io::load_text(path).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        });
        engine.add_graph(name, g).unwrap_or_else(|e| {
            eprintln!("cannot add {name}: {e}");
            std::process::exit(1);
        });
        log.line(&format!("loaded {name} from {path}"));
    }

    let workers = config.workers;
    let server = Server::bind(engine, addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr();
    let handle = server.spawn();
    log.line(&format!("listening on {bound} with {workers} workers"));
    // the discovery contract: one line, stdout, flushed
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();

    // stdin EOF ⇒ drain (offline stand-in for SIGTERM)
    let engine = Arc::clone(handle.engine());
    let draining = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let draining = Arc::clone(&draining);
        std::thread::Builder::new()
            .name("stdin-watch".into())
            .spawn(move || {
                let mut sink = String::new();
                loop {
                    sink.clear();
                    match std::io::stdin().read_line(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                draining.store(true, std::sync::atomic::Ordering::SeqCst);
            })
            .expect("spawn stdin watcher");
    }

    // wait for either shutdown source, then drain
    let served = loop {
        if handle.is_draining() {
            break handle.join();
        }
        if draining.load(std::sync::atomic::Ordering::SeqCst) {
            break handle.shutdown();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    log.line(&format!(
        "drained and stopped: {served} requests served, {} graphs managed",
        engine.graph_names().len()
    ));
}
