//! `serve` — the expfinder-server daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers N] [--fixture fig1]
//!       [--load <name> <path.efg>] [--log <path>] [--allow-shutdown]
//!       [--data-dir <dir>] [--shards N] [--no-fsync]
//!       [--default-deadline-ms N] [--max-deadline-ms N]
//!       [--admission-max-cost F]
//! ```
//!
//! Without `--data-dir` the daemon serves an in-memory engine (graphs
//! vanish with the process). With it, the daemon boots a durable shard
//! runtime rooted at the directory: graphs persist as `.efg` snapshots,
//! every accepted update batch is WAL-logged before it is applied, and
//! a restart replays the logs — `kill -9` loses at most the batch whose
//! append was torn mid-write. `--shards` sizes the actor pool,
//! `--no-fsync` trades crash-durability of the tail for update latency
//! (replay correctness is unaffected).
//!
//! Prints exactly one `listening on <addr>` line on stdout once the
//! socket is bound (the contract the smoke harness and scripts rely on
//! to discover an ephemeral port), then serves until either
//!
//! * `POST /admin/shutdown` arrives (only with `--allow-shutdown`), or
//! * stdin reaches EOF (the supervisor closed the pipe — the offline
//!   stand-in for SIGTERM, which bare `std` cannot hook),
//!
//! and in both cases drains gracefully: in-flight requests finish and
//! every worker is joined before the process exits 0.

use expfinder_engine::{ExpFinder, ExpFinderError};
use expfinder_runtime::{DurableExpFinder, FsyncPolicy, RuntimeConfig};
use expfinder_server::{Backend, Server, ServerConfig};
use std::io::Write;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--fixture fig1] \
         [--load NAME PATH] [--log PATH] [--allow-shutdown] \
         [--data-dir DIR] [--shards N] [--no-fsync] \
         [--default-deadline-ms N] [--max-deadline-ms N] \
         [--admission-max-cost F]"
    );
    std::process::exit(2);
}

struct Log(Option<std::fs::File>);

impl Log {
    fn line(&mut self, msg: &str) {
        eprintln!("[serve] {msg}");
        if let Some(f) = self.0.as_mut() {
            let _ = writeln!(f, "{msg}");
            let _ = f.flush();
        }
    }
}

/// Seed a graph into the backend, tolerating one that a durable restart
/// already recovered from disk.
fn seed(backend: &Backend, log: &mut Log, name: &str, graph: expfinder_graph::DiGraph) {
    match backend.add_graph(name, graph) {
        Ok(_) => {}
        Err(ExpFinderError::DuplicateGraph(_)) if matches!(backend, Backend::Durable(_)) => {
            log.line(&format!("{name} already recovered from the data dir"));
        }
        Err(e) => {
            eprintln!("cannot add {name}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServerConfig::default();
    let mut fixtures: Vec<String> = Vec::new();
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut log_path: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut fsync = FsyncPolicy::Always;

    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take(&mut i),
            "--workers" => config.workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fixture" => fixtures.push(take(&mut i)),
            "--load" => {
                let name = take(&mut i);
                let path = take(&mut i);
                loads.push((name, path));
            }
            "--log" => log_path = Some(take(&mut i)),
            "--allow-shutdown" => config.allow_remote_shutdown = true,
            "--data-dir" => data_dir = Some(take(&mut i)),
            "--shards" => shards = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--no-fsync" => fsync = FsyncPolicy::Never,
            "--default-deadline-ms" => {
                config.default_deadline_ms = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--max-deadline-ms" => {
                config.max_deadline_ms = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--admission-max-cost" => {
                config.admission_max_cost = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut log = Log(log_path.as_deref().map(|p| {
        std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot open log {p}: {e}");
            std::process::exit(1);
        })
    }));

    let backend = match &data_dir {
        None => Backend::Local(Arc::new(ExpFinder::default())),
        Some(dir) => {
            let mut rc = RuntimeConfig {
                fsync,
                ..RuntimeConfig::default()
            };
            if let Some(n) = shards {
                rc.shards = n.max(1);
            }
            let rt = DurableExpFinder::open(dir, rc).unwrap_or_else(|e| {
                eprintln!("cannot open data dir {dir}: {e}");
                std::process::exit(1);
            });
            let recovered = rt.wal_totals();
            log.line(&format!(
                "durable runtime on {dir}: {} graphs recovered \
                 ({} WAL frames / {} updates replayed, {} torn tails repaired)",
                rt.graph_names().len(),
                recovered.replayed_frames,
                recovered.replayed_updates,
                recovered.truncated_tails,
            ));
            Backend::Durable(Arc::new(rt))
        }
    };

    for fixture in &fixtures {
        match fixture.as_str() {
            "fig1" => {
                seed(
                    &backend,
                    &mut log,
                    "fig1",
                    expfinder_graph::fixtures::collaboration_fig1().graph,
                );
                log.line("loaded fixture fig1 (paper Fig. 1 collaboration network)");
            }
            other => {
                eprintln!("unknown fixture {other:?} (available: fig1)");
                std::process::exit(2);
            }
        }
    }
    for (name, path) in &loads {
        let g = expfinder_graph::io::load_text(path).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        });
        seed(&backend, &mut log, name, g);
        log.line(&format!("loaded {name} from {path}"));
    }

    let workers = config.workers;
    let server = Server::bind_backend(backend, addr.as_str(), config).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr();
    let handle = server.spawn();
    log.line(&format!("listening on {bound} with {workers} workers"));
    // the discovery contract: one line, stdout, flushed
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();

    // stdin EOF ⇒ drain (offline stand-in for SIGTERM)
    let draining = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let draining = Arc::clone(&draining);
        std::thread::Builder::new()
            .name("stdin-watch".into())
            .spawn(move || {
                let mut sink = String::new();
                loop {
                    sink.clear();
                    match std::io::stdin().read_line(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                draining.store(true, std::sync::atomic::Ordering::SeqCst);
            })
            .expect("spawn stdin watcher");
    }

    // wait for either shutdown source, then drain
    let backend = handle.backend().clone();
    let served = loop {
        if handle.is_draining() {
            break handle.join();
        }
        if draining.load(std::sync::atomic::Ordering::SeqCst) {
            break handle.shutdown();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    log.line(&format!(
        "drained and stopped: {served} requests served, {} graphs managed",
        backend.graph_names().len()
    ));
}
