//! `stress_smoke` — deadline/admission stress harness behind the
//! `stress-smoke` CI job (and `just stress-smoke`).
//!
//! Boots the real `serve` binary, uploads a deliberately nasty graph (a
//! dense circulant with long cycles, so `within *` patterns do real
//! reachability work), then fires pathological worst-case queries under
//! tight deadlines **mixed with normal traffic** from concurrent
//! clients. The contract under stress:
//!
//! * every response is 200, 408 or 429 — never a hang, a 5xx or a
//!   worker panic;
//! * an already-expired budget (`deadline_ms: 0`) always answers 408,
//!   with partial stats in the error body, within a bounded time;
//! * un-deadlined traffic on the other workers keeps answering 200
//!   throughout;
//! * the `/metrics` cancellation and deadline keys are live and moved;
//! * the server still drains gracefully afterwards.
//!
//! A second boot with an admission ceiling asserts the 429 path:
//! everything estimated over budget is refused up front with
//! `Retry-After`, while `/healthz` and `/metrics` stay reachable.
//!
//! ```text
//! stress_smoke [--server-bin path/to/serve] [--log stress-smoke.log]
//! ```

use expfinder_graph::json::Value;
use expfinder_graph::{AttrValue, DiGraph, NodeId};
use expfinder_server::client::{query_body, query_body_deadline, Client};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FIG1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
    node sd where label = \"SD\" and experience >= 2; \
    node ba where label = \"BA\" and experience >= 3; \
    node st where label = \"ST\" and experience >= 2; \
    edge sa -> sd within 2; edge sa -> ba within 3; \
    edge sd -> st within 2; edge ba -> st within 1;";

/// Worst case on the circulant graph: every bound unbounded plus a
/// cycle back to the output node, so each refinement round re-runs
/// reachability over the whole strongly connected component.
const NASTY_DSL: &str = "node sa* where label = \"SA\"; \
    node sd where label = \"SD\"; \
    node ba where label = \"BA\"; \
    node st where label = \"ST\"; \
    edge sa -> sd within *; edge sa -> ba within *; \
    edge sd -> st within *; edge ba -> st within *; \
    edge st -> sa within *;";

struct Harness {
    child: Child,
    failures: usize,
}

impl Harness {
    fn check(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            println!("ok: {what}");
        } else {
            self.failures += 1;
            eprintln!("FAIL: {what}: {}", detail());
        }
    }

    fn require(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.check(what, ok, detail);
        if !ok {
            let _ = self.child.kill();
            let _ = self.child.wait();
            eprintln!("stress smoke FAILED at required step: {what}");
            std::process::exit(1);
        }
    }
}

fn i64_at(v: &Value, path: &[&str]) -> i64 {
    let mut cur = v;
    for p in path {
        cur = cur.field(p).unwrap_or(&Value::Null);
    }
    cur.as_i64().unwrap_or(i64::MIN)
}

/// One strongly connected "collaboration" mess: labels cycle through
/// the four roles, and the circulant edges (+1, +7, +13) give every
/// node long unbounded-reachability neighborhoods. Deterministic — no
/// rng needed for a worst case.
fn nasty_graph(n: u32) -> DiGraph {
    let labels = ["SA", "SD", "BA", "ST"];
    let mut g = DiGraph::new();
    for i in 0..n {
        g.add_node(
            labels[(i % 4) as usize],
            [("experience", AttrValue::Int(9))],
        );
    }
    for i in 0..n {
        for step in [1, 7, 13, 29, 57] {
            g.add_edge(NodeId(i), NodeId((i + step) % n));
        }
    }
    g
}

fn boot(server_bin: &str, extra: &[&str]) -> (Child, SocketAddr) {
    let mut args = vec![
        "--addr",
        "127.0.0.1:0",
        "--fixture",
        "fig1",
        "--allow-shutdown",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(server_bin)
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn {server_bin}: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("server stdout");
    let addr: SocketAddr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| {
            let _ = child.kill();
            eprintln!("bad discovery line {first_line:?}");
            std::process::exit(1);
        })
        .parse()
        .expect("address in discovery line");
    println!("server up on {addr}");
    (child, addr)
}

/// What one stressed request observed.
struct Observation {
    status: u16,
    elapsed: Duration,
    partial_ok: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server_bin: Option<String> = None;
    let mut log_path = "stress-smoke.log".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server-bin" => {
                i += 1;
                server_bin = Some(args.get(i).expect("value after --server-bin").clone());
            }
            "--log" => {
                i += 1;
                log_path = args.get(i).expect("value after --log").clone();
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let server_bin = server_bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        me.parent()
            .expect("bin dir")
            .join("serve")
            .to_string_lossy()
            .into_owned()
    });

    // ---- phase 1: tight deadlines under concurrent normal traffic ----
    println!("booting {server_bin} with deadline knobs (log: {log_path})");
    let (child, addr) = boot(
        &server_bin,
        &[
            "--workers",
            "4",
            "--max-deadline-ms",
            "5000",
            "--log",
            &log_path,
        ],
    );
    let mut h = Harness { child, failures: 0 };
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(30));

    let big = nasty_graph(20000);
    let added = client.add_graph("big", &big);
    h.require("upload the worst-case graph", added.is_ok(), || {
        format!("{added:?}")
    });

    // sanity: un-deadlined, the nasty query completes and has matches
    // (every node satisfies its role predicate on this graph)
    let sane = client.query("big", &query_body(NASTY_DSL, None, "auto", false));
    h.require(
        "nasty pattern evaluates without a deadline",
        sane.is_ok(),
        || format!("{sane:?}"),
    );
    h.check(
        "nasty pattern matches the whole circulant",
        i64_at(&sane.unwrap(), &["pairs"]) >= 20000,
        String::new,
    );

    // the stress mix: two clients hammer the nasty pattern under tight
    // budgets (0 must 408; 1/2/5 ms may finish or deadline), while two
    // clients run normal fig1 traffic that must always answer 200
    const TIGHT_REQS: usize = 12;
    const NORMAL_REQS: usize = 16;
    let outcome = std::thread::scope(|s| {
        let mut tight_handles = Vec::new();
        for t in 0..2 {
            tight_handles.push(s.spawn(move || {
                let mut c = Client::new(addr);
                c.set_timeout(Duration::from_secs(30));
                let budgets = [0u64, 1, 2, 5];
                let mut seen = Vec::new();
                for r in 0..TIGHT_REQS {
                    let ms = budgets[(t + r) % budgets.len()];
                    let started = Instant::now();
                    let resp = c
                        .request(
                            "POST",
                            "/graphs/big/query",
                            Some(&query_body_deadline(NASTY_DSL, None, "direct", false, ms)),
                        )
                        .expect("stressed request must get a response");
                    let elapsed = started.elapsed();
                    let partial_ok = resp.status != 408
                        || resp
                            .body
                            .field("error")
                            .and_then(|e| e.field("timings"))
                            .and_then(|t| t.field("partial"))
                            .and_then(|p| p.as_bool())
                            .unwrap_or(false);
                    // a zero budget can never slip through to a 200
                    let status = if ms == 0 && resp.status != 408 {
                        0 // poisons the status set below
                    } else {
                        resp.status
                    };
                    seen.push(Observation {
                        status,
                        elapsed,
                        partial_ok,
                    });
                }
                seen
            }));
        }
        let mut normal_handles = Vec::new();
        for _ in 0..2 {
            normal_handles.push(s.spawn(move || {
                let mut c = Client::new(addr);
                c.set_timeout(Duration::from_secs(30));
                let mut all_ok = true;
                for _ in 0..NORMAL_REQS {
                    let resp = c
                        .query("fig1", &query_body(FIG1_DSL, None, "auto", false))
                        .expect("normal traffic must keep answering");
                    all_ok &= i64_at(&resp, &["pairs"]) == 7;
                }
                all_ok
            }));
        }
        let tight: Vec<Observation> = tight_handles
            .into_iter()
            .flat_map(|th| th.join().expect("tight client thread"))
            .collect();
        let normal_ok = normal_handles
            .into_iter()
            .all(|nh| nh.join().expect("normal client thread"));
        (tight, normal_ok)
    });
    let (tight, normal_ok) = outcome;

    h.check(
        "normal traffic answered 200 with correct results throughout",
        normal_ok,
        String::new,
    );
    h.check(
        "every stressed response is 200 or 408 (zero budgets all 408)",
        tight.iter().all(|o| o.status == 200 || o.status == 408),
        || {
            let statuses: Vec<u16> = tight.iter().map(|o| o.status).collect();
            format!("{statuses:?}")
        },
    );
    let fired = tight.iter().filter(|o| o.status == 408).count();
    h.check("at least the zero budgets deadlined", fired >= 6, || {
        format!("{fired} of {} answered 408", tight.len())
    });
    h.check(
        "every 408 body carries partial stats",
        tight.iter().all(|o| o.partial_ok),
        String::new,
    );
    let worst = tight.iter().map(|o| o.elapsed).max().unwrap_or_default();
    h.check(
        "deadlined requests answered promptly (bounded abandon)",
        worst < Duration::from_secs(2),
        || format!("worst stressed latency {worst:?}"),
    );
    println!(
        "stress mix done: {fired}/{} deadlined, worst latency {worst:?}",
        tight.len()
    );

    // a zero-budget batch deadlines every slot inside the 200 envelope
    let batch_body = Value::Object(std::collections::BTreeMap::from([
        ("deadline_ms".to_owned(), Value::Int(0)),
        (
            "queries".to_owned(),
            Value::Array(vec![
                query_body(NASTY_DSL, None, "direct", false),
                query_body(NASTY_DSL, Some(3), "direct", false),
            ]),
        ),
    ]));
    let batch = client.request("POST", "/graphs/big/batch", Some(&batch_body));
    h.check(
        "zero-budget batch answers 200 with every slot 408",
        batch.as_ref().is_ok_and(|r| {
            r.status == 200
                && r.body
                    .field("results")
                    .and_then(|rs| rs.as_array())
                    .is_ok_and(|rs| {
                        rs.len() == 2
                            && rs
                                .iter()
                                .all(|slot| i64_at(slot, &["error", "status"]) == 408)
                    })
        }),
        || format!("{batch:?}"),
    );

    // the cancellation + deadline counters are live and moved
    let metrics = client.metrics().expect("metrics");
    h.check(
        "metrics export live engine.cancel counters",
        i64_at(&metrics, &["engine", "cancel", "checked"]) >= 1
            && i64_at(&metrics, &["engine", "cancel", "fired"]) >= 1,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics counted the enforced deadlines",
        i64_at(&metrics, &["server", "deadline", "enforced"]) >= fired as i64
            && i64_at(&metrics, &["server", "deadline", "rejected"]) == 0,
        || metrics.to_string_compact(),
    );
    h.check(
        "in-flight admission cost drained back to zero",
        metrics
            .field("server")
            .and_then(|s| s.field("cost_in_flight"))
            .and_then(|c| c.as_f64())
            .ok()
            == Some(0.0),
        || metrics.to_string_compact(),
    );

    // clean drain despite all the abandoned evaluations
    let drain = client.shutdown_server();
    h.check("POST /admin/shutdown accepted", drain.is_ok(), || {
        format!("{drain:?}")
    });
    let status = h.child.wait().expect("wait for server");
    h.check("server exited 0 after the stress", status.success(), || {
        format!("{status:?}")
    });
    let log = std::fs::read_to_string(&log_path).unwrap_or_default();
    h.check(
        "server log records boot and drain",
        log.contains("listening on") && log.contains("drained and stopped"),
        || format!("log was: {log:?}"),
    );

    // ---- phase 2: admission control refuses over-budget work ----
    println!("booting {server_bin} with a starvation-level admission ceiling");
    let (child, addr) = boot(&server_bin, &["--admission-max-cost", "0.000001"]);
    h.child = child;
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));

    let refused = client.request(
        "POST",
        "/graphs/fig1/query",
        Some(&query_body(FIG1_DSL, None, "auto", false)),
    );
    h.check(
        "over-budget query refused with 429 + Retry-After",
        refused
            .as_ref()
            .is_ok_and(|r| r.status == 429 && r.retry_after == Some(1)),
        || format!("{refused:?}"),
    );
    let health = client.health();
    h.check(
        "healthz bypasses admission and answers ok",
        health
            .as_ref()
            .is_ok_and(|v| v.field("status").and_then(|s| s.as_str()).ok() == Some("ok")),
        || format!("{health:?}"),
    );
    let metrics = client.metrics().expect("metrics under admission");
    h.check(
        "metrics counted the admission rejection",
        i64_at(&metrics, &["server", "deadline", "rejected"]) >= 1,
        || metrics.to_string_compact(),
    );
    let drain = client.shutdown_server();
    h.check(
        "admission-limited server still drains cleanly",
        drain.is_ok(),
        || format!("{drain:?}"),
    );
    let status = h.child.wait().expect("wait for admission server");
    h.check("admission server exited 0", status.success(), || {
        format!("{status:?}")
    });

    if h.failures == 0 {
        println!(
            "stress smoke OK: deadlines enforced under load, admission \
             refusals, clean drain"
        );
    } else {
        eprintln!("stress smoke FAILED: {} check(s)", h.failures);
        std::process::exit(1);
    }
}
