//! `serve_smoke` — the end-to-end boot→query→shutdown harness behind the
//! `serve-smoke` CI job (and `just serve-smoke`).
//!
//! Unlike the in-process integration tests, this drives the **real
//! deployment shape**: it spawns the `serve` binary as a child process,
//! discovers the ephemeral port from its stdout contract, exercises every
//! endpoint over real TCP with the blocking client, asserts on the
//! responses, then requests a graceful drain and verifies the child
//! exits 0 and wrote its log. Any failed assertion exits non-zero (after
//! killing the child), which fails the CI job.
//!
//! ```text
//! serve_smoke [--server-bin path/to/serve] [--log server.log]
//! ```
//!
//! Without `--server-bin` the harness looks for a `serve` binary next to
//! its own executable (both live in `target/release` after
//! `cargo build --release`).

use expfinder_graph::json::Value;
use expfinder_graph::{EdgeUpdate, GraphView};
use expfinder_server::client::{query_body, Client};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const FIG1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
    node sd where label = \"SD\" and experience >= 2; \
    node ba where label = \"BA\" and experience >= 3; \
    node st where label = \"ST\" and experience >= 2; \
    edge sa -> sd within 2; edge sa -> ba within 3; \
    edge sd -> st within 2; edge ba -> st within 1;";

struct Harness {
    child: Child,
    failures: usize,
}

impl Harness {
    fn check(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            println!("ok: {what}");
        } else {
            self.failures += 1;
            eprintln!("FAIL: {what}: {}", detail());
        }
    }

    /// Like [`check`](Self::check), but abort the run when **this** step
    /// fails (later steps would only cascade) — earlier advisory
    /// failures keep the run going so CI prints every diagnostic.
    fn require(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.check(what, ok, detail);
        if !ok {
            let _ = self.child.kill();
            let _ = self.child.wait();
            eprintln!("serve smoke FAILED at required step: {what}");
            std::process::exit(1);
        }
    }
}

fn i64_at(v: &Value, path: &[&str]) -> i64 {
    let mut cur = v;
    for p in path {
        cur = cur.field(p).unwrap_or(&Value::Null);
    }
    cur.as_i64().unwrap_or(i64::MIN)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server_bin: Option<String> = None;
    let mut log_path = "serve-smoke.log".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server-bin" => {
                i += 1;
                server_bin = Some(args.get(i).expect("value after --server-bin").clone());
            }
            "--log" => {
                i += 1;
                log_path = args.get(i).expect("value after --log").clone();
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let server_bin = server_bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        let sibling = me.parent().expect("bin dir").join("serve");
        sibling.to_string_lossy().into_owned()
    });

    // ---- boot (durable: the smoke drives the WAL-backed shard runtime) ----
    let data_dir =
        std::env::temp_dir().join(format!("expfinder_smoke_data_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let data_dir_arg = data_dir.to_string_lossy().into_owned();
    println!("booting {server_bin} (log: {log_path}, data dir: {data_dir_arg})");
    let mut child = Command::new(&server_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fixture",
            "fig1",
            "--allow-shutdown",
            "--log",
            &log_path,
            "--data-dir",
            &data_dir_arg,
            // a live subscription pins one worker for its whole stream;
            // keep headroom beyond the small-machine default of 2
            "--workers",
            "4",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn {server_bin}: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("server stdout");
    let addr: SocketAddr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| {
            let _ = child.kill();
            eprintln!("bad discovery line {first_line:?}");
            std::process::exit(1);
        })
        .parse()
        .expect("address in discovery line");
    println!("server up on {addr}");

    let mut h = Harness { child, failures: 0 };
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));

    // ---- healthz ----
    let health = client.health();
    h.require("GET /healthz answers", health.is_ok(), || {
        format!("{health:?}")
    });
    let health = health.unwrap();
    h.check(
        "healthz reports ok + fixture graph",
        health.field("status").and_then(|s| s.as_str()).ok() == Some("ok")
            && i64_at(&health, &["graphs"]) == 1,
        || health.to_string_compact(),
    );

    // ---- upload a second graph ----
    let mut g2 = expfinder_graph::DiGraph::new();
    let a = g2.add_node("SA", [("experience", expfinder_graph::AttrValue::Int(9))]);
    let b = g2.add_node("SD", [("experience", expfinder_graph::AttrValue::Int(2))]);
    g2.add_edge(a, b);
    let added = client.add_graph("uploaded", &g2);
    h.require("POST /graphs uploads a graph", added.is_ok(), || {
        format!("{added:?}")
    });
    let catalog = client.graphs().expect("GET /graphs");
    let names: Vec<&str> = catalog
        .field("graphs")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|g| g.field("name").and_then(|n| n.as_str()).ok())
        .collect();
    h.check(
        "GET /graphs lists both graphs",
        names == ["fig1", "uploaded"],
        || format!("{names:?}"),
    );

    // ---- register a query ----
    let reg = client.register("fig1", "team", FIG1_DSL);
    h.require("POST /register registers", reg.is_ok(), || {
        format!("{reg:?}")
    });
    h.check(
        "registered result has the paper's 7 pairs",
        i64_at(&reg.unwrap(), &["pairs"]) == 7,
        String::new,
    );

    // ---- subscribe (push stream; frames asserted after /updates) ----
    let sub = client.subscribe("fig1", None);
    h.require("POST /subscribe opens a push stream", sub.is_ok(), || {
        format!("{sub:?}")
    });
    let mut sub = sub.unwrap();
    let hello = sub.next_frame();
    h.check(
        "subscription hello frame lists the registered query",
        hello
            .as_ref()
            .ok()
            .and_then(|f| f.as_ref())
            .is_some_and(|f| {
                f.field("frame").and_then(|x| x.as_str()).ok() == Some("hello")
                    && f.field("queries")
                        .and_then(|q| q.as_array())
                        .is_ok_and(|qs| qs.iter().any(|q| q.as_str().ok() == Some("team")))
            }),
        || format!("{hello:?}"),
    );

    // ---- query ----
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, Some(2), "auto", true))
        .expect("query");
    h.check(
        "query: 7 pairs via the registered route",
        i64_at(&resp, &["pairs"]) == 7
            && resp.field("route").and_then(|r| r.as_str()).ok() == Some("registered"),
        || resp.to_string_compact(),
    );
    let top = resp.field("experts").unwrap().as_array().unwrap();
    h.check(
        "query: Bob is the top-ranked expert",
        top.first()
            .and_then(|e| e.field("name").and_then(|n| n.as_str()).ok())
            == Some("Bob"),
        || resp.to_string_compact(),
    );

    // ---- batch (with one deliberately broken slot) ----
    let batch = client
        .batch(
            "fig1",
            vec![
                query_body(FIG1_DSL, Some(1), "auto", false),
                query_body("node oops", None, "auto", false),
                query_body("node sa* where label = \"SA\";", None, "direct", false),
            ],
        )
        .expect("batch");
    let results = batch.field("results").unwrap().as_array().unwrap();
    h.check(
        "batch: good slots answer, bad slot fails alone with a 400",
        results.len() == 3
            && i64_at(&results[0], &["ok", "pairs"]) == 7
            && i64_at(&results[1], &["error", "status"]) == 400
            && i64_at(&results[2], &["ok", "pairs"]) == 2,
        || batch.to_string_compact(),
    );

    // ---- updates (paper Example 3: Fred → Dan) with ΔM report ----
    let f = expfinder_graph::fixtures::collaboration_fig1();
    let report = client
        .updates("fig1", &[EdgeUpdate::Insert(f.e1.0, f.e1.1)])
        .expect("updates");
    h.check(
        "updates: applied and ΔM for the registered query is +1",
        i64_at(&report, &["applied"]) == 1
            && i64_at(&report, &["registered_delta", "team", "before_pairs"]) == 7
            && i64_at(&report, &["registered_delta", "team", "after_pairs"]) == 8,
        || report.to_string_compact(),
    );
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, None, "auto", false))
        .expect("query after update");
    h.check(
        "query after update sees 8 pairs at a newer version",
        i64_at(&resp, &["pairs"]) == 8 && i64_at(&resp, &["graph_version"]) > 0,
        || resp.to_string_compact(),
    );
    let frame = sub.next_frame();
    h.check(
        "subscription pushed the committed batch's ΔM frame verbatim",
        frame
            .as_ref()
            .ok()
            .and_then(|f| f.as_ref())
            .is_some_and(|f| {
                f.field("frame").and_then(|x| x.as_str()).ok() == Some("update")
                    && f.field("report").map(Value::to_string_compact).ok()
                        == Some(report.to_string_compact())
            }),
        || format!("{frame:?}"),
    );

    // ---- error statuses over the wire ----
    let missing = client.query("ghost", &query_body(FIG1_DSL, None, "auto", false));
    h.check(
        "unknown graph answers 404",
        matches!(
            missing,
            Err(expfinder_server::ClientError::Status { status: 404, .. })
        ),
        || format!("{missing:?}"),
    );
    let raw = client.request("POST", "/graphs/fig1/query", Some(&Value::Str("}{".into())));
    h.check(
        "non-object body answers 400",
        raw.as_ref().map(|r| r.status).unwrap_or(0) == 400,
        || format!("{raw:?}"),
    );

    // ---- metrics ----
    // drive one bounded query through the direct route first, so the
    // cumulative EvalStats counters provably moved on the serving path
    let direct = client
        .query("fig1", &query_body(FIG1_DSL, None, "direct", false))
        .expect("direct query");
    h.check(
        "direct-route query evaluates",
        i64_at(&direct, &["pairs"]) == 8,
        || direct.to_string_compact(),
    );
    let metrics = client.metrics().expect("metrics");
    h.check(
        "metrics counted the query traffic",
        i64_at(&metrics, &["requests", "query", "count"]) >= 3
            && i64_at(&metrics, &["requests", "batch", "count"]) >= 1,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export engine cache counters",
        i64_at(&metrics, &["engine", "cache", "misses"]) >= 1
            && i64_at(&metrics, &["engine", "cache", "entries"]) >= 1,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export cumulative EvalStats from the matching path",
        i64_at(&metrics, &["engine", "eval", "refreshes"]) >= 4
            && i64_at(&metrics, &["engine", "eval", "bfs_nodes_visited"]) >= 1
            && i64_at(&metrics, &["engine", "eval", "refreshes_skipped"]) >= 0
            && i64_at(&metrics, &["engine", "eval", "removals"]) >= 0,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export reach-index counters",
        // i64_at answers i64::MIN for a missing field, so >= 0 asserts
        // presence; fig1 is below the snapshot threshold, hence zeroes
        i64_at(&metrics, &["engine", "index", "hits"]) >= 0
            && i64_at(&metrics, &["engine", "index", "misses"]) >= 0
            && i64_at(&metrics, &["engine", "index", "entries"]) >= 0
            && i64_at(&metrics, &["engine", "index", "bytes"]) >= 0,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export WAL counters from the durable backend",
        // one update batch was accepted → exactly that many appends;
        // fresh data dir → nothing replayed, no torn tails
        i64_at(&metrics, &["engine", "wal", "appends"]) >= 1
            && i64_at(&metrics, &["engine", "wal", "bytes"]) >= 1
            && i64_at(&metrics, &["engine", "wal", "fsyncs"]) >= 1
            && i64_at(&metrics, &["engine", "wal", "replayed_frames"]) == 0
            && i64_at(&metrics, &["engine", "wal", "truncated_tails"]) == 0,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export fault-injection and load-shedding counters (durable)",
        // keys must exist (i64_at answers i64::MIN when missing) and be
        // zero: the injector is disarmed and nothing was shed
        i64_at(&metrics, &["engine", "faults", "injected"]) == 0
            && i64_at(&metrics, &["engine", "faults", "writes"]) == 0
            && i64_at(&metrics, &["engine", "faults", "fsyncs"]) == 0
            && i64_at(&metrics, &["engine", "faults", "renames"]) == 0
            && i64_at(&metrics, &["server", "shed"]) == 0,
        || metrics.to_string_compact(),
    );
    let shards = metrics
        .field("engine")
        .and_then(|e| e.field("shard"))
        .and_then(|s| s.as_array())
        .map(|a| a.to_vec())
        .unwrap_or_default();
    h.check(
        "metrics export per-shard mailbox depth and ownership gauges",
        !shards.is_empty()
            && shards
                .iter()
                .all(|s| i64_at(s, &["depth"]) >= 0 && i64_at(s, &["commands"]) >= 1)
            && shards.iter().map(|s| i64_at(s, &["graphs"])).sum::<i64>() == 2,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export subscription gauges",
        i64_at(&metrics, &["subscriptions", "live"]) == 1
            && i64_at(&metrics, &["subscriptions", "frames_pushed"]) >= 1
            && i64_at(&metrics, &["subscriptions", "slow_consumer_disconnects"]) == 0,
        || metrics.to_string_compact(),
    );
    h.check(
        "metrics export live graph versions",
        metrics
            .field("graphs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|g| {
                g.field("name").and_then(|n| n.as_str()).ok() == Some("fig1")
                    && i64_at(g, &["version"]) >= 1
            }),
        || metrics.to_string_compact(),
    );

    // ---- graceful shutdown ----
    let drain = client.shutdown_server();
    h.check("POST /admin/shutdown accepted", drain.is_ok(), || {
        format!("{drain:?}")
    });
    // drain pushes a terminal bye frame down the live subscription before
    // the chunked stream ends
    sub.set_timeout(Duration::from_secs(10));
    let bye = loop {
        match sub.next_frame() {
            Ok(Some(f)) if f.field("frame").and_then(|x| x.as_str()).ok() == Some("bye") => {
                break Ok(Some(f));
            }
            Ok(Some(_)) => continue,
            other => break other,
        }
    };
    h.check(
        "drain ends the subscription with a bye frame",
        bye.as_ref()
            .ok()
            .and_then(|f| f.as_ref())
            .is_some_and(|f| f.field("reason").and_then(|r| r.as_str()).ok() == Some("drain")),
        || format!("{bye:?}"),
    );
    let status = h.child.wait().expect("wait for server");
    h.check("server exited 0 after drain", status.success(), || {
        format!("{status:?}")
    });
    let log = std::fs::read_to_string(&log_path).unwrap_or_default();
    h.check(
        "server log records boot and drain",
        log.contains("listening on") && log.contains("drained and stopped"),
        || format!("log was: {log:?}"),
    );

    h.check(
        "data dir holds a snapshot and a WAL per graph",
        data_dir.join("fig1.efg").is_file()
            && data_dir.join("fig1.wal").is_file()
            && data_dir.join("uploaded.efg").is_file(),
        || {
            let listing: Vec<String> = std::fs::read_dir(&data_dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
                        .collect()
                })
                .unwrap_or_default();
            format!("{listing:?}")
        },
    );
    let _ = std::fs::remove_dir_all(&data_dir);

    // ---- second boot, Local backend (no --data-dir): the fault and
    // shed counters must keep the same /metrics schema either way ----
    let local_log = format!("{log_path}.local");
    println!("booting {server_bin} without a data dir (log: {local_log})");
    let mut child = Command::new(&server_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fixture",
            "fig1",
            "--allow-shutdown",
            "--log",
            &local_log,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn {server_bin}: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("server stdout");
    let addr: SocketAddr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| {
            let _ = child.kill();
            eprintln!("bad discovery line {first_line:?}");
            std::process::exit(1);
        })
        .parse()
        .expect("address in discovery line");
    println!("local-backend server up on {addr}");
    h.child = child;
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));
    let metrics = client.metrics();
    h.require(
        "GET /metrics answers on the Local backend",
        metrics.is_ok(),
        || format!("{metrics:?}"),
    );
    let metrics = metrics.unwrap();
    h.check(
        "metrics export fault-injection and load-shedding counters (local)",
        i64_at(&metrics, &["engine", "faults", "injected"]) == 0
            && i64_at(&metrics, &["engine", "faults", "writes"]) == 0
            && i64_at(&metrics, &["engine", "faults", "fsyncs"]) == 0
            && i64_at(&metrics, &["engine", "faults", "renames"]) == 0
            && i64_at(&metrics, &["server", "shed"]) == 0,
        || metrics.to_string_compact(),
    );
    let drain = client.shutdown_server();
    h.check(
        "local-backend server accepts /admin/shutdown",
        drain.is_ok(),
        || format!("{drain:?}"),
    );
    let status = h.child.wait().expect("wait for local-backend server");
    h.check(
        "local-backend server exited 0 after drain",
        status.success(),
        || format!("{status:?}"),
    );

    // g2 only exists to exercise upload; touch it so nothing is unused
    assert_eq!(g2.node_count(), 2);

    if h.failures == 0 {
        println!("serve smoke OK: boot, all endpoints, ΔM report, graceful drain");
    } else {
        eprintln!("serve smoke FAILED: {} check(s)", h.failures);
        std::process::exit(1);
    }
}
