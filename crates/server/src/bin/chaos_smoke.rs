//! `chaos_smoke` — the crash-point torture harness behind the
//! `chaos-smoke` CI job (and `just chaos-smoke`).
//!
//! Drives the durable runtime's recovery invariant through *every*
//! injected I/O boundary, in process, using `runtime::faults`:
//!
//! 1. **Census** — run a fixed op script (updates / register / snapshot
//!    / compact / unregister) under `FsyncPolicy::Always` with an empty
//!    armed plan, counting the I/O boundaries it crosses (the census
//!    must find ≥ 50) and recording an oracle state after every op.
//! 2. **Crash sweep** — for each boundary `k`, replay the script on a
//!    fresh data dir with a crash armed at `k`, stop at the simulated
//!    crash, reopen the dir and assert the **recovery invariant**: the
//!    recovered state (edges + registered queries) is bit-identical to
//!    the oracle state after the acknowledged ops — `S_a`, or `S_{a+1}`
//!    when the in-flight frame survived intact (an in-process "crash"
//!    loses no page cache; every *acknowledged* op must survive, which
//!    both branches imply). Every maintained result must also equal a
//!    fresh from-scratch evaluation on the recovered graph.
//! 3. **Torn-write sweep** — repeat the sweep over every *write*
//!    boundary with a partial write (3 torn bytes) at the crash point,
//!    proving restart-time replay truncates torn frames.
//! 4. **Transient-fault scenarios** — an injected ENOSPC mid-run fails
//!    exactly one append, the retry lands (the log self-healed), and
//!    recovery is exact; a failed fsync seals the writer (subsequent
//!    appends refuse), and reopening the dir recovers the acknowledged
//!    prefix and accepts appends again.
//!
//! ```text
//! chaos_smoke [--log <file>] [--data-dir <dir>]
//! ```
//!
//! Data dirs of failed iterations are kept (under `--data-dir` when
//! given, else the temp dir) so CI can archive them as artifacts.

use expfinder_core::bounded_simulation;
use expfinder_engine::ExpFinderError;
use expfinder_graph::{DiGraph, EdgeUpdate, GraphView, NodeId};
use expfinder_pattern::{parser, Pattern};
use expfinder_runtime::faults::CRASH_MARKER;
use expfinder_runtime::{DurableExpFinder, FaultKind, FaultPlan, FsyncPolicy, IoOp, RuntimeConfig};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const GRAPH: &str = "g";

const Q1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
    node sd where label = \"SD\" and experience >= 2; \
    node ba where label = \"BA\" and experience >= 3; \
    node st where label = \"ST\" and experience >= 2; \
    edge sa -> sd within 2; edge sa -> ba within 3; \
    edge sd -> st within 2; edge ba -> st within 1;";
const Q2_DSL: &str = "node sd where label = \"SD\" and experience >= 2;";

/// One scripted operation against the runtime.
#[derive(Clone, Debug)]
enum Op {
    Updates(Vec<EdgeUpdate>),
    Register(&'static str, &'static str),
    Unregister(&'static str),
    Snapshot,
    Compact,
}

/// The oracle state after a prefix of ops: sorted edge list plus the
/// sorted registered-query names. Durability is judged on exactly this.
type State = (Vec<(u32, u32)>, Vec<String>);

struct Harness {
    failures: usize,
    log: Option<std::fs::File>,
}

impl Harness {
    fn say(&mut self, line: &str) {
        println!("{line}");
        if let Some(f) = &mut self.log {
            let _ = writeln!(f, "{line}");
        }
    }

    fn check(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            self.say(&format!("ok: {what}"));
        } else {
            self.failures += 1;
            let d = detail();
            println!("FAIL: {what}: {d}");
            eprintln!("FAIL: {what}: {d}");
            if let Some(f) = &mut self.log {
                let _ = writeln!(f, "FAIL: {what}: {d}");
            }
        }
    }
}

/// Deterministic xorshift64* — the harness must cross identically
/// numbered boundaries on every run, so no environmental randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A fixed pseudo-random edge-update batch over the fig1 node ids.
fn batch(rng: &mut Rng, n: usize, nodes: u32) -> Vec<EdgeUpdate> {
    (0..n)
        .map(|_| {
            let a = (rng.next() % nodes as u64) as u32;
            let mut b = (rng.next() % nodes as u64) as u32;
            if b == a {
                b = (b + 1) % nodes;
            }
            if rng.next() % 2 == 0 {
                EdgeUpdate::Insert(NodeId(a), NodeId(b))
            } else {
                EdgeUpdate::Delete(NodeId(a), NodeId(b))
            }
        })
        .collect()
}

/// The fixed op script every sweep iteration replays.
fn script(nodes: u32) -> Vec<Op> {
    let mut rng = Rng(0x5eed_cafe_f00d_d00d);
    let mut ops = Vec::new();
    let mut updates = |ops: &mut Vec<Op>, count: usize| {
        for _ in 0..count {
            ops.push(Op::Updates(batch(&mut rng, 2, nodes)));
        }
    };
    updates(&mut ops, 4);
    ops.push(Op::Register("q1", Q1_DSL));
    updates(&mut ops, 3);
    ops.push(Op::Snapshot);
    updates(&mut ops, 3);
    ops.push(Op::Register("q2", Q2_DSL));
    ops.push(Op::Compact);
    updates(&mut ops, 4);
    ops.push(Op::Unregister("q1"));
    updates(&mut ops, 2);
    ops
}

fn pattern_of(name: &str) -> Pattern {
    let dsl = match name {
        "q1" => Q1_DSL,
        "q2" => Q2_DSL,
        other => panic!("unknown registered query {other:?}"),
    };
    parser::parse(dsl).expect("script DSL parses")
}

fn apply(rt: &DurableExpFinder, op: &Op) -> Result<(), ExpFinderError> {
    match op {
        Op::Updates(ups) => rt.apply_updates(GRAPH, ups).map(|_| ()),
        Op::Register(name, dsl) => {
            rt.register_query(GRAPH, name, parser::parse(dsl).expect("script DSL"))
        }
        Op::Unregister(name) => rt.unregister_query(GRAPH, name),
        Op::Snapshot => rt.snapshot(GRAPH).map(|_| ()),
        Op::Compact => rt.compact(GRAPH).map(|_| ()),
    }
}

/// Advance the in-memory oracle mirror by one op.
fn mirror_apply(mirror: &mut (DiGraph, BTreeSet<String>), op: &Op) {
    match op {
        Op::Updates(ups) => {
            for &u in ups {
                mirror.0.apply(u);
            }
        }
        Op::Register(name, _) => {
            mirror.1.insert((*name).to_owned());
        }
        Op::Unregister(name) => {
            mirror.1.remove(*name);
        }
        // state-neutral: snapshot/compact reshape storage, not state
        Op::Snapshot | Op::Compact => {}
    }
}

fn sorted_edges(g: &DiGraph) -> Vec<(u32, u32)> {
    let mut e: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
    e.sort_unstable();
    e
}

fn mirror_state(mirror: &(DiGraph, BTreeSet<String>)) -> State {
    (sorted_edges(&mirror.0), mirror.1.iter().cloned().collect())
}

fn rt_state(rt: &DurableExpFinder) -> State {
    let edges = rt
        .read_graph(GRAPH, sorted_edges)
        .expect("graph present after recovery");
    let regs = rt
        .registered_queries(GRAPH)
        .expect("registrations readable");
    (edges, regs)
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 1,
        fsync: FsyncPolicy::Always,
        ..RuntimeConfig::default()
    }
}

fn fresh_dir(base: &Path, tag: &str) -> PathBuf {
    let d = base.join(tag);
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Open a fresh runtime on `dir` and seed the base graph (injector
/// disarmed, so seeding crosses no counted boundary).
fn open_seeded(dir: &Path, base: &DiGraph) -> DurableExpFinder {
    let rt = DurableExpFinder::open(dir, config()).expect("open runtime");
    rt.add_graph(GRAPH, base.clone()).expect("seed graph");
    rt
}

/// Every maintained result on the recovered runtime must equal a fresh
/// from-scratch evaluation of its pattern on the recovered graph.
fn check_maintained_results(h: &mut Harness, rt: &DurableExpFinder, what: &str) {
    let graph = rt
        .read_graph(GRAPH, |g| g.clone())
        .expect("recovered graph");
    for name in rt.registered_queries(GRAPH).expect("registered names") {
        let pattern = pattern_of(&name);
        let maintained = rt
            .registered_result(GRAPH, &name)
            .expect("maintained result");
        let fresh = bounded_simulation(&graph, &pattern).expect("fresh evaluation");
        let diverged = pattern
            .ids()
            .find(|&u| maintained.matches_vec(u) != fresh.matches_vec(u));
        h.check(
            &format!("{what}: maintained {name:?} matches a fresh evaluation"),
            diverged.is_none(),
            || format!("diverged at pattern node {diverged:?}"),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut log_path: Option<String> = None;
    let mut data_dir_flag: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--log" => {
                i += 1;
                log_path = Some(args.get(i).expect("value after --log").clone());
            }
            "--data-dir" => {
                i += 1;
                data_dir_flag = Some(args.get(i).expect("value after --data-dir").clone());
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let base_dir = match &data_dir_flag {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("expfinder_chaos_smoke_{}", std::process::id())),
    };
    let _ = std::fs::create_dir_all(&base_dir);
    let mut h = Harness {
        failures: 0,
        log: log_path.as_deref().map(|p| {
            std::fs::File::create(p).unwrap_or_else(|e| {
                eprintln!("cannot create log {p:?}: {e}");
                std::process::exit(2);
            })
        }),
    };

    let base = expfinder_graph::fixtures::collaboration_fig1().graph;
    let nodes = base.node_count() as u32;
    let ops = script(nodes);

    // ---- phase 1: census — count boundaries, record oracle states ----
    h.say(&format!(
        "phase 1: census of {} ops under FsyncPolicy::Always",
        ops.len()
    ));
    let mut mirror = (base.clone(), BTreeSet::new());
    let mut states: Vec<State> = vec![mirror_state(&mirror)];
    let census_dir = fresh_dir(&base_dir, "census");
    let (boundaries, op_log) = {
        let rt = open_seeded(&census_dir, &base);
        let injector = rt.fault_injector();
        injector.arm(FaultPlan::new()); // pure boundary counter
        for (i, op) in ops.iter().enumerate() {
            if let Err(e) = apply(&rt, op) {
                h.check(&format!("census op {i} succeeds"), false, || e.to_string());
            }
            mirror_apply(&mut mirror, op);
            states.push(mirror_state(&mirror));
        }
        injector.disarm();
        h.check(
            "census run ends in the full-oracle state",
            rt_state(&rt) == *states.last().expect("nonempty"),
            || "runtime state diverged from the oracle mirror".to_owned(),
        );
        (injector.boundaries(), injector.op_log())
    };
    h.say(&format!(
        "census: {} I/O boundaries ({} writes, {} fsyncs, {} renames)",
        boundaries,
        op_log.iter().filter(|o| **o == IoOp::Write).count(),
        op_log.iter().filter(|o| **o == IoOp::Fsync).count(),
        op_log.iter().filter(|o| **o == IoOp::Rename).count(),
    ));
    h.check(
        "script crosses at least 50 injectable I/O boundaries",
        boundaries >= 50,
        || format!("only {boundaries}"),
    );
    let _ = std::fs::remove_dir_all(&census_dir);

    // ---- phases 2+3: crash at every boundary, then torn-write sweep ----
    let mut crash_points = 0usize;
    let mut plans: Vec<(String, FaultPlan)> = (0..boundaries)
        .map(|k| (format!("crash@{k}"), FaultPlan::new().crash_at(k)))
        .collect();
    plans.extend(
        op_log
            .iter()
            .enumerate()
            .filter(|(_, op)| **op == IoOp::Write)
            .map(|(k, _)| {
                (
                    format!("torn-crash@{k}"),
                    FaultPlan::new().crash_at_partial(k as u64, 3),
                )
            }),
    );
    h.say(&format!(
        "phase 2+3: sweeping {} crash points (every boundary + torn writes)",
        plans.len()
    ));
    for (tag, plan) in plans {
        let dir = fresh_dir(&base_dir, &tag);
        let mut mirror = (base.clone(), BTreeSet::new());
        let mut acked = 0usize;
        let mut crash_error = String::new();
        {
            let rt = open_seeded(&dir, &base);
            rt.fault_injector().arm(plan);
            for op in &ops {
                match apply(&rt, op) {
                    Ok(()) => {
                        mirror_apply(&mut mirror, op);
                        acked += 1;
                    }
                    Err(e) => {
                        crash_error = e.to_string();
                        break;
                    }
                }
            }
            let injected = rt.fault_totals().injected;
            if injected != 1 || !crash_error.contains(CRASH_MARKER) {
                h.check(
                    &format!("{tag}: the armed crash fired and surfaced"),
                    false,
                    || format!("injected={injected}, first error: {crash_error}"),
                );
                continue;
            }
            // the runtime drops here mid-life: the crash leaves the
            // writer sealed and possibly torn bytes on disk
        }
        let rt = DurableExpFinder::open(&dir, config()).expect("reopen after crash");
        let recovered = rt_state(&rt);
        // S_a (crashed frame torn/absent) or S_{a+1} (the in-flight
        // frame was complete; an in-process crash loses no page cache)
        let next = states.get(acked + 1).unwrap_or(&states[acked]);
        let ok = recovered == states[acked] || recovered == *next;
        h.check(
            &format!("{tag}: recovered state is an acked-prefix state (a={acked})"),
            ok,
            || {
                format!(
                    "recovered {recovered:?}\n  S_a     {:?}\n  S_a+1   {next:?}",
                    states[acked]
                )
            },
        );
        if ok {
            check_maintained_results(&mut h, &rt, &tag);
            crash_points += 1;
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    h.say(&format!(
        "crash sweep: {crash_points} crash points recovered cleanly"
    ));

    // ---- phase 4a: transient ENOSPC self-heals, retry lands ----
    h.say("phase 4a: transient ENOSPC on an append");
    {
        let dir = fresh_dir(&base_dir, "enospc");
        let mut rng = Rng(7);
        let batches: Vec<Vec<EdgeUpdate>> = (0..4).map(|_| batch(&mut rng, 2, nodes)).collect();
        let mut mirror = (base.clone(), BTreeSet::new());
        {
            let rt = open_seeded(&dir, &base);
            // tear the 2nd append after 4 bytes, then report ENOSPC
            rt.fault_injector()
                .arm(FaultPlan::new().partial_write(1, 4, FaultKind::Enospc));
            let mut failures = 0;
            for b in &batches {
                let op = Op::Updates(b.clone());
                if apply(&rt, &op).is_err() {
                    failures += 1;
                    h.check(
                        "enospc: the torn append retries cleanly",
                        apply(&rt, &op).is_ok(),
                        || "retry after self-heal failed".to_owned(),
                    );
                }
                mirror_apply(&mut mirror, &op);
            }
            h.check("enospc: exactly one append failed", failures == 1, || {
                format!("{failures} failures")
            });
            rt.fault_injector().disarm();
            h.check(
                "enospc: no op was lost in flight",
                rt_state(&rt) == mirror_state(&mirror),
                || "live state diverged".to_owned(),
            );
        }
        let rt = DurableExpFinder::open(&dir, config()).expect("reopen after enospc");
        h.check(
            "enospc: restart replays every acknowledged op",
            rt_state(&rt) == mirror_state(&mirror),
            || "recovered state diverged".to_owned(),
        );
        if h.failures == 0 {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // ---- phase 4b: a failed fsync seals the writer ----
    h.say("phase 4b: fsync failure seals the writer");
    {
        let dir = fresh_dir(&base_dir, "fsync-seal");
        let mut rng = Rng(9);
        let batches: Vec<Vec<EdgeUpdate>> = (0..3).map(|_| batch(&mut rng, 2, nodes)).collect();
        let mut mirror = (base.clone(), BTreeSet::new());
        {
            let rt = open_seeded(&dir, &base);
            rt.fault_injector()
                .arm(FaultPlan::new().fail_nth(IoOp::Fsync, 1, FaultKind::Eio));
            let op0 = Op::Updates(batches[0].clone());
            h.check(
                "seal: append before the fault lands",
                apply(&rt, &op0).is_ok(),
                || "first append failed".to_owned(),
            );
            mirror_apply(&mut mirror, &op0);
            h.check(
                "seal: the append whose fsync fails errors out",
                apply(&rt, &Op::Updates(batches[1].clone())).is_err(),
                || "append with failed fsync reported success".to_owned(),
            );
            let refused = apply(&rt, &Op::Updates(batches[2].clone()));
            h.check(
                "seal: subsequent appends refuse with the sealed error",
                refused
                    .as_ref()
                    .is_err_and(|e| e.to_string().contains("sealed")),
                || format!("{refused:?}"),
            );
        }
        let rt = DurableExpFinder::open(&dir, config()).expect("reopen after seal");
        h.check(
            "seal: restart recovers exactly the acknowledged prefix",
            rt_state(&rt) == mirror_state(&mirror),
            || "recovered state diverged".to_owned(),
        );
        let op2 = Op::Updates(batches[2].clone());
        h.check(
            "seal: the reopened log accepts appends again",
            apply(&rt, &op2).is_ok(),
            || "append after reopen failed".to_owned(),
        );
        if h.failures == 0 {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    if h.failures == 0 {
        h.say(&format!(
            "chaos smoke OK: {crash_points} crash points, ENOSPC self-heal, fsync sealing \
             — zero recovery-invariant violations"
        ));
        if data_dir_flag.is_none() {
            let _ = std::fs::remove_dir_all(&base_dir);
        }
    } else {
        let line = format!(
            "chaos smoke FAILED: {} check(s); surviving data dirs kept under {}",
            h.failures,
            base_dir.display()
        );
        eprintln!("{line}");
        if let Some(f) = &mut h.log {
            let _ = writeln!(f, "{line}");
        }
        std::process::exit(1);
    }
}
