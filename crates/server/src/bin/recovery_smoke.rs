//! `recovery_smoke` — the crash-recovery harness behind the
//! `recovery-smoke` CI job (and `just recovery-smoke`).
//!
//! Drives the durability claim end to end, out of process:
//!
//! 1. boot `serve --data-dir <fresh>` with the fig1 fixture and apply
//!    three update batches over the wire (each WAL-appended and fsynced
//!    before it is applied);
//! 2. `kill -9` the server — no drain, no snapshot — restart it on the
//!    same data dir, and assert the query answers are **bit-identical**
//!    (the full per-variable match sets, not just counts) to an
//!    in-memory oracle that applied the same updates;
//! 3. `kill -9` again, chop bytes off the WAL tail to fake a crash
//!    mid-append, restart, and assert the torn final frame is dropped,
//!    reported in `/metrics`, and everything before it recovers —
//!    bit-identical to the shorter oracle.
//!
//! ```text
//! recovery_smoke [--server-bin path/to/serve] [--log <prefix>]
//!                [--data-dir <dir>]
//! ```
//!
//! Logs are written as `<prefix>.boot1.log` / `.boot2.log` /
//! `.boot3.log` so CI can archive each life of the server. Pass
//! `--data-dir` to put the snapshot + WAL somewhere CI can upload as
//! an artifact too (the dir is wiped first, and kept on failure).

use expfinder_core::bounded_simulation;
use expfinder_graph::json::Value;
use expfinder_graph::{DiGraph, EdgeUpdate};
use expfinder_pattern::Pattern;
use expfinder_server::client::{query_body, Client};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const FIG1_DSL: &str = "node sa* where label = \"SA\" and experience >= 5; \
    node sd where label = \"SD\" and experience >= 2; \
    node ba where label = \"BA\" and experience >= 3; \
    node st where label = \"ST\" and experience >= 2; \
    edge sa -> sd within 2; edge sa -> ba within 3; \
    edge sd -> st within 2; edge ba -> st within 1;";

struct Harness {
    failures: usize,
}

impl Harness {
    fn check(&mut self, what: &str, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            println!("ok: {what}");
        } else {
            self.failures += 1;
            eprintln!("FAIL: {what}: {}", detail());
        }
    }
}

fn i64_at(v: &Value, path: &[&str]) -> i64 {
    let mut cur = v;
    for p in path {
        cur = cur.field(p).unwrap_or(&Value::Null);
    }
    cur.as_i64().unwrap_or(i64::MIN)
}

/// Boot `serve` on the data dir and wait for the discovery line.
fn boot(server_bin: &str, data_dir: &str, log: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(server_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--fixture",
            "fig1",
            "--data-dir",
            data_dir,
            "--log",
            log,
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("cannot spawn {server_bin}: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("server stdout");
    let addr: SocketAddr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| {
            let _ = child.kill();
            eprintln!("bad discovery line {first_line:?}");
            std::process::exit(1);
        })
        .parse()
        .expect("address in discovery line");
    (child, addr)
}

/// SIGKILL — the whole point: no drain, no flush, no goodbye.
fn kill9(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// The per-variable match sets the oracle expects, encoded exactly as
/// the wire does (`{var: [node ids, ascending]}`), so comparing JSON
/// values compares the relation bit for bit.
fn oracle_matches(graph: &DiGraph, pattern: &Pattern) -> Value {
    let rel = bounded_simulation(graph, pattern).expect("oracle evaluation");
    Value::Object(
        pattern
            .ids()
            .map(|u| {
                let ids: Vec<Value> = rel
                    .matches_vec(u)
                    .into_iter()
                    .map(|v| Value::Int(v.0 as i64))
                    .collect();
                (pattern.node(u).name.clone(), Value::Array(ids))
            })
            .collect(),
    )
}

/// Query the recovered server and compare the full match sets (and the
/// pair count) against the oracle graph.
fn check_bit_identical(
    h: &mut Harness,
    client: &mut Client,
    what: &str,
    oracle: &DiGraph,
    pattern: &Pattern,
) {
    let resp = client
        .query("fig1", &query_body(FIG1_DSL, None, "auto", true))
        .expect("query after recovery");
    let want = oracle_matches(oracle, pattern);
    let got = resp.field("matches").ok().cloned().unwrap_or(Value::Null);
    let want_pairs = bounded_simulation(oracle, pattern)
        .expect("oracle evaluation")
        .total_pairs() as i64;
    h.check(
        what,
        got == want && i64_at(&resp, &["pairs"]) == want_pairs,
        || {
            format!(
                "pairs {} (want {want_pairs})\n got: {}\nwant: {}",
                i64_at(&resp, &["pairs"]),
                got.to_string_compact(),
                want.to_string_compact()
            )
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server_bin: Option<String> = None;
    let mut log_prefix = "recovery-smoke".to_owned();
    let mut data_dir_flag: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server-bin" => {
                i += 1;
                server_bin = Some(args.get(i).expect("value after --server-bin").clone());
            }
            "--log" => {
                i += 1;
                log_prefix = args.get(i).expect("value after --log").clone();
            }
            "--data-dir" => {
                i += 1;
                data_dir_flag = Some(args.get(i).expect("value after --data-dir").clone());
            }
            other => {
                eprintln!("unknown option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let server_bin = server_bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        let sibling = me.parent().expect("bin dir").join("serve");
        sibling.to_string_lossy().into_owned()
    });

    // an explicit dir is a request to archive it (CI artifacts): keep
    // the snapshot + repaired WAL around even on success
    let keep_data = data_dir_flag.is_some();
    let data_dir = match data_dir_flag {
        Some(d) => std::path::PathBuf::from(d),
        None => {
            std::env::temp_dir().join(format!("expfinder_recovery_smoke_{}", std::process::id()))
        }
    };
    let _ = std::fs::remove_dir_all(&data_dir);
    let data_dir_arg = data_dir.to_string_lossy().into_owned();
    let mut h = Harness { failures: 0 };

    let fixture = expfinder_graph::fixtures::collaboration_fig1();
    let pattern = expfinder_pattern::parser::parse(FIG1_DSL).expect("fixture DSL");
    let e1 = fixture.e1;
    // three single-update batches = three WAL frames; the last one is
    // the torn-tail victim in phase 3
    let batches: Vec<Vec<EdgeUpdate>> = vec![
        vec![EdgeUpdate::Insert(e1.0, e1.1)],
        vec![EdgeUpdate::Delete(e1.0, e1.1)],
        vec![EdgeUpdate::Insert(e1.0, e1.1)],
    ];

    // ---- phase 1: seed, update, kill -9 ----
    println!("phase 1: boot {server_bin} on {data_dir_arg}, update, kill -9");
    let (child, addr) = boot(
        &server_bin,
        &data_dir_arg,
        &format!("{log_prefix}.boot1.log"),
    );
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));
    for batch in &batches {
        let report = client.updates("fig1", batch).expect("updates accepted");
        h.check(
            "update batch applied",
            i64_at(&report, &["applied"]) == 1,
            || report.to_string_compact(),
        );
    }
    kill9(child);
    println!("killed -9 with {} batches in the WAL", batches.len());

    // ---- phase 2: restart, replay, bit-identical to the full oracle ----
    println!("phase 2: restart on the same data dir");
    let (child, addr) = boot(
        &server_bin,
        &data_dir_arg,
        &format!("{log_prefix}.boot2.log"),
    );
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));
    let metrics = client.metrics().expect("metrics after restart");
    h.check(
        "restart replayed every batch from the WAL",
        i64_at(&metrics, &["engine", "wal", "replayed_frames"]) == batches.len() as i64
            && i64_at(&metrics, &["engine", "wal", "truncated_tails"]) == 0,
        || metrics.to_string_compact(),
    );
    let mut oracle = fixture.graph.clone();
    for batch in &batches {
        for &up in batch {
            oracle.apply(up);
        }
    }
    check_bit_identical(
        &mut h,
        &mut client,
        "recovered match sets are bit-identical to the in-memory oracle",
        &oracle,
        &pattern,
    );
    kill9(child);

    // ---- phase 3: tear the WAL tail, restart, lose only the last batch ----
    println!("phase 3: tear the WAL tail, restart");
    let wal_path = data_dir.join("fig1.wal");
    let mut bytes = std::fs::read(&wal_path).expect("read WAL");
    let torn_len = bytes.len() - 3;
    bytes.truncate(torn_len);
    std::fs::write(&wal_path, &bytes).expect("tear WAL tail");
    println!("tore fig1.wal to {torn_len} bytes");

    let (child, addr) = boot(
        &server_bin,
        &data_dir_arg,
        &format!("{log_prefix}.boot3.log"),
    );
    let mut client = Client::new(addr);
    client.set_timeout(Duration::from_secs(10));
    let metrics = client.metrics().expect("metrics after torn restart");
    h.check(
        "torn final frame is detected and dropped",
        i64_at(&metrics, &["engine", "wal", "replayed_frames"]) == batches.len() as i64 - 1
            && i64_at(&metrics, &["engine", "wal", "truncated_tails"]) == 1,
        || metrics.to_string_compact(),
    );
    let mut torn_oracle = fixture.graph.clone();
    for batch in &batches[..batches.len() - 1] {
        for &up in batch {
            torn_oracle.apply(up);
        }
    }
    check_bit_identical(
        &mut h,
        &mut client,
        "surviving prefix is bit-identical to the shorter oracle",
        &torn_oracle,
        &pattern,
    );
    // the repair persisted: the torn frame is physically gone
    let repaired = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
    h.check(
        "torn tail was truncated in place",
        repaired < torn_len as u64,
        || format!("{repaired} bytes on disk, torn file was {torn_len}"),
    );
    kill9(child);

    // keep the data dir on failure so CI can archive it as an artifact
    if h.failures == 0 {
        if !keep_data {
            let _ = std::fs::remove_dir_all(&data_dir);
        }
        println!("recovery smoke OK: kill -9 replay, torn-tail tolerance, bit-identical answers");
    } else {
        eprintln!(
            "recovery smoke FAILED: {} check(s); data dir kept at {}",
            h.failures,
            data_dir.display()
        );
        std::process::exit(1);
    }
}
