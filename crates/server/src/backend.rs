//! The engine the server fronts: in-memory or durable.
//!
//! Every route handler talks to a [`Backend`] instead of a concrete
//! engine, so the same wire protocol serves two deployment shapes:
//!
//! * [`Backend::Local`] — the classic shareable [`ExpFinder`]: graphs
//!   live in memory and vanish with the process. This is what
//!   `Server::bind` builds and what the shell's `serve` command uses.
//! * [`Backend::Durable`] — a [`DurableExpFinder`] shard runtime: every
//!   accepted update batch is WAL-logged before it is applied, queries
//!   run on published immutable snapshots, and a restart replays the
//!   log (`serve --data-dir`).
//!
//! The enum is deliberately not a trait: the method surface is the
//! exact set of operations the routes need, both variants are known at
//! compile time, and `match` keeps the delegation visible in one file.

use expfinder_core::{EvalStats, MatchRelation};
use expfinder_engine::{
    CancelTotals, ExpFinder, ExpFinderError, GraphInfo, IndexTotals, PlannerTotals, QueryResponse,
    QuerySpec, Route, UpdateHook, UpdateReport,
};
use expfinder_graph::{DiGraph, EdgeUpdate};
use expfinder_pattern::Pattern;
use expfinder_runtime::{DurableExpFinder, FaultTotals, ShardStats, WalTotals};
use std::sync::Arc;
use std::time::Duration;

/// Cache statistics re-exported so `metrics` has one source type.
pub use expfinder_engine::cache::CacheStats;

/// The serving backend — see the module docs. Cloning is cheap (both
/// variants are an `Arc`) and shares the underlying engine.
#[derive(Clone)]
pub enum Backend {
    /// In-memory engine (no durability; the seed deployment shape).
    Local(Arc<ExpFinder>),
    /// Durable shard runtime (WAL + snapshot per graph).
    Durable(Arc<DurableExpFinder>),
}

impl Backend {
    /// Names of every managed graph, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        match self {
            Backend::Local(e) => e.graph_names(),
            Backend::Durable(rt) => rt.graph_names(),
        }
    }

    /// Point-in-time summaries of every graph, sorted by name.
    pub fn graph_infos(&self) -> Vec<GraphInfo> {
        match self {
            Backend::Local(e) => e.graph_infos(),
            Backend::Durable(rt) => rt.graph_infos(),
        }
    }

    /// Add a graph; returns its initial published version.
    pub fn add_graph(&self, name: &str, graph: DiGraph) -> Result<u64, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.add_graph(name, graph)?;
                e.read_graph(&handle, |g| g.version())
            }
            Backend::Durable(rt) => rt.add_graph(name, graph),
        }
    }

    /// Run `f` against the named graph (engine: under its read lock;
    /// runtime: against the latest published snapshot).
    pub fn read_graph<R>(
        &self,
        name: &str,
        f: impl FnOnce(&DiGraph) -> R,
    ) -> Result<R, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.read_graph(&handle, f)
            }
            Backend::Durable(rt) => rt.read_graph(name, f),
        }
    }

    /// Evaluate one pattern.
    pub fn query(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
    ) -> Result<QueryResponse, ExpFinderError> {
        self.query_deadline(name, pattern, top_k, prefer, None)
    }

    /// Evaluate one pattern under an optional end-to-end deadline:
    /// evaluation aborts cooperatively once the budget is spent and
    /// surfaces as [`ExpFinderError::DeadlineExceeded`] carrying the
    /// partial [`EvalStats`].
    pub fn query_deadline(
        &self,
        name: &str,
        pattern: &Pattern,
        top_k: Option<usize>,
        prefer: Route,
        deadline: Option<Duration>,
    ) -> Result<QueryResponse, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                let mut builder = e.query(&handle).pattern(pattern.clone()).prefer(prefer);
                if let Some(k) = top_k {
                    builder = builder.top_k(k);
                }
                if let Some(d) = deadline {
                    builder = builder.deadline(d);
                }
                builder.run()
            }
            Backend::Durable(rt) => rt.query_deadline(name, pattern, top_k, prefer, deadline),
        }
    }

    /// Evaluate a batch of specs against one graph. The graph is
    /// resolved up front so an unknown name fails the whole request
    /// (404) rather than every slot.
    pub fn query_batch(
        &self,
        name: &str,
        specs: Vec<QuerySpec>,
    ) -> Result<Vec<Result<QueryResponse, ExpFinderError>>, ExpFinderError> {
        self.query_batch_deadline(name, specs, None)
    }

    /// [`Backend::query_batch`] under an optional batch-wide deadline
    /// shared by every slot (each spec may additionally carry its own,
    /// clipped to whatever remains of the batch budget).
    pub fn query_batch_deadline(
        &self,
        name: &str,
        specs: Vec<QuerySpec>,
        deadline: Option<Duration>,
    ) -> Result<Vec<Result<QueryResponse, ExpFinderError>>, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                Ok(e.query_batch_deadline(&handle, specs, deadline))
            }
            Backend::Durable(rt) => {
                rt.graph_version(name)?;
                Ok(rt.query_batch_deadline(name, specs, deadline))
            }
        }
    }

    /// The planner's cost estimate (abstract work units) for evaluating
    /// `pattern` on the named graph right now — the admission-control
    /// input for the 429 path. Purely a read; nothing is evaluated.
    pub fn estimate_cost(&self, name: &str, pattern: &Pattern) -> Result<f64, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.estimate_cost(&handle, pattern)
            }
            Backend::Durable(rt) => rt.estimate_cost(name, pattern),
        }
    }

    /// Apply edge updates with the full ΔM report. On the durable
    /// backend the batch is WAL-appended (and fsynced, by policy)
    /// before it is applied — when this returns `Ok` the updates
    /// survive a crash.
    pub fn apply_updates_traced(
        &self,
        name: &str,
        updates: &[EdgeUpdate],
    ) -> Result<UpdateReport, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.apply_updates_traced(&handle, updates)
            }
            Backend::Durable(rt) => rt.apply_updates_traced(name, updates),
        }
    }

    /// Register a query for incremental maintenance.
    pub fn register_query(
        &self,
        name: &str,
        query_name: &str,
        pattern: Pattern,
    ) -> Result<(), ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.register_query(&handle, query_name, pattern)
            }
            Backend::Durable(rt) => rt.register_query(name, query_name, pattern),
        }
    }

    /// Names of the registered queries on one graph, sorted.
    pub fn registered_queries(&self, name: &str) -> Result<Vec<String>, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.registered_queries(&handle)
            }
            Backend::Durable(rt) => rt.registered_queries(name),
        }
    }

    /// Install (or clear, with `None`) the update hook both engines fire
    /// after every committed update batch — the feed for `/subscribe`
    /// push streams. One hook per backend: installing replaces any
    /// previous one, so the last server bound to a shared engine owns
    /// the fan-out.
    pub fn install_update_hook(&self, hook: Option<UpdateHook>) {
        match self {
            Backend::Local(e) => e.set_update_hook(hook),
            Backend::Durable(rt) => rt.set_update_hook(hook),
        }
    }

    /// The maintained result of a registered query.
    pub fn registered_result(
        &self,
        name: &str,
        query_name: &str,
    ) -> Result<MatchRelation, ExpFinderError> {
        match self {
            Backend::Local(e) => {
                let handle = e.handle(name)?;
                e.registered_result(&handle, query_name)
            }
            Backend::Durable(rt) => rt.registered_result(name, query_name),
        }
    }

    // ------------------------- metrics feeds ------------------------

    pub fn cache_stats(&self) -> CacheStats {
        match self {
            Backend::Local(e) => e.cache_stats(),
            Backend::Durable(rt) => rt.cache_stats(),
        }
    }

    pub fn cache_len(&self) -> usize {
        match self {
            Backend::Local(e) => e.cache_len(),
            Backend::Durable(rt) => rt.cache_len(),
        }
    }

    pub fn eval_totals(&self) -> EvalStats {
        match self {
            Backend::Local(e) => e.eval_totals(),
            Backend::Durable(rt) => rt.eval_totals(),
        }
    }

    pub fn index_totals(&self) -> IndexTotals {
        match self {
            Backend::Local(e) => e.index_totals(),
            Backend::Durable(rt) => rt.index_totals(),
        }
    }

    /// Cumulative route-planner counters from either engine.
    pub fn planner_totals(&self) -> PlannerTotals {
        match self {
            Backend::Local(e) => e.planner_totals(),
            Backend::Durable(rt) => rt.planner_totals(),
        }
    }

    /// Cumulative cancellation counters (deadline checks polled, tokens
    /// fired) from either engine — the `engine.cancel` metrics block.
    pub fn cancel_totals(&self) -> CancelTotals {
        match self {
            Backend::Local(e) => e.cancel_totals(),
            Backend::Durable(rt) => rt.cancel_totals(),
        }
    }

    /// Cumulative WAL counters — all zero on a [`Backend::Local`], so
    /// the `/metrics` document has the same shape in both deployments.
    pub fn wal_totals(&self) -> WalTotals {
        match self {
            Backend::Local(_) => WalTotals::default(),
            Backend::Durable(rt) => rt.wal_totals(),
        }
    }

    /// Fault-injection counters (boundaries crossed while armed, faults
    /// fired) — all zero on a [`Backend::Local`] and on any production
    /// durable deployment, where the injector stays disarmed.
    pub fn fault_totals(&self) -> FaultTotals {
        match self {
            Backend::Local(_) => FaultTotals::default(),
            Backend::Durable(rt) => rt.fault_totals(),
        }
    }

    /// Per-shard mailbox/ownership gauges — empty on a
    /// [`Backend::Local`].
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        match self {
            Backend::Local(_) => Vec::new(),
            Backend::Durable(rt) => rt.shard_stats(),
        }
    }
}
