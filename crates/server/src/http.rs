//! Minimal HTTP/1.1 framing over blocking sockets.
//!
//! The container builds offline, so there is no tokio/hyper; this module
//! hand-rolls exactly the subset the wire protocol needs — request-line +
//! header parsing, `Content-Length` bodies, keep-alive negotiation,
//! response serialization, and chunked *response* streaming (requests
//! with `Transfer-Encoding` stay rejected with 501; only the server
//! pushes chunks, one subscription frame per chunk) — the same
//! vendored-stand-in philosophy as `vendor/`. Both the server's
//! connection loop and the blocking [`client`](crate::client) parse
//! message heads through [`read_head`], so the two sides cannot drift.
//!
//! Sockets are driven with short read timeouts: [`read_head`] surfaces a
//! timeout *before the first byte* as [`HttpError::Idle`] (the caller
//! decides whether to keep waiting, e.g. to poll a shutdown flag between
//! keep-alive requests), while a stall *mid-message* is retried only up
//! to `deadline` and then fails — a half-written request cannot pin a
//! worker forever during a graceful drain.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Hard cap on the request/status line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Framing failure while reading one HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection cleanly before sending any byte.
    Closed,
    /// Read timed out before the first byte of a message (idle
    /// keep-alive connection, not an error).
    Idle,
    /// Syntactically invalid message → 400.
    Malformed(String),
    /// Head or declared body over the configured limit → 431/413.
    TooLarge(&'static str),
    /// A feature this server does not implement (chunked bodies) → 501.
    Unsupported(&'static str),
    /// Transport failure (including mid-message stall past the deadline).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed"),
            HttpError::Idle => f.write_str("idle timeout"),
            HttpError::Malformed(m) => write!(f, "malformed message: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One parsed request (server side).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path only — query strings are not part of the wire protocol.
    pub path: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }

    /// Keep-alive negotiation: HTTP/1.1 defaults on, HTTP/1.0 defaults
    /// off, an explicit `Connection` header wins either way.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(c) if c.contains("close") => false,
            Some(c) if c.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Case-insensitive lookup in a parsed header list.
pub fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// The deadline, checked after *every* chunk — successful reads included,
/// so a client trickling one byte per socket-timeout window cannot
/// outrun it.
fn check_deadline(started: Instant, deadline: Duration) -> Result<(), HttpError> {
    if started.elapsed() >= deadline {
        Err(HttpError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "message read deadline exceeded",
        )))
    } else {
        Ok(())
    }
}

/// Read one CRLF (or bare-LF) terminated line, retrying timeouts until
/// `deadline` once at least one byte of the message has been seen.
/// `first_line` controls whether a timeout before any byte is `Idle`.
///
/// Built on `fill_buf`/`consume` rather than `read_until` so the
/// [`MAX_HEAD_BYTES`] cap applies to every chunk as it arrives — a
/// delimiter-free byte stream fails fast instead of accumulating
/// unboundedly inside the reader.
fn read_line(
    r: &mut impl BufRead,
    buf: &mut Vec<u8>,
    started: Instant,
    deadline: Duration,
    first_line: bool,
    total_so_far: usize,
) -> Result<String, HttpError> {
    buf.clear();
    loop {
        let chunk = match r.fill_buf() {
            Ok([]) => {
                return Err(if buf.is_empty() && first_line {
                    HttpError::Closed
                } else {
                    HttpError::Malformed("eof mid-message".into())
                })
            }
            Ok(chunk) => chunk,
            Err(e) if is_timeout(&e) => {
                if first_line && buf.is_empty() && total_so_far == 0 {
                    return Err(HttpError::Idle);
                }
                check_deadline(started, deadline)?;
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        buf.extend_from_slice(&chunk[..take]);
        r.consume(take);
        if total_so_far + buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("header section"));
        }
        if newline.is_some() {
            break;
        }
        // a slow-trickle sender makes progress on every chunk and never
        // hits the timeout branch above — bound it here too
        check_deadline(started, deadline)?;
    }
    let mut end = buf.len() - 1;
    if end > 0 && buf[end - 1] == b'\r' {
        end -= 1;
    }
    String::from_utf8(buf[..end].to_vec())
        .map_err(|_| HttpError::Malformed("non-utf8 header line".into()))
}

/// Read a start line plus headers (up to the blank line). Shared by the
/// server (request head) and the client (status head).
pub fn read_head(
    r: &mut impl BufRead,
    deadline: Duration,
) -> Result<(String, Vec<(String, String)>), HttpError> {
    let started = Instant::now();
    let mut buf = Vec::new();
    let mut total = 0usize;
    let start_line = read_line(r, &mut buf, started, deadline, true, total)?;
    if start_line.is_empty() {
        return Err(HttpError::Malformed("empty start line".into()));
    }
    total += buf.len();
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut buf, started, deadline, false, total)?;
        total += buf.len();
        if line.is_empty() {
            return Ok((start_line, headers));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_owned(), value.trim().to_owned()));
    }
}

/// Read a `Content-Length` body, enforcing `max_body` **before** any
/// allocation so an attacker-declared length cannot balloon memory.
pub fn read_body(
    r: &mut impl BufRead,
    headers: &[(String, String)],
    max_body: usize,
    deadline: Duration,
) -> Result<Vec<u8>, HttpError> {
    if header_of(headers, "transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding"));
    }
    let len = match header_of(headers, "content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if len > max_body {
        return Err(HttpError::TooLarge("body"));
    }
    let started = Instant::now();
    let mut body = vec![0u8; len];
    let mut read = 0usize;
    while read < len {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(HttpError::Malformed("eof mid-body".into())),
            // deadline applies to successful partial reads too (a
            // byte-at-a-time trickle never takes the timeout branch)
            Ok(n) => {
                read += n;
                if read < len {
                    check_deadline(started, deadline)?;
                }
            }
            Err(e) if is_timeout(&e) => check_deadline(started, deadline)?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(body)
}

/// Read one complete request from a connection.
pub fn read_request(
    r: &mut impl BufRead,
    max_body: usize,
    deadline: Duration,
) -> Result<Request, HttpError> {
    let (start, headers) = read_head(r, deadline)?;
    let mut parts = start.split(' ').filter(|s| !s.is_empty());
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {start:?}"))),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::Malformed(format!("bad version {other:?}"))),
    };
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad path {path:?}")));
    }
    let body = read_body(r, &headers, max_body, deadline)?;
    Ok(Request {
        method: method.to_owned(),
        // the wire protocol has no query strings; strip one defensively
        path: path.split('?').next().unwrap_or(path).to_owned(),
        http11,
        headers,
        body,
    })
}

/// Canonical reason phrases for the statuses the wire protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response ready to serialize.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: &'static str,
    /// Close the connection after this response (overrides keep-alive).
    pub close: bool,
    /// Emit a `Retry-After: <secs>` header — the load-shedding 503 path
    /// uses it to tell well-behaved clients when to come back.
    pub retry_after: Option<u64>,
}

impl Response {
    pub fn json(status: u16, doc: &expfinder_graph::json::Value) -> Response {
        Response {
            status,
            body: doc.to_string_compact().into_bytes(),
            content_type: "application/json",
            close: false,
            retry_after: None,
        }
    }

    /// Serialize onto the wire. `keep_alive` is the connection-level
    /// decision; `self.close` forces `Connection: close` regardless.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let conn = if keep_alive && !self.close {
            "keep-alive"
        } else {
            "close"
        };
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            conn
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

// ---------------------------------------------------------------------
// chunked response streaming (subscriptions)
// ---------------------------------------------------------------------

/// Hard cap on one received chunk's declared size — far above any real
/// subscription frame; a larger length field is framing corruption, not
/// an allocation request.
pub const MAX_CHUNK_BYTES: usize = 16 * 1024 * 1024;

/// Write the head of a chunked streaming response. Chunked responses
/// always close the connection when they end — a subscription consumes
/// its connection, so there is no keep-alive to negotiate.
pub fn write_chunked_head(w: &mut impl Write, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type
    )?;
    w.flush()
}

/// Write one chunk and flush it to the peer. The subscription protocol
/// maps one JSON frame to exactly one chunk, so a reader that decodes
/// chunk-by-chunk never has to scan for frame boundaries. `data` must
/// not be empty — a zero-length chunk is the stream terminator, written
/// by [`finish_chunked`].
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    debug_assert!(!data.is_empty(), "empty chunk would terminate the stream");
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminate a chunked response (`0\r\n\r\n`, no trailers).
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Read one chunk of a chunked response body (client side). Returns
/// `Ok(None)` on the terminal zero-length chunk. A timeout before the
/// first byte of a chunk surfaces as [`HttpError::Idle`] — the caller
/// decides whether to keep waiting for the next pushed frame — while a
/// stall *mid-chunk* is bounded by `deadline` like any other message.
pub fn read_chunk(r: &mut impl BufRead, deadline: Duration) -> Result<Option<Vec<u8>>, HttpError> {
    let started = Instant::now();
    let mut buf = Vec::new();
    let line = read_line(r, &mut buf, started, deadline, true, 0)?;
    // chunk extensions (";ext=val") are tolerated and ignored
    let size_str = line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_str, 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size {line:?}")))?;
    if size > MAX_CHUNK_BYTES {
        return Err(HttpError::TooLarge("chunk"));
    }
    // payload plus its trailing CRLF (the terminal chunk carries no
    // payload but still ends with the empty trailer section's CRLF)
    let mut data = vec![0u8; size + 2];
    let mut read = 0usize;
    while read < data.len() {
        match r.read(&mut data[read..]) {
            Ok(0) => return Err(HttpError::Malformed("eof mid-chunk".into())),
            Ok(n) => {
                read += n;
                if read < data.len() {
                    check_deadline(started, deadline)?;
                }
            }
            Err(e) if is_timeout(&e) => check_deadline(started, deadline)?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if &data[size..] != b"\r\n" {
        return Err(HttpError::Malformed("chunk not CRLF-terminated".into()));
    }
    data.truncate(size);
    if size == 0 {
        Ok(None)
    } else {
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const DL: Duration = Duration::from_secs(1);

    fn req(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024, DL)
    }

    #[test]
    fn parses_post_with_body() {
        let r = req(b"POST /graphs/g/query HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/graphs/g/query");
        assert!(r.http11);
        assert_eq!(r.body, b"abcd");
        assert_eq!(r.header("CONTENT-LENGTH"), Some("4"));
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn keep_alive_negotiation() {
        let r = req(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive());
        let r = req(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive());
        let r = req(b"GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn bare_lf_lines_and_query_strings_tolerated() {
        let r = req(b"GET /metrics?x=1 HTTP/1.1\nHost: a\n\n").unwrap();
        assert_eq!(r.path, "/metrics");
        assert!(r.body.is_empty());
    }

    #[test]
    fn malformed_requests_rejected() {
        for bytes in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(
                matches!(req(bytes), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
        assert!(matches!(req(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_body_and_head_rejected_without_allocation() {
        // declared length over the cap fails before reading the body
        let e = req(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::TooLarge("body")));
        // a huge header section dies at MAX_HEAD_BYTES
        let mut big = b"GET /x HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(
            req(&big),
            Err(HttpError::TooLarge("header section"))
        ));
    }

    /// A reader that yields one byte per call, each after a short sleep —
    /// the "slow loris" shape: every read succeeds, so the socket-timeout
    /// branch never fires and only the explicit deadline check can stop it.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            std::thread::sleep(self.delay);
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn trickle(data: &[u8]) -> BufReader<Trickle> {
        BufReader::new(Trickle {
            data: data.to_vec(),
            pos: 0,
            delay: Duration::from_millis(5),
        })
    }

    #[test]
    fn slow_trickle_body_hits_the_deadline() {
        // 200 declared bytes at 5ms each would take a second; the 40ms
        // deadline must cut it off even though every read makes progress
        let mut head = b"POST /x HTTP/1.1\r\nContent-Length: 200\r\n\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'x', 200));
        let started = Instant::now();
        let e = read_request(&mut trickle(&head), 1024, Duration::from_millis(40)).unwrap_err();
        assert!(matches!(e, HttpError::Io(_)), "{e}");
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "deadline must bound a trickling sender, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn slow_trickle_head_hits_the_deadline() {
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', 200));
        head.extend_from_slice(b": v\r\n\r\n");
        let started = Instant::now();
        let e = read_request(&mut trickle(&head), 1024, Duration::from_millis(40)).unwrap_err();
        assert!(matches!(e, HttpError::Io(_)), "{e}");
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn chunked_bodies_unsupported() {
        let e = req(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::Unsupported(_)));
    }

    #[test]
    fn chunked_stream_roundtrips() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire, 200, "application/x-ndjson").unwrap();
        write_chunk(&mut wire, br#"{"frame":"hello"}"#).unwrap();
        write_chunk(&mut wire, br#"{"frame":"update","n":1}"#).unwrap();
        write_chunk(&mut wire, br#"{"frame":"bye"}"#).unwrap();
        finish_chunked(&mut wire).unwrap();

        let mut r = BufReader::new(&wire[..]);
        let (status, headers) = read_head(&mut r, DL).unwrap();
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        assert_eq!(
            header_of(&headers, "transfer-encoding"),
            Some("chunked"),
            "{headers:?}"
        );
        assert_eq!(header_of(&headers, "connection"), Some("close"));
        let mut frames = Vec::new();
        while let Some(chunk) = read_chunk(&mut r, DL).unwrap() {
            frames.push(String::from_utf8(chunk).unwrap());
        }
        assert_eq!(
            frames,
            vec![
                r#"{"frame":"hello"}"#,
                r#"{"frame":"update","n":1}"#,
                r#"{"frame":"bye"}"#
            ]
        );
        // the terminator consumed everything
        assert!(matches!(read_chunk(&mut r, DL), Err(HttpError::Closed)));
    }

    #[test]
    fn bad_chunks_rejected() {
        // non-hex size line
        let mut r = BufReader::new(&b"zz\r\nabc\r\n"[..]);
        assert!(matches!(
            read_chunk(&mut r, DL),
            Err(HttpError::Malformed(_))
        ));
        // payload not CRLF-terminated
        let mut r = BufReader::new(&b"3\r\nabcXX"[..]);
        assert!(matches!(
            read_chunk(&mut r, DL),
            Err(HttpError::Malformed(_))
        ));
        // truncated payload (server died mid-frame)
        let mut r = BufReader::new(&b"10\r\nonly-seven"[..]);
        assert!(matches!(
            read_chunk(&mut r, DL),
            Err(HttpError::Malformed(_))
        ));
        // absurd declared size fails before allocating
        let mut r = BufReader::new(&b"fffffffff\r\n"[..]);
        assert!(matches!(
            read_chunk(&mut r, DL),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn response_serialization_roundtrips() {
        let doc = expfinder_graph::json::parse(r#"{"ok":true}"#).unwrap();
        let resp = Response::json(200, &doc);
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11"), "{text}");
        assert!(text.contains("Connection: keep-alive"), "{text}");
        assert!(text.ends_with(r#"{"ok":true}"#), "{text}");

        let mut out = Vec::new();
        Response {
            close: true,
            ..Response::json(404, &doc)
        }
        .write_to(&mut out, true)
        .unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close"));
    }

    #[test]
    fn retry_after_header_emitted_when_set() {
        let doc = expfinder_graph::json::parse(r#"{"ok":false}"#).unwrap();
        let mut out = Vec::new();
        Response {
            close: true,
            retry_after: Some(2),
            ..Response::json(503, &doc)
        }
        .write_to(&mut out, false)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        // the header block still terminates with exactly one blank line
        assert!(text.contains("\r\n\r\n"), "{text}");

        // and stays absent when unset
        let mut out = Vec::new();
        Response::json(200, &doc).write_to(&mut out, true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }
}
