//! A tiny blocking HTTP/JSON client for the wire protocol.
//!
//! Used by the integration tests, the shell's `connect` command, the
//! `serve_smoke` CI binary and the `bench_serve` load generator. One
//! client holds one keep-alive connection and re-establishes it
//! transparently when the server (or an idle timeout) closed it between
//! requests.
//!
//! Requests whose replay is safe — reads, queries/batches, edge updates
//! (insert/delete are idempotent) and shutdown — are retried on
//! transport failures (connect refused, keep-alive race, mid-response
//! drop) and on the server's load-shedding `503`, up to a small capped
//! attempt budget with jittered exponential backoff. A `Retry-After`
//! header on the 503 overrides the backoff schedule (capped, so a
//! hostile or confused server cannot park the client for minutes). The
//! common keep-alive race — the server closed a *reused* connection
//! while the request was in flight — retries immediately on a fresh
//! connection, as before. `POST /graphs` and `/register` are *not*
//! replayed — a replay after a server-side success would turn into a
//! spurious 409 — so those surface the transport error instead.

use crate::http::{self, HttpError};
use crate::wire;
use expfinder_graph::json::Value;
use expfinder_graph::{DiGraph, EdgeUpdate};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problem.
    Transport(String),
    /// The server answered with an error status; the decoded
    /// `error.message` is included when present.
    Status { status: u16, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Status { status, message } => {
                write!(f, "server returned {status}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One decoded response: status plus parsed JSON body.
#[derive(Debug)]
pub struct ApiResponse {
    pub status: u16,
    pub body: Value,
    /// Decoded `Retry-After` header (seconds), when the server sent one
    /// — the load-shedding 503 path does.
    pub retry_after: Option<u64>,
}

impl ApiResponse {
    /// Treat non-2xx as [`ClientError::Status`], extracting the wire
    /// error message.
    pub fn into_ok(self) -> Result<Value, ClientError> {
        if (200..300).contains(&self.status) {
            Ok(self.body)
        } else {
            let message = self
                .body
                .field("error")
                .and_then(|e| e.field("message"))
                .and_then(|m| m.as_str())
                .map(str::to_owned)
                .unwrap_or_else(|_| "(no error body)".to_owned());
            Err(ClientError::Status {
                status: self.status,
                message,
            })
        }
    }
}

/// Blocking wire-protocol client with one keep-alive connection.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// Create a client for `addr`; the connection is established lazily.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            stream: None,
            timeout: Duration::from_secs(30),
        }
    }

    /// Parse-and-connect convenience for shell-style `host:port` input.
    pub fn for_addr(addr: &str) -> Result<Client, ClientError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| ClientError::Transport(format!("bad address {addr:?}: {e}")))?;
        Ok(Client::new(addr))
    }

    /// Per-request timeout (connect, send and full response read).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    fn connect(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| ClientError::Transport(format!("connect {}: {e}", self.addr)))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| ClientError::Transport(e.to_string()))?;
            stream
                .set_write_timeout(Some(self.timeout))
                .map_err(|e| ClientError::Transport(e.to_string()))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// Replay safety of one wire operation (see the module docs): the
    /// keep-alive retry must not repeat a request whose second execution
    /// can fail although the first succeeded.
    fn replay_safe(method: &str, path: &str) -> bool {
        method == "GET"
            || path.ends_with("/query")
            || path.ends_with("/batch")
            || path.ends_with("/updates")
            || path == "/admin/shutdown"
    }

    /// Total tries per replay-safe request (first attempt included).
    const MAX_ATTEMPTS: u32 = 4;
    /// Longest `Retry-After` the client will actually honour.
    const RETRY_AFTER_CAP: Duration = Duration::from_secs(2);

    /// Jittered exponential backoff before retry `attempt` (0-based):
    /// 50ms · 2^attempt, capped at 1s, plus a deterministic 0–25ms
    /// jitter derived from the attempt and path so a fleet of clients
    /// shed at the same instant does not reconverge in lockstep.
    fn backoff_delay(attempt: u32, path: &str) -> Duration {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (attempt, path).hash(&mut h);
        let base = Duration::from_millis(50 * (1u64 << attempt.min(10)));
        base.min(Duration::from_secs(1)) + Duration::from_millis(h.finish() % 25)
    }

    /// Issue one request. Replay-safe operations retry transport
    /// failures and load-shedding 503s with jittered exponential
    /// backoff (see the module docs), honouring a `Retry-After` header
    /// when present; everything else gets exactly one attempt.
    ///
    /// The whole retry loop runs inside the caller's per-request timeout:
    /// a retry (or a `Retry-After` wait) that would land past the
    /// remaining budget is never issued — the last response or error is
    /// returned instead, so a caller with a 50ms budget is back in 50ms,
    /// not parked on a backoff schedule it never asked for.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<ApiResponse, ClientError> {
        let replayable = Self::replay_safe(method, path);
        let started = Instant::now();
        let budget = self.timeout;
        let mut attempt: u32 = 0;
        loop {
            let reused = self.stream.is_some();
            match self.request_once(method, path, body) {
                Ok(resp)
                    if resp.status == 503 && replayable && attempt + 1 < Self::MAX_ATTEMPTS =>
                {
                    // shed by the server: come back when it said to (or
                    // on the backoff schedule when it did not say) —
                    // unless that lands past the caller's budget, in
                    // which case the shed response is the final answer
                    let delay = resp
                        .retry_after
                        .map(|s| Duration::from_secs(s).min(Self::RETRY_AFTER_CAP))
                        .unwrap_or_else(|| Self::backoff_delay(attempt, path));
                    if started.elapsed() + delay >= budget {
                        return Ok(resp);
                    }
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.stream = None;
                    let transport = matches!(e, ClientError::Transport(_));
                    if !(transport && replayable && attempt + 1 < Self::MAX_ATTEMPTS) {
                        return Err(e);
                    }
                    // the keep-alive race (server closed a reused
                    // connection under us) retries immediately on a
                    // fresh connection; real failures back off
                    let delay = if reused && attempt == 0 {
                        Duration::ZERO
                    } else {
                        Self::backoff_delay(attempt, path)
                    };
                    if started.elapsed() + delay >= budget {
                        return Err(e);
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<ApiResponse, ClientError> {
        let timeout = self.timeout;
        let addr = self.addr;
        let stream = self.connect()?;
        let payload = body.map(|v| v.to_string_compact()).unwrap_or_default();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
        if body.is_some() {
            head.push_str("Content-Type: application/json\r\n");
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            payload.len()
        ));
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .and_then(|()| stream.flush())
            .map_err(|e| ClientError::Transport(format!("send: {e}")))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Transport(e.to_string()))?,
        );
        let (status_line, headers) = match http::read_head(&mut reader, timeout) {
            Ok(head) => head,
            Err(HttpError::Closed | HttpError::Idle) => {
                return Err(ClientError::Transport("connection closed by server".into()))
            }
            Err(e) => return Err(ClientError::Transport(e.to_string())),
        };
        // "HTTP/1.1 200 OK"
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Transport(format!("bad status line {status_line:?}")))?;
        let body_bytes = http::read_body(&mut reader, &headers, usize::MAX, timeout)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        let retry_after =
            http::header_of(&headers, "retry-after").and_then(|v| v.trim().parse::<u64>().ok());
        if http::header_of(&headers, "connection").is_some_and(|c| c.eq_ignore_ascii_case("close"))
        {
            self.stream = None;
        }
        let body = if body_bytes.is_empty() {
            Value::Null
        } else {
            let text = std::str::from_utf8(&body_bytes)
                .map_err(|_| ClientError::Transport("non-utf8 response body".into()))?;
            expfinder_graph::json::parse(text)
                .map_err(|e| ClientError::Transport(format!("bad response json: {e}")))?
        };
        Ok(ApiResponse {
            status,
            body,
            retry_after,
        })
    }

    // ------------------------- typed endpoints -------------------------

    /// `GET /healthz`.
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request("GET", "/healthz", None)?.into_ok()
    }

    /// `GET /metrics`.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request("GET", "/metrics", None)?.into_ok()
    }

    /// `GET /graphs`.
    pub fn graphs(&mut self) -> Result<Value, ClientError> {
        self.request("GET", "/graphs", None)?.into_ok()
    }

    /// `POST /graphs`: upload a graph under `name`.
    pub fn add_graph(&mut self, name: &str, g: &DiGraph) -> Result<Value, ClientError> {
        let body = wire::encode_add_graph(name, g);
        self.request("POST", "/graphs", Some(&body))?.into_ok()
    }

    /// `POST /graphs/{graph}/query`.
    pub fn query(&mut self, graph: &str, body: &Value) -> Result<Value, ClientError> {
        self.request("POST", &format!("/graphs/{graph}/query"), Some(body))?
            .into_ok()
    }

    /// `POST /graphs/{graph}/batch` with raw query bodies.
    pub fn batch(&mut self, graph: &str, queries: Vec<Value>) -> Result<Value, ClientError> {
        let body = crate::metrics::obj(vec![("queries", Value::Array(queries))]);
        self.request("POST", &format!("/graphs/{graph}/batch"), Some(&body))?
            .into_ok()
    }

    /// `POST /graphs/{graph}/updates`.
    pub fn updates(&mut self, graph: &str, ups: &[EdgeUpdate]) -> Result<Value, ClientError> {
        let body = crate::metrics::obj(vec![(
            "updates",
            Value::Array(ups.iter().map(|&u| wire::encode_update(u)).collect()),
        )]);
        self.request("POST", &format!("/graphs/{graph}/updates"), Some(&body))?
            .into_ok()
    }

    /// `POST /graphs/{graph}/register`.
    pub fn register(&mut self, graph: &str, qname: &str, dsl: &str) -> Result<Value, ClientError> {
        let body = crate::metrics::obj(vec![
            ("name", Value::Str(qname.to_owned())),
            ("pattern", Value::Str(dsl.to_owned())),
        ]);
        self.request("POST", &format!("/graphs/{graph}/register"), Some(&body))?
            .into_ok()
    }

    /// `POST /admin/shutdown` (requires the server to allow it).
    pub fn shutdown_server(&mut self) -> Result<Value, ClientError> {
        self.request("POST", "/admin/shutdown", None)?.into_ok()
    }

    /// `POST /graphs/{graph}/subscribe`: open a push stream of ΔM
    /// frames. `queries` narrows the stream to those registered-query
    /// names; `None` subscribes to all of them. The stream lives on its
    /// own connection — this client's keep-alive connection stays free
    /// for requests, so one `Client` can subscribe and then drive
    /// updates that arrive back as pushed frames.
    ///
    /// ```
    /// use expfinder_engine::ExpFinder;
    /// use expfinder_server::{client::Client, Server, ServerConfig};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(ExpFinder::default());
    /// engine
    ///     .add_graph("fig1", expfinder_graph::fixtures::collaboration_fig1().graph)
    ///     .unwrap();
    /// // a live subscription pins one worker; keep headroom beyond it
    /// let config = ServerConfig { workers: 4, ..ServerConfig::default() };
    /// let handle = Server::bind(engine, "127.0.0.1:0", config).unwrap().spawn();
    ///
    /// let mut client = Client::new(handle.addr());
    /// client
    ///     .register("fig1", "team", "node sa* where label = \"SA\";")
    ///     .unwrap();
    /// let mut sub = client.subscribe("fig1", None).unwrap();
    /// let hello = sub.next_frame().unwrap().unwrap();
    /// assert_eq!(hello.field("frame").unwrap().as_str().unwrap(), "hello");
    ///
    /// // an update committed elsewhere arrives as a pushed frame, its
    /// // report byte-identical to the /updates response
    /// use expfinder_graph::{EdgeUpdate, NodeId};
    /// let report = client
    ///     .updates("fig1", &[EdgeUpdate::Insert(NodeId(8), NodeId(3))])
    ///     .unwrap();
    /// let frame = sub.next_frame().unwrap().unwrap();
    /// assert_eq!(frame.field("frame").unwrap().as_str().unwrap(), "update");
    /// assert_eq!(
    ///     frame.field("report").unwrap().to_string_compact(),
    ///     report.to_string_compact(),
    /// );
    ///
    /// handle.shutdown(); // pushes a terminal bye frame and ends the stream
    /// ```
    pub fn subscribe(
        &mut self,
        graph: &str,
        queries: Option<&[&str]>,
    ) -> Result<Subscription, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| ClientError::Transport(format!("connect {}: {e}", self.addr)))?;
        let _ = stream.set_nodelay(true);
        // short socket timeout: read_chunk surfaces quiet periods as
        // Idle, and Subscription::next_frame polls up to its deadline
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        let payload = queries
            .map(|qs| {
                crate::metrics::obj(vec![(
                    "queries",
                    Value::Array(qs.iter().map(|&q| Value::Str(q.to_owned())).collect()),
                )])
                .to_string_compact()
            })
            .unwrap_or_default();
        let mut w = stream
            .try_clone()
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        write!(
            w,
            "POST /graphs/{graph}/subscribe HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len()
        )
        .and_then(|()| w.flush())
        .map_err(|e| ClientError::Transport(format!("send: {e}")))?;

        let mut reader = BufReader::new(stream);
        let started = Instant::now();
        let (status_line, headers) = loop {
            match http::read_head(&mut reader, self.timeout) {
                Ok(head) => break head,
                Err(HttpError::Idle) => {
                    if started.elapsed() >= self.timeout {
                        return Err(ClientError::Transport(
                            "timed out waiting for the subscription head".into(),
                        ));
                    }
                }
                Err(e) => return Err(ClientError::Transport(e.to_string())),
            }
        };
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Transport(format!("bad status line {status_line:?}")))?;
        if status != 200 {
            // refusals are ordinary Content-Length error bodies
            let body = http::read_body(&mut reader, &headers, usize::MAX, self.timeout)
                .map_err(|e| ClientError::Transport(e.to_string()))?;
            let message = std::str::from_utf8(&body)
                .ok()
                .and_then(|t| expfinder_graph::json::parse(t).ok())
                .and_then(|v| {
                    v.field("error")
                        .and_then(|e| e.field("message"))
                        .and_then(|m| m.as_str())
                        .map(str::to_owned)
                        .ok()
                })
                .unwrap_or_else(|| "(no error body)".to_owned());
            return Err(ClientError::Status { status, message });
        }
        if !http::header_of(&headers, "transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            return Err(ClientError::Transport(
                "subscription response is not chunked".into(),
            ));
        }
        Ok(Subscription {
            reader,
            timeout: self.timeout,
        })
    }
}

/// The receiving end of one `/subscribe` stream: call
/// [`Subscription::next_frame`] repeatedly. The first frame is always
/// `hello`; `update` frames follow as batches commit; `bye` / `error`
/// end the stream (followed by `Ok(None)` once the terminal chunk is
/// read).
pub struct Subscription {
    reader: BufReader<TcpStream>,
    timeout: Duration,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl Subscription {
    /// How long [`next_frame`](Subscription::next_frame) waits for the
    /// next pushed frame before giving up.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Block (up to the timeout) for the next frame. Returns `Ok(None)`
    /// when the server terminated the stream cleanly; a quiet stream —
    /// no update committed within the timeout — is a
    /// [`ClientError::Transport`] timeout, so callers distinguish "ended"
    /// from "nothing yet".
    pub fn next_frame(&mut self) -> Result<Option<Value>, ClientError> {
        let started = Instant::now();
        loop {
            match http::read_chunk(&mut self.reader, self.timeout) {
                Ok(None) => return Ok(None),
                Ok(Some(bytes)) => {
                    let text = std::str::from_utf8(&bytes)
                        .map_err(|_| ClientError::Transport("non-utf8 frame".into()))?;
                    return expfinder_graph::json::parse(text.trim_end())
                        .map(Some)
                        .map_err(|e| ClientError::Transport(format!("bad frame json: {e}")));
                }
                Err(HttpError::Idle) => {
                    if started.elapsed() >= self.timeout {
                        return Err(ClientError::Transport(
                            "timed out waiting for a frame".into(),
                        ));
                    }
                }
                Err(HttpError::Closed) => {
                    return Err(ClientError::Transport(
                        "connection closed mid-subscription".into(),
                    ))
                }
                Err(e) => return Err(ClientError::Transport(e.to_string())),
            }
        }
    }
}

/// Build a query body for [`Client::query`] / [`Client::batch`].
pub fn query_body(dsl: &str, top_k: Option<usize>, route: &str, include_matches: bool) -> Value {
    let mut fields = vec![
        ("pattern", Value::Str(dsl.to_owned())),
        ("route", Value::Str(route.to_owned())),
        ("include_matches", Value::Bool(include_matches)),
    ];
    if let Some(k) = top_k {
        fields.push(("top_k", Value::Int(k as i64)));
    }
    crate::metrics::obj(fields)
}

/// [`query_body`] with an explicit end-to-end evaluation budget
/// (`deadline_ms`): the server answers 408 with partial stats when the
/// budget fires mid-evaluation.
pub fn query_body_deadline(
    dsl: &str,
    top_k: Option<usize>,
    route: &str,
    include_matches: bool,
    deadline_ms: u64,
) -> Value {
    let mut body = query_body(dsl, top_k, route, include_matches);
    if let Value::Object(o) = &mut body {
        o.insert("deadline_ms".to_owned(), Value::Int(deadline_ms as i64));
    }
    body
}
