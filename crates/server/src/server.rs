//! The multi-threaded serving core: listener, bounded worker pool,
//! keep-alive connection loop and graceful shutdown.
//!
//! Architecture: one acceptor thread polls a non-blocking
//! `TcpListener` and feeds accepted connections into a **bounded**
//! channel; `workers` threads drain it, each running the keep-alive loop
//! for one connection at a time. The bound gives natural backpressure —
//! when every worker is busy and the queue is full, the acceptor sheds
//! the connection with `503 + Retry-After` (counted as `server.shed` on
//! `/metrics`) instead of buffering unbounded connections or blocking
//! the accept loop.
//!
//! Graceful shutdown is one `AtomicBool` ([`ServerHandle::shutdown`], or
//! the `POST /admin/shutdown` endpoint when enabled): the acceptor stops
//! accepting and closes the listener, workers finish their in-flight
//! request (bounded by the request deadline), answer it with
//! `Connection: close`, drain any already-accepted connections, and
//! exit. `shutdown()`/`join()` then join every thread, so when they
//! return no request is half-served — the SIGTERM-safe drain a process
//! supervisor needs (the `serve` binary wires this to stdin EOF and the
//! admin endpoint; bare `std` cannot install signal handlers).
//!
//! `/subscribe` turns a connection into a long-lived chunked push
//! stream (`stream_subscription`): the worker stays pinned to it,
//! polling the shutdown flag between frames, so a drain ends every live
//! subscription with a terminal `bye` frame within one poll interval.

use crate::backend::Backend;
use crate::http::{self, HttpError, Response};
use crate::metrics::Metrics;
use crate::routes::{self, Dispatch};
use crate::subscribe::{Subscriber, SubscriptionHub};
use expfinder_engine::ExpFinder;
use expfinder_runtime::DurableExpFinder;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs. `Default` is sized for tests and small deployments;
/// the `serve` binary exposes each field as a flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections (the pool bound).
    pub workers: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive: Duration,
    /// Deadline for reading one request once its first byte arrived, and
    /// for finishing in-flight work during a drain.
    pub request_deadline: Duration,
    /// Honor `POST /admin/shutdown` (the smoke harness and the shell use
    /// it; production deployments should leave it off and stop the
    /// process instead).
    pub allow_remote_shutdown: bool,
    /// Bounded per-subscriber frame queue for `/subscribe` push streams.
    /// A subscriber whose queue is full when the next batch commits is
    /// evicted as a slow consumer — the update path never blocks on a
    /// slow socket.
    pub subscriber_queue: usize,
    /// Evaluation deadline applied to queries that do not send their own
    /// `deadline_ms`. `None` (the default) leaves unbudgeted queries
    /// unbounded, exactly the pre-deadline behavior.
    pub default_deadline_ms: Option<u64>,
    /// Hard cap on any query deadline: requested budgets above it are
    /// clamped down, and when set it also bounds queries that sent no
    /// deadline at all. `None` disables the cap.
    pub max_deadline_ms: Option<u64>,
    /// Admission-control ceiling in planner work units (the same
    /// abstract scale `timings.plan` reports). When set, a query whose
    /// estimated cost exceeds the ceiling — or would push the total
    /// admitted in-flight cost past `ceiling × workers` — is rejected
    /// with `429 + Retry-After` before it consumes a worker. `None`
    /// (the default) admits everything.
    pub admission_max_cost: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 16)),
            max_body_bytes: 16 * 1024 * 1024,
            keep_alive: Duration::from_secs(30),
            request_deadline: Duration::from_secs(10),
            allow_remote_shutdown: false,
            subscriber_queue: 64,
            default_deadline_ms: None,
            max_deadline_ms: None,
            admission_max_cost: None,
        }
    }
}

/// Shared server state (everything a worker needs).
pub(crate) struct Inner {
    pub(crate) backend: Backend,
    pub(crate) metrics: Metrics,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    /// Live `/subscribe` streams; fed by the backend's update hook.
    pub(crate) subs: Arc<SubscriptionHub>,
}

impl Inner {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-serving server (so callers can learn the
/// ephemeral port before any request is handled).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    inner: Arc<Inner>,
}

/// Granularity of the acceptor's shutdown poll and the workers' idle
/// read timeout: the worst-case extra latency of noticing a drain.
const POLL: Duration = Duration::from_millis(25);

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port), serving an
    /// in-memory engine.
    pub fn bind(
        engine: Arc<ExpFinder>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind_backend(Backend::Local(engine), addr, config)
    }

    /// Bind to `addr`, serving a durable shard runtime: updates are
    /// WAL-logged, queries run on published snapshots, restarts replay.
    pub fn bind_durable(
        runtime: Arc<DurableExpFinder>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind_backend(Backend::Durable(runtime), addr, config)
    }

    /// Bind to `addr` with an explicit [`Backend`]. Binding installs the
    /// backend's update hook, so committed batches start reaching the
    /// subscription hub before the first connection is accepted; the
    /// hook is cleared again when the server shuts down.
    pub fn bind_backend(
        backend: Backend,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let subs = Arc::new(SubscriptionHub::new(config.subscriber_queue));
        let hook_subs = Arc::clone(&subs);
        backend.install_update_hook(Some(Arc::new(
            move |graph: &str, report: &expfinder_engine::UpdateReport| {
                hook_subs.publish(graph, report);
            },
        )));
        Ok(Server {
            listener,
            addr,
            inner: Arc::new(Inner {
                backend,
                metrics: Metrics::default(),
                config,
                shutdown: AtomicBool::new(false),
                subs,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start the acceptor and worker threads; the returned handle owns
    /// them.
    pub fn spawn(self) -> ServerHandle {
        let workers = self.inner.config.workers.max(1);
        // bound = 2× workers: enough runway to keep workers fed, small
        // enough that overload starts shedding (503) instead of queueing
        // unboundedly
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let inner = Arc::clone(&self.inner);
            let rx = Arc::clone(&rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("expfinder-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn worker"),
            );
        }
        let inner = Arc::clone(&self.inner);
        let listener = self.listener;
        threads.push(
            std::thread::Builder::new()
                .name("expfinder-accept".into())
                .spawn(move || accept_loop(&inner, listener, tx))
                .expect("spawn acceptor"),
        );
        ServerHandle {
            addr: self.addr,
            inner: self.inner,
            threads,
        }
    }
}

/// Handle to a running server: address, metrics access, shutdown/join.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend this server fronts.
    pub fn backend(&self) -> &Backend {
        &self.inner.backend
    }

    /// The in-memory engine this server fronts, when it is serving one
    /// (`None` on a durable backend).
    pub fn engine(&self) -> Option<&Arc<ExpFinder>> {
        match &self.inner.backend {
            Backend::Local(e) => Some(e),
            Backend::Durable(_) => None,
        }
    }

    /// Requests served so far (all routes).
    pub fn requests_served(&self) -> u64 {
        self.inner.metrics.total_requests()
    }

    /// True once a drain has been requested (locally or remotely).
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Request a graceful drain and wait for every thread to finish its
    /// in-flight work and exit. Returns the total requests served.
    pub fn shutdown(mut self) -> u64 {
        self.inner.request_shutdown();
        self.join_threads();
        self.inner.metrics.total_requests()
    }

    /// Wait for the server to stop on its own (remote shutdown endpoint,
    /// or an acceptor failure). Returns the total requests served.
    pub fn join(mut self) -> u64 {
        self.join_threads();
        self.inner.metrics.total_requests()
    }

    fn join_threads(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // the backend may outlive this server (tests and the shell share
        // engines): stop feeding a hub nobody is draining
        self.inner.backend.install_update_hook(None);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // dropping the handle must not leak threads: drain and join
        self.inner.request_shutdown();
        self.join_threads();
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener, tx: SyncSender<TcpStream>) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !inner.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.metrics.connection_opened();
                // a full queue sheds the connection with 503 instead of
                // blocking the acceptor: overload answers immediately and
                // tells the client when to come back
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(std::sync::mpsc::TrySendError::Full(stream)) => {
                        shed_connection(inner, stream);
                    }
                    Err(std::sync::mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // dropping `tx` (and the listener) lets workers drain the queue and
    // exit, and refuses new connections at the OS level
}

/// Answer one over-capacity connection with `503 + Retry-After` and
/// close it. Runs on the acceptor thread, so the write is bounded by a
/// short timeout — a peer that won't read its 503 cannot stall accepts.
fn shed_connection(inner: &Inner, mut stream: TcpStream) {
    inner.metrics.connection_shed();
    let _ = stream.set_write_timeout(Some(POLL));
    let body = crate::wire::error_body(503, "server overloaded; retry later");
    let resp = Response {
        close: true,
        retry_after: Some(1),
        ..Response::json(503, &body)
    };
    let _ = resp.write_to(&mut stream, false);
    inner.metrics.connection_closed();
}

fn worker_loop(inner: &Inner, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // hold the lock only for the recv itself, never while serving
        let next = {
            let rx = rx.lock().expect("rx lock");
            rx.recv_timeout(POLL)
        };
        match next {
            Ok(stream) => {
                serve_connection(inner, stream);
                inner.metrics.connection_closed();
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The keep-alive loop for one connection.
fn serve_connection(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    // a client that stops reading must not pin this worker (or a later
    // graceful drain) in write_all: bound every write by the request
    // deadline — write_to fails and the connection is dropped instead
    if stream
        .set_write_timeout(Some(inner.config.request_deadline))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut idle_since = Instant::now();
    loop {
        match http::read_request(
            &mut reader,
            inner.config.max_body_bytes,
            inner.config.request_deadline,
        ) {
            Ok(req) => {
                idle_since = Instant::now();
                let keep_alive = req.wants_keep_alive() && !inner.draining();
                let _guard = inner.metrics.begin_request();
                let started = Instant::now();
                match routes::dispatch(inner, &req) {
                    (key, Dispatch::Respond(mut resp)) => {
                        inner.metrics.record(key, resp.status, started.elapsed());
                        resp.close = resp.close || !keep_alive;
                        if resp.write_to(&mut writer, keep_alive).is_err() || resp.close {
                            return;
                        }
                    }
                    (key, Dispatch::Subscribe { hello, sub }) => {
                        // the latency recorded for a subscription is its
                        // setup time, not its (unbounded) stream lifetime
                        inner.metrics.record(key, 200, started.elapsed());
                        stream_subscription(inner, &mut writer, &hello, sub);
                        return;
                    }
                }
            }
            Err(HttpError::Idle) => {
                // between requests on a keep-alive connection: poll the
                // shutdown flag and the idle budget
                if inner.draining() || idle_since.elapsed() >= inner.config.keep_alive {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(e) => {
                // framing failure: answer with the mapped status (best
                // effort) and close — the connection state is undefined
                let (status, msg) = match &e {
                    HttpError::Malformed(m) => (400, m.clone()),
                    HttpError::TooLarge("body") => (413, "body too large".to_owned()),
                    HttpError::TooLarge(_) => (431, "header section too large".to_owned()),
                    HttpError::Unsupported(what) => (501, format!("unsupported: {what}")),
                    HttpError::Io(_) => (408, "request read timed out".to_owned()),
                    HttpError::Idle | HttpError::Closed => unreachable!("handled above"),
                };
                let body = crate::wire::error_body(status, &msg);
                let mut resp = Response::json(status, &body);
                resp.close = true;
                inner
                    .metrics
                    .record(crate::metrics::RouteKey::Other, status, Duration::ZERO);
                let _ = resp.write_to(&mut writer, false);
                return;
            }
        }
    }
}

/// The push loop of one `/subscribe` stream: chunked head, `hello`
/// frame, then one chunk per frame the hub enqueues, until the client
/// goes away, the server drains (terminal `bye`), or the subscriber is
/// evicted as a slow consumer (terminal `error`, after flushing the
/// frames that were already queued). Frames are newline-terminated
/// (`application/x-ndjson`), one JSON document per chunk. The worker
/// thread is pinned for the lifetime of the stream — subscriptions
/// compete with request handling for the bounded pool by design.
fn stream_subscription(
    inner: &Inner,
    writer: &mut TcpStream,
    hello: &expfinder_graph::json::Value,
    sub: Subscriber,
) {
    fn push(w: &mut TcpStream, frame: &expfinder_graph::json::Value) -> bool {
        let mut line = frame.to_string_compact();
        line.push('\n');
        http::write_chunk(w, line.as_bytes()).is_ok()
    }
    if http::write_chunked_head(writer, 200, "application/x-ndjson").is_ok() && push(writer, hello)
    {
        loop {
            if inner.draining() {
                if push(writer, &crate::wire::subscription_bye("drain")) {
                    let _ = http::finish_chunked(writer);
                }
                break;
            }
            match sub.rx.recv_timeout(POLL) {
                Ok(frame) => {
                    if !push(writer, &frame) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // the hub dropped our sender: evicted as a slow
                    // consumer (buffered frames were already delivered
                    // by the recv loop above)
                    if push(writer, &crate::wire::subscription_error("slow-consumer")) {
                        let _ = http::finish_chunked(writer);
                    }
                    break;
                }
            }
        }
    }
    inner.subs.remove(sub.id);
}
