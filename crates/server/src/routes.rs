//! Endpoint routing and handlers.
//!
//! | Method | Path                      | Action                                  |
//! |--------|---------------------------|-----------------------------------------|
//! | GET    | `/healthz`                | liveness probe                          |
//! | GET    | `/metrics`                | counters, latency histograms, versions  |
//! | GET    | `/graphs`                 | catalog listing                         |
//! | POST   | `/graphs`                 | add a graph (JSON graph document)       |
//! | POST   | `/graphs/{name}/query`    | one fluent query                        |
//! | POST   | `/graphs/{name}/batch`    | a batch through `ExpFinder::query_batch`|
//! | POST   | `/graphs/{name}/updates`  | edge updates + ΔM report                |
//! | POST   | `/graphs/{name}/register` | register a query for maintenance        |
//! | POST   | `/graphs/{name}/subscribe`| push stream of ΔM update frames         |
//! | POST   | `/admin/shutdown`         | graceful drain (when enabled)           |
//!
//! Engine failures map to statuses through
//! [`ExpFinderError::http_status`] — the same mapping the shell's batch
//! reporting uses — so there is exactly one place deciding what a
//! `StaleHandle` costs on the wire.

use crate::http::{Request, Response};
use crate::metrics::{obj, CostInFlight, RouteKey};
use crate::server::{Inner, ServerConfig};
use crate::subscribe::Subscriber;
use crate::wire::{self, WireError};
use expfinder_engine::{ExpFinderError, QuerySpec};
use expfinder_graph::json::Value;
use expfinder_graph::{AttrValue, GraphView};
use std::time::Duration;

/// What the connection loop should do with a dispatched request: every
/// route answers with one [`Response`] except `/subscribe`, which takes
/// over the connection as a long-lived chunked push stream.
pub(crate) enum Dispatch {
    /// Write this response; keep-alive as negotiated.
    Respond(Response),
    /// Switch the connection into subscription streaming: send the
    /// chunked head plus `hello`, then relay frames from the hub until
    /// the stream ends (the connection always closes afterwards).
    Subscribe { hello: Value, sub: Subscriber },
}

/// Resolve and handle one request. Returns the metrics key alongside the
/// dispatch so the caller can record latency per route family.
pub(crate) fn dispatch(inner: &Inner, req: &Request) -> (RouteKey, Dispatch) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    if let ("POST", ["graphs", name, "subscribe"]) = (req.method.as_str(), segments.as_slice()) {
        let dispatch = subscribe(inner, name, req)
            .unwrap_or_else(|e| Dispatch::Respond(Response::json(e.status, &e.body())));
        return (RouteKey::Subscribe, dispatch);
    }
    let (key, result): (RouteKey, Result<Response, WireError>) =
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => (RouteKey::Healthz, healthz(inner)),
            ("GET", ["metrics"]) => (
                RouteKey::Metrics,
                Ok(Response::json(
                    200,
                    &inner.metrics.to_json(&inner.backend, inner.subs.to_json()),
                )),
            ),
            ("GET", ["graphs"]) => (RouteKey::GraphsList, graphs_list(inner)),
            ("POST", ["graphs"]) => (RouteKey::GraphAdd, graph_add(inner, req)),
            ("POST", ["graphs", name, "query"]) => (RouteKey::Query, query(inner, name, req)),
            ("POST", ["graphs", name, "batch"]) => (RouteKey::Batch, batch(inner, name, req)),
            ("POST", ["graphs", name, "updates"]) => (RouteKey::Updates, updates(inner, name, req)),
            ("POST", ["graphs", name, "register"]) => {
                (RouteKey::Register, register(inner, name, req))
            }
            ("POST", ["admin", "shutdown"]) => (RouteKey::Shutdown, shutdown(inner)),
            // known paths with the wrong method → 405, anything else → 404
            (_, ["healthz" | "metrics" | "graphs"])
            | (_, ["graphs", _, "query" | "batch" | "updates" | "register" | "subscribe"])
            | (_, ["admin", "shutdown"]) => (
                RouteKey::Other,
                Err(WireError::new(
                    405,
                    format!("method {} not allowed on {}", req.method, req.path),
                )),
            ),
            _ => (
                RouteKey::Other,
                Err(WireError::new(404, format!("no route for {}", req.path))),
            ),
        };
    let resp = result.unwrap_or_else(|e| {
        let mut resp = Response::json(e.status, &e.body());
        // an admission rejection is backpressure, not an error: tell the
        // client when to come back, like the acceptor's shedding 503
        if e.status == 429 {
            resp.retry_after = Some(1);
        }
        resp
    });
    (key, Dispatch::Respond(resp))
}

/// Resolve the deadline one query actually runs under: the requested
/// budget (or the server default when none was sent), clamped to the
/// configured cap. A cap with no request still applies — `max_deadline_ms`
/// bounds every query on the server.
fn effective_deadline(config: &ServerConfig, requested: Option<u64>) -> Option<Duration> {
    let ms = match (
        requested.or(config.default_deadline_ms),
        config.max_deadline_ms,
    ) {
        (Some(r), Some(cap)) => Some(r.min(cap)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    };
    ms.map(Duration::from_millis)
}

/// The 429 admission gate. When a cost ceiling is configured, reject
/// work whose planner estimate exceeds it — or would push the admitted
/// in-flight cost past the concurrency-weighted pool (`ceiling ×
/// workers`) — before it consumes a worker. Admitted cost is held on the
/// route's in-flight gauge by the returned guard until evaluation ends.
fn admit(inner: &Inner, route: RouteKey, est: f64) -> Result<CostInFlight<'_>, WireError> {
    if let Some(ceiling) = inner.config.admission_max_cost {
        let pool = ceiling * inner.config.workers.max(1) as f64;
        let in_flight = inner.metrics.total_cost_in_flight();
        if !est.is_finite() || est > ceiling || in_flight + est > pool {
            inner.metrics.note_deadline_rejected();
            return Err(WireError::new(
                429,
                format!(
                    "rejected at admission: estimated cost {est:.0} work units \
                     (ceiling {ceiling:.0}, {in_flight:.0} already in flight)"
                ),
            ));
        }
    }
    Ok(inner.metrics.admit_cost(route, est))
}

fn healthz(inner: &Inner) -> Result<Response, WireError> {
    let body = obj(vec![
        ("status", Value::Str("ok".into())),
        (
            "graphs",
            Value::Int(inner.backend.graph_names().len() as i64),
        ),
        ("in_flight", Value::Int(inner.metrics.in_flight() as i64)),
        ("draining", Value::Bool(inner.draining())),
    ]);
    Ok(Response::json(200, &body))
}

fn graphs_list(inner: &Inner) -> Result<Response, WireError> {
    let graphs: Vec<Value> = inner
        .backend
        .graph_infos()
        .iter()
        .map(wire::encode_graph_info)
        .collect();
    Ok(Response::json(
        200,
        &obj(vec![("graphs", Value::Array(graphs))]),
    ))
}

fn graph_add(inner: &Inner, req: &Request) -> Result<Response, WireError> {
    let body = wire::parse_body(&req.body)?;
    let (name, graph) = wire::decode_add_graph(&body)?;
    let (nodes, edges) = (graph.node_count(), graph.edge_count());
    let version = inner.backend.add_graph(&name, graph)?;
    let body = obj(vec![
        ("name", Value::Str(name)),
        ("nodes", Value::Int(nodes as i64)),
        ("edges", Value::Int(edges as i64)),
        ("graph_version", Value::Int(version as i64)),
    ]);
    Ok(Response::json(201, &body))
}

fn query(inner: &Inner, name: &str, req: &Request) -> Result<Response, WireError> {
    let body = wire::parse_body(&req.body)?;
    let q = wire::decode_query(&body)?;
    let deadline = effective_deadline(&inner.config, q.deadline_ms);
    // admission before evaluation: estimate the work, reject what cannot
    // fit (429), and hold the admitted cost on the in-flight gauge while
    // the query runs (also resolves the graph, so unknown names 404 here)
    let est = inner.backend.estimate_cost(name, &q.pattern)?;
    let _admitted = admit(inner, RouteKey::Query, est)?;
    let resp = inner
        .backend
        .query_deadline(name, &q.pattern, q.top_k, q.route, deadline)
        .map_err(|e| {
            if matches!(e, ExpFinderError::DeadlineExceeded(_)) {
                inner.metrics.note_deadline_enforced();
            }
            WireError::from(e)
        })?;
    // resolve expert display names under a fresh read lock; queries and
    // updates may interleave, but expert node ids are stable
    let encoded = inner.backend.read_graph(name, |g| {
        wire::encode_query_response(&resp, &q.pattern, q.include_matches, |n| {
            if (n.0 as usize) < g.node_count() {
                g.attr_of(n, "name").and_then(|a| match a {
                    AttrValue::Str(s) => Some(s.clone()),
                    _ => None,
                })
            } else {
                None
            }
        })
    })?;
    Ok(Response::json(200, &encoded))
}

fn batch(inner: &Inner, name: &str, req: &Request) -> Result<Response, WireError> {
    let body = wire::parse_body(&req.body)?;
    let decoded = wire::decode_batch(&body)?;
    let deadline = effective_deadline(&inner.config, decoded.deadline_ms);
    // wire-level decode failures keep their slot, mirroring the engine's
    // per-slot Results: build specs only for well-formed slots. A slot's
    // own deadline is clamped to the server cap; the engine additionally
    // clips it to whatever remains of the batch budget.
    let cap = inner.config.max_deadline_ms;
    let specs: Vec<QuerySpec> = decoded
        .queries
        .iter()
        .filter_map(|d| d.as_ref().ok())
        .map(|q| {
            let mut spec = QuerySpec::pattern(q.pattern.clone()).prefer(q.route);
            if let Some(k) = q.top_k {
                spec = spec.top_k(k);
            }
            if let Some(ms) = q.deadline_ms {
                spec = spec.deadline(Duration::from_millis(cap.map_or(ms, |c| ms.min(c))));
            }
            spec
        })
        .collect();
    // admit the whole batch as one unit of work: the sum of the slots'
    // estimates competes for the same in-flight pool as single queries
    let mut est = 0.0;
    for q in decoded.queries.iter().filter_map(|d| d.as_ref().ok()) {
        est += inner.backend.estimate_cost(name, &q.pattern)?;
    }
    let _admitted = admit(inner, RouteKey::Batch, est)?;
    let mut engine_results = inner
        .backend
        .query_batch_deadline(name, specs, deadline)?
        .into_iter();
    let results: Vec<Value> = decoded
        .queries
        .iter()
        .map(|d| match d {
            Err(e) => obj(vec![("error", e.fields())]),
            Ok(q) => match engine_results.next().expect("one result per spec") {
                Err(e) => {
                    if matches!(e, ExpFinderError::DeadlineExceeded(_)) {
                        inner.metrics.note_deadline_enforced();
                    }
                    obj(vec![("error", WireError::from(e).fields())])
                }
                Ok(resp) => obj(vec![(
                    "ok",
                    wire::encode_query_response(&resp, &q.pattern, q.include_matches, |_| None),
                )]),
            },
        })
        .collect();
    Ok(Response::json(
        200,
        &obj(vec![("results", Value::Array(results))]),
    ))
}

fn updates(inner: &Inner, name: &str, req: &Request) -> Result<Response, WireError> {
    let body = wire::parse_body(&req.body)?;
    let ups = wire::decode_updates(&body)?;
    let report = inner.backend.apply_updates_traced(name, &ups)?;
    Ok(Response::json(200, &wire::encode_update_report(&report)))
}

fn register(inner: &Inner, name: &str, req: &Request) -> Result<Response, WireError> {
    let body = wire::parse_body(&req.body)?;
    let qname = body
        .field("name")
        .and_then(|n| n.as_str())
        .map_err(|e| WireError::bad_request(e.to_string()))?
        .to_owned();
    let dsl = body
        .field("pattern")
        .and_then(|p| p.as_str())
        .map_err(|e| WireError::bad_request(e.to_string()))?;
    let pattern = expfinder_pattern::parser::parse(dsl)
        .map_err(|e| WireError::from(ExpFinderError::from(e)))?;
    inner.backend.register_query(name, &qname, pattern)?;
    let pairs = inner.backend.registered_result(name, &qname)?.total_pairs();
    let body = obj(vec![
        ("registered", Value::Str(qname)),
        ("pairs", Value::Int(pairs as i64)),
    ]);
    Ok(Response::json(201, &body))
}

/// Validate a subscription request and register it with the hub. The
/// body is optional: absent (or `{}`) subscribes to every registered
/// query; `{"queries":[...]}` narrows the pushed ΔM to those names,
/// each of which must already be registered (404 otherwise) — register
/// first, then subscribe. A draining server refuses new subscriptions
/// with 503 so the drain is not prolonged by fresh long-lived streams.
fn subscribe(inner: &Inner, name: &str, req: &Request) -> Result<Dispatch, WireError> {
    let filter = if req.body.is_empty() {
        None
    } else {
        wire::decode_subscribe(&wire::parse_body(&req.body)?)?
    };
    // resolves the graph too: unknown graph → 404 before any state change
    let registered = inner.backend.registered_queries(name)?;
    if let Some(keep) = &filter {
        for q in keep {
            if !registered.contains(q) {
                return Err(WireError::new(
                    404,
                    format!("no registered query {q:?} on graph {name:?}"),
                ));
            }
        }
    }
    if inner.draining() {
        return Err(WireError::new(503, "server is draining"));
    }
    let version = inner.backend.read_graph(name, |g| g.version())?;
    let sub = inner.subs.subscribe(name, filter.clone());
    let queries = filter.unwrap_or(registered);
    let hello = wire::subscription_hello(name, version, &queries, sub.id);
    Ok(Dispatch::Subscribe { hello, sub })
}

fn shutdown(inner: &Inner) -> Result<Response, WireError> {
    if !inner.config.allow_remote_shutdown {
        return Err(WireError::new(
            403,
            "remote shutdown is disabled (start with --allow-shutdown)",
        ));
    }
    inner.request_shutdown();
    let mut resp = Response::json(202, &obj(vec![("draining", Value::Bool(true))]));
    resp.close = true;
    Ok(resp)
}
